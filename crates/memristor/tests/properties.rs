//! Property-based tests for the programming path: retry-with-backoff must
//! honour its pulse budget for *any* target, pin state and policy — not
//! just the curated cases in the unit tests.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spinamm_memristor::{DeviceLimits, LevelMap, Memristor, RetryPolicy, WriteScheme};
use spinamm_telemetry::NoopRecorder;

proptest! {
    /// The retry loop terminates within the configured pulse budget, no
    /// matter how hopeless the cell: pinned at the wrong extreme, tight
    /// tolerance, aggressive escalation — the budget is a hard ceiling.
    #[test]
    fn retry_never_exceeds_pulse_budget(
        seed in any::<u64>(),
        level in 0u32..32,
        tolerance in 0.005..0.2f64,
        max_attempts in 1u32..6,
        amplitude_step in 0.0..1.0f64,
        pulse_budget in 1u32..200,
        pin in 0u8..3, // 0 = healthy, 1 = pinned at g_min, 2 = pinned at g_max
    ) {
        let limits = DeviceLimits::PAPER;
        let map = LevelMap::new(limits, 5).unwrap();
        let target = map.conductance(level).unwrap();
        let scheme = WriteScheme::new(tolerance).unwrap();
        let policy = RetryPolicy::new(max_attempts, amplitude_step, pulse_budget).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut cell = Memristor::new(limits);
        match pin {
            1 => cell.pin(limits.g_min()),
            2 => cell.pin(limits.g_max()),
            _ => {}
        }
        let report = cell
            .program_with_retry(target, &scheme, &policy, &mut rng, &NoopRecorder)
            .unwrap();
        prop_assert!(
            report.pulses <= policy.pulse_budget,
            "{} pulses spent against a budget of {}",
            report.pulses,
            policy.pulse_budget
        );
        prop_assert!(report.attempts <= policy.max_attempts);
        // A recovered cell really is in band; an unrecovered one is not.
        let rel = (cell.conductance().0 - target.0) / target.0;
        if report.recovered {
            prop_assert!(rel.abs() <= scheme.tolerance + 1e-12);
        }
    }

    /// With a generous budget a healthy (unpinned) cell always recovers on
    /// the first attempt — retries exist for faulted devices, not for the
    /// nominal write path.
    #[test]
    fn healthy_cells_recover_first_attempt(
        seed in any::<u64>(),
        level in 0u32..32,
    ) {
        let limits = DeviceLimits::PAPER;
        let map = LevelMap::new(limits, 5).unwrap();
        let target = map.conductance(level).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut cell = Memristor::new(limits);
        let report = cell
            .program_with_retry(
                target,
                &WriteScheme::paper(),
                &RetryPolicy::default(),
                &mut rng,
                &NoopRecorder,
            )
            .unwrap();
        prop_assert!(report.recovered);
        prop_assert!(report.attempts <= 1);
    }
}
