//! Behavioral Ag-Si memristor models for resistive crossbar memory.
//!
//! The DAC 2013 paper stores its face templates as programmed conductances of
//! Ag/a-Si memristors (Jo et al. \[6-7\], Gao et al. \[8\]) in a metallic
//! crossbar. This crate models exactly the device behaviour that enters the
//! paper's system study:
//!
//! * a **continuous conductance state** bounded by the device's resistance
//!   range (Table 2: 1 kΩ – 32 kΩ for the main design; other ranges are swept
//!   in Fig. 9a),
//! * a **multi-level write operation** with finite precision — the paper uses
//!   3 % write accuracy (≈5 bits) and notes that energy cost grows for
//!   tighter precision ([`write::WriteScheme`]),
//! * **read noise** (thermal/quantization disturbance of the observed
//!   conductance),
//! * **level quantization** for storing k-bit digital values
//!   ([`quantize::LevelMap`]),
//! * **parallel multi-device banks** that store one analog value in several
//!   memristors to gain precision beyond the single-device write accuracy
//!   (Likharev \[4\]; [`bank::MemristorBank`]), and
//! * **retention drift** of programmed filaments
//!   ([`drift::DriftModel`]) — quantifying how long "non-volatile" lasts
//!   against the 3 % write band.
//!
//! # Example
//!
//! Program a 5-bit value into a device and read it back:
//!
//! ```
//! use rand::SeedableRng;
//! use spinamm_memristor::{DeviceLimits, LevelMap, Memristor, WriteScheme};
//!
//! # fn main() -> Result<(), spinamm_memristor::MemristorError> {
//! let limits = DeviceLimits::PAPER; // 1 kΩ … 32 kΩ
//! let levels = LevelMap::new(limits, 5)?;
//! let scheme = WriteScheme::paper(); // 3 % tolerance
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//!
//! let mut cell = Memristor::new(limits);
//! let report = cell.program(levels.conductance(19)?, &scheme, &mut rng)?;
//! assert!(report.pulses >= 1);
//! assert!(levels.nearest_level(cell.conductance()) == 19);
//! # Ok(())
//! # }
//! ```

pub mod bank;
pub mod device;
pub mod drift;
pub mod pulse;
pub mod quantize;
pub mod write;

pub use bank::MemristorBank;
pub use device::{DeviceLimits, Memristor, ReadNoise};
pub use drift::DriftModel;
pub use pulse::PulseWriteModel;
pub use quantize::LevelMap;
pub use write::{RetryPolicy, RetryReport, WriteReport, WriteScheme};

use std::error::Error;
use std::fmt;

/// Errors produced by memristor device operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemristorError {
    /// A requested conductance lies outside the device's programmable range.
    ConductanceOutOfRange {
        /// Requested conductance in siemens.
        requested: f64,
        /// Lower bound of the programmable window in siemens.
        min: f64,
        /// Upper bound of the programmable window in siemens.
        max: f64,
    },
    /// A digital level exceeds the level map's range.
    LevelOutOfRange {
        /// Requested level.
        level: u32,
        /// Number of representable levels.
        count: u32,
    },
    /// A configuration parameter is outside its physical domain.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
}

impl fmt::Display for MemristorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemristorError::ConductanceOutOfRange {
                requested,
                min,
                max,
            } => write!(
                f,
                "conductance {requested:.3e} S outside programmable window [{min:.3e}, {max:.3e}] S"
            ),
            MemristorError::LevelOutOfRange { level, count } => {
                write!(
                    f,
                    "level {level} out of range (device stores {count} levels)"
                )
            }
            MemristorError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for MemristorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = MemristorError::ConductanceOutOfRange {
            requested: 1.0,
            min: 0.1,
            max: 0.5,
        };
        assert!(e.to_string().contains("outside"));
        assert!(MemristorError::LevelOutOfRange {
            level: 32,
            count: 32
        }
        .to_string()
        .contains("32"));
        assert!(!MemristorError::InvalidParameter { what: "x" }
            .to_string()
            .is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemristorError>();
    }
}
