//! Multi-level program-and-verify write model.
//!
//! Fine-resolution memristor programming (Shin \[1\], Berdan \[2\]) works by
//! iterating short write pulses and verify reads until the observed
//! conductance falls inside a tolerance band around the target. The paper
//! adopts 3 % tolerance (≈5 bits over the full window) and notes that "the
//! energy-cost of the write operations may increase significantly for higher
//! precision requirements". [`WriteScheme`] models both effects: the residual
//! programming error left inside the tolerance band, and the pulse count
//! (hence energy) needed to get there.

use crate::device::Memristor;
use crate::MemristorError;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use spinamm_circuit::units::{Joules, Siemens};
use spinamm_telemetry::{NoopRecorder, Recorder};

/// Program-and-verify write configuration.
///
/// # Example
///
/// ```
/// use spinamm_memristor::WriteScheme;
///
/// let paper = WriteScheme::paper();
/// assert!((paper.tolerance - 0.03).abs() < 1e-12);
/// // Per the paper, 3 % ≈ 5-bit equivalent precision:
/// assert_eq!(paper.equivalent_bits(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteScheme {
    /// Relative tolerance band of the verify loop — writes stop once the
    /// conductance is within `±tolerance` of the target. The paper uses 0.03
    /// (3 %, ≈5 bits); references \[1-2\] demonstrate down to 0.003 (0.3 %,
    /// ≈8 bits).
    pub tolerance: f64,
    /// Relative step-size noise of one write pulse: each pulse moves the
    /// state toward the target but overshoots/undershoots with this relative
    /// standard deviation.
    pub pulse_sigma: f64,
    /// Energy of a single write pulse.
    pub pulse_energy: Joules,
}

/// Outcome of one program-and-verify operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteReport {
    /// Number of write pulses applied.
    pub pulses: u32,
    /// Total write energy (`pulses × pulse_energy`).
    pub energy: Joules,
    /// Relative error of the final state with respect to the target.
    pub relative_error: f64,
}

impl WriteScheme {
    /// Typical single-pulse write energy for nano-scale Ag-Si cells, ~1 pJ.
    /// Absolute write energy does not enter any of the paper's comparisons
    /// (templates are programmed once, then read millions of times), so a
    /// representative literature value suffices.
    pub const DEFAULT_PULSE_ENERGY: Joules = Joules(1e-12);

    /// The paper's scheme: 3 % tolerance (5-bit equivalent).
    #[must_use]
    pub fn paper() -> Self {
        Self::new(0.03).expect("paper constants are valid")
    }

    /// The high-precision scheme of refs \[1-2\]: 0.3 % tolerance (8-bit).
    #[must_use]
    pub fn high_precision() -> Self {
        Self::new(0.003).expect("reference constants are valid")
    }

    /// Creates a scheme with the given tolerance and default pulse model.
    ///
    /// The default pulse-step noise (25 % relative) makes individual pulses
    /// overshoot as often as they undershoot, so the residual error of a
    /// completed write is spread across *both* sides of the tolerance band —
    /// which is what lets parallel banks ([`crate::MemristorBank`]) average
    /// it down.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] unless
    /// `0 < tolerance < 1`.
    pub fn new(tolerance: f64) -> Result<Self, MemristorError> {
        Self::with_pulse_model(tolerance, 0.25, Self::DEFAULT_PULSE_ENERGY)
    }

    /// Creates a scheme with an explicit pulse model.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] unless
    /// `0 < tolerance < 1`, `pulse_sigma` is finite and non-negative, and
    /// `pulse_energy` is finite and positive.
    pub fn with_pulse_model(
        tolerance: f64,
        pulse_sigma: f64,
        pulse_energy: Joules,
    ) -> Result<Self, MemristorError> {
        if !(tolerance.is_finite() && tolerance > 0.0 && tolerance < 1.0) {
            return Err(MemristorError::InvalidParameter {
                what: "write tolerance must lie in (0, 1)",
            });
        }
        if !(pulse_sigma.is_finite() && pulse_sigma >= 0.0) {
            return Err(MemristorError::InvalidParameter {
                what: "pulse sigma must be finite and non-negative",
            });
        }
        if !(pulse_energy.0.is_finite() && pulse_energy.0 > 0.0) {
            return Err(MemristorError::InvalidParameter {
                what: "pulse energy must be finite and positive",
            });
        }
        Ok(Self {
            tolerance,
            pulse_sigma,
            pulse_energy,
        })
    }

    /// Equivalent bit precision over the full conductance window,
    /// `floor(log2(1 / tolerance))` — 3 % accuracy distinguishes ~33 levels,
    /// matching the paper's "3 % write accuracy (equivalent to 5-bits)" and
    /// "precision up to 0.3 % (equivalent to 8-bits)".
    #[must_use]
    pub fn equivalent_bits(&self) -> u32 {
        (1.0 / self.tolerance).log2().floor().max(0.0) as u32
    }

    /// Expected pulse count to program a full-range transition — a proxy for
    /// the paper's observation that write energy grows with precision. Each
    /// verify step cuts the residual error by roughly half (binary-search
    /// style tuning per \[2\]), so pulses ≈ `log2(1 / tolerance)` plus a
    /// constant.
    #[must_use]
    pub fn expected_pulses(&self) -> u32 {
        ((1.0 / self.tolerance).log2().ceil() as u32).max(1)
    }
}

/// Escalation policy for [`Memristor::program_with_retry`].
///
/// When a program-and-verify attempt ends out of band (a stuck or sluggish
/// cell), the writer retries with a stronger pulse amplitude: attempt `k`
/// (0-based) uses amplitude `1 + k · amplitude_step`. The total pulse count
/// across all attempts never exceeds `pulse_budget`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum program-and-verify attempts (first try included).
    pub max_attempts: u32,
    /// Amplitude increment per retry (relative; 0.5 ⇒ 1.0×, 1.5×, 2.0×…).
    pub amplitude_step: f64,
    /// Hard cap on total pulses across every attempt.
    pub pulse_budget: u32,
}

impl RetryPolicy {
    /// Creates a policy.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] unless
    /// `max_attempts ≥ 1`, `amplitude_step` is finite and non-negative, and
    /// `pulse_budget ≥ 1`.
    pub fn new(
        max_attempts: u32,
        amplitude_step: f64,
        pulse_budget: u32,
    ) -> Result<Self, MemristorError> {
        if max_attempts == 0 {
            return Err(MemristorError::InvalidParameter {
                what: "retry policy needs at least one attempt",
            });
        }
        if !(amplitude_step.is_finite() && amplitude_step >= 0.0) {
            return Err(MemristorError::InvalidParameter {
                what: "amplitude step must be finite and non-negative",
            });
        }
        if pulse_budget == 0 {
            return Err(MemristorError::InvalidParameter {
                what: "pulse budget must be positive",
            });
        }
        Ok(Self {
            max_attempts,
            amplitude_step,
            pulse_budget,
        })
    }
}

impl Default for RetryPolicy {
    /// Three attempts escalating 1.0× → 1.5× → 2.0×, with a pulse budget of
    /// three nominal write caps.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            amplitude_step: 0.5,
            pulse_budget: 3 * (4 * WriteScheme::paper().expected_pulses() + 16),
        }
    }
}

/// Outcome of a retry-with-backoff programming operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryReport {
    /// Attempts actually executed (≥ 1).
    pub attempts: u32,
    /// Total pulses across every attempt (≤ the policy's budget).
    pub pulses: u32,
    /// Total write energy (escalated pulses cost `amplitude²` each).
    pub energy: Joules,
    /// Relative error of the final verify read with respect to the target.
    pub relative_error: f64,
    /// `true` when the final state verified inside the tolerance band;
    /// `false` marks the cell unrecoverable (e.g. a stuck-at defect).
    pub recovered: bool,
}

impl Memristor {
    /// Programs the cell to `target` using `scheme`'s program-and-verify
    /// loop.
    ///
    /// The loop halves the residual error each pulse (with multiplicative
    /// pulse noise) until the state is inside the tolerance band; the final
    /// state therefore carries a residual error uniformly-ish distributed in
    /// the band, which is exactly the "memristor variation" the paper's
    /// system simulations include.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::ConductanceOutOfRange`] if `target` is
    /// outside the programmable window.
    pub fn program<R: Rng + ?Sized>(
        &mut self,
        target: Siemens,
        scheme: &WriteScheme,
        rng: &mut R,
    ) -> Result<WriteReport, MemristorError> {
        self.program_with(target, scheme, rng, &NoopRecorder)
    }

    /// Like [`Memristor::program`], recording device-event telemetry on
    /// `recorder`: `memristor.write_pulses` counts every pulse applied and
    /// `memristor.verify_checks` every verify read of the loop.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::ConductanceOutOfRange`] if `target` is
    /// outside the programmable window.
    pub fn program_with<R: Rng + ?Sized, T: Recorder>(
        &mut self,
        target: Siemens,
        scheme: &WriteScheme,
        rng: &mut R,
        recorder: &T,
    ) -> Result<WriteReport, MemristorError> {
        self.check_target(target)?;
        // Cap pulse count: tolerance ∈ (0,1) means ≤ ~60 ideal halvings; noise
        // can add a few more. A hard cap keeps the loop total.
        let cap = nominal_cap(scheme);
        Ok(self.program_impl(target, scheme, 1.0, cap, rng, recorder))
    }

    /// Programs the cell with amplitude escalation on failure: each verify
    /// miss retries the whole program-and-verify loop at a stronger pulse
    /// amplitude per `policy`, within a hard total pulse budget.
    ///
    /// Telemetry: in addition to the per-attempt pulse/verify counters,
    /// `memristor.write_retries` counts attempts beyond the first and
    /// `memristor.unrecoverable_cells` increments once if the cell never
    /// verifies in band — the signature of a stuck-at defect.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::ConductanceOutOfRange`] if `target` is
    /// outside the programmable window.
    pub fn program_with_retry<R: Rng + ?Sized, T: Recorder>(
        &mut self,
        target: Siemens,
        scheme: &WriteScheme,
        policy: &RetryPolicy,
        rng: &mut R,
        recorder: &T,
    ) -> Result<RetryReport, MemristorError> {
        self.check_target(target)?;
        let mut attempts = 0u32;
        let mut pulses = 0u32;
        let mut energy = Joules::ZERO;
        let mut relative_error = (self.conductance().0 - target.0) / target.0;
        let mut recovered = relative_error.abs() <= scheme.tolerance;
        for k in 0..policy.max_attempts {
            if recovered || pulses >= policy.pulse_budget {
                break;
            }
            if k > 0 {
                recorder.counter("memristor.write_retries", 1);
            }
            attempts += 1;
            let amplitude = 1.0 + f64::from(k) * policy.amplitude_step;
            // Each attempt gets at most the remaining budget, so the total
            // can never exceed `policy.pulse_budget`.
            let cap = nominal_cap(scheme).min(policy.pulse_budget - pulses);
            let report = self.program_impl(target, scheme, amplitude, cap, rng, recorder);
            pulses += report.pulses;
            energy = Joules(energy.0 + report.energy.0);
            relative_error = report.relative_error;
            recovered = relative_error.abs() <= scheme.tolerance;
        }
        if !recovered {
            recorder.counter("memristor.unrecoverable_cells", 1);
        }
        Ok(RetryReport {
            attempts,
            pulses,
            energy,
            relative_error,
            recovered,
        })
    }

    fn check_target(&self, target: Siemens) -> Result<(), MemristorError> {
        if self.limits().contains(target) {
            Ok(())
        } else {
            Err(MemristorError::ConductanceOutOfRange {
                requested: target.0,
                min: self.limits().g_min().0,
                max: self.limits().g_max().0,
            })
        }
    }

    /// One program-and-verify pass at a given pulse `amplitude` (1.0 =
    /// nominal). Stronger pulses take proportionally larger steps and cost
    /// `amplitude²` energy each (I²R scaling); verify reads always observe
    /// the cell's effective conductance, so a pinned (stuck-at) cell never
    /// verifies in band and exhausts `cap`.
    fn program_impl<R: Rng + ?Sized, T: Recorder>(
        &mut self,
        target: Siemens,
        scheme: &WriteScheme,
        amplitude: f64,
        cap: u32,
        rng: &mut R,
        recorder: &T,
    ) -> WriteReport {
        let noise = Normal::new(0.0, scheme.pulse_sigma.max(f64::MIN_POSITIVE))
            .expect("sigma validated at construction");
        let mut pulses = 0u32;
        let mut verifies = 0u64;

        // Coarse phase: halve the residual until within twice the band.
        while pulses < cap {
            verifies += 1;
            let err = (self.conductance().0 - target.0) / target.0;
            if err.abs() <= 2.0 * scheme.tolerance {
                break;
            }
            let step = 0.5 * amplitude * (target.0 - self.conductance().0);
            let jitter = if scheme.pulse_sigma > 0.0 {
                1.0 + noise.sample(rng)
            } else {
                1.0
            };
            self.force_conductance(Siemens(self.conductance().0 + step * jitter));
            pulses += 1;
        }

        // Fine phase: a trim pulse whose landing point scatters symmetrically
        // inside the band (truncated Gaussian, σ = tolerance / 2). This is
        // the behavioural signature of verify-terminated tuning: once the
        // verify read sees the state in-band the loop stops, and reported
        // residuals in fine-tuning experiments [1-2] spread across the whole
        // band rather than hugging one edge.
        verifies += 1;
        let err = (self.conductance().0 - target.0) / target.0;
        if err.abs() > scheme.tolerance && pulses < cap {
            let trim = Normal::new(0.0, scheme.tolerance / 2.0)
                .expect("tolerance validated at construction");
            // Clamp strictly inside the band so round-off cannot push the
            // final relative error infinitesimally past the tolerance.
            let bound = scheme.tolerance * 0.999;
            let u = trim.sample(rng).clamp(-bound, bound);
            self.force_conductance(Siemens(target.0 * (1.0 + u)));
            pulses += 1;
        }

        recorder.counter("memristor.write_pulses", u64::from(pulses));
        recorder.counter("memristor.verify_checks", verifies);
        let relative_error = (self.conductance().0 - target.0) / target.0;
        WriteReport {
            pulses,
            energy: scheme.pulse_energy * (f64::from(pulses) * amplitude * amplitude),
            relative_error,
        }
    }
}

/// Per-attempt pulse cap for one program-and-verify pass.
fn nominal_cap(scheme: &WriteScheme) -> u32 {
    4 * scheme.expected_pulses() + 16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceLimits;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_scheme_is_five_bits() {
        assert_eq!(WriteScheme::paper().equivalent_bits(), 5);
    }

    #[test]
    fn high_precision_scheme_is_eight_bits() {
        // 0.3 % band → ~167 levels → 7 full bits by the floor rule; the
        // paper's "equivalent to 8-bits" counts the band one-sided.
        assert!(WriteScheme::high_precision().equivalent_bits() >= 7);
    }

    #[test]
    fn tighter_tolerance_needs_more_pulses() {
        let coarse = WriteScheme::new(0.1).unwrap();
        let fine = WriteScheme::new(0.003).unwrap();
        assert!(fine.expected_pulses() > coarse.expected_pulses());
    }

    #[test]
    fn scheme_validation() {
        assert!(WriteScheme::new(0.0).is_err());
        assert!(WriteScheme::new(1.0).is_err());
        assert!(WriteScheme::new(-0.1).is_err());
        assert!(WriteScheme::new(f64::NAN).is_err());
        assert!(WriteScheme::with_pulse_model(0.03, -1.0, Joules(1e-12)).is_err());
        assert!(WriteScheme::with_pulse_model(0.03, 0.1, Joules(0.0)).is_err());
    }

    #[test]
    fn program_lands_inside_tolerance() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let scheme = WriteScheme::paper();
        let mut cell = Memristor::new(DeviceLimits::PAPER);
        for target_frac in [0.0, 0.1, 0.35, 0.72, 1.0] {
            let lo = DeviceLimits::PAPER.g_min().0;
            let hi = DeviceLimits::PAPER.g_max().0;
            let target = Siemens(lo + target_frac * (hi - lo));
            let report = cell.program(target, &scheme, &mut rng).unwrap();
            assert!(
                report.relative_error.abs() <= scheme.tolerance,
                "target {target_frac}: error {}",
                report.relative_error
            );
            let final_err = (cell.conductance().0 - target.0).abs() / target.0;
            assert!(final_err <= scheme.tolerance);
        }
    }

    #[test]
    fn program_rejects_out_of_window_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut cell = Memristor::new(DeviceLimits::PAPER);
        assert!(matches!(
            cell.program(Siemens(1.0), &WriteScheme::paper(), &mut rng),
            Err(MemristorError::ConductanceOutOfRange { .. })
        ));
    }

    #[test]
    fn program_energy_grows_with_precision() {
        // Average pulse count over many writes must be higher for the
        // fine-tolerance scheme — the paper's "energy cost of write
        // increases for higher precision".
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let total = |tol: f64, rng: &mut ChaCha8Rng| -> f64 {
            let scheme = WriteScheme::new(tol).unwrap();
            let mut energy = 0.0;
            for k in 0..200 {
                let mut cell = Memristor::new(DeviceLimits::PAPER);
                let frac = f64::from(k % 32) / 31.0;
                let lo = DeviceLimits::PAPER.g_min().0;
                let hi = DeviceLimits::PAPER.g_max().0;
                let target = Siemens(lo + frac * (hi - lo));
                energy += cell.program(target, &scheme, rng).unwrap().energy.0;
            }
            energy
        };
        let coarse = total(0.1, &mut rng);
        let fine = total(0.003, &mut rng);
        assert!(
            fine > 1.5 * coarse,
            "fine writes should cost more energy: {fine} vs {coarse}"
        );
    }

    #[test]
    fn already_at_target_needs_zero_pulses() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = Siemens(5e-4);
        let mut cell = Memristor::with_conductance(DeviceLimits::PAPER, g).unwrap();
        let report = cell.program(g, &WriteScheme::paper(), &mut rng).unwrap();
        assert_eq!(report.pulses, 0);
        assert_eq!(report.energy, Joules::ZERO);
    }

    #[test]
    fn deterministic_per_seed() {
        let scheme = WriteScheme::paper();
        let target = Siemens(4e-4);
        let run = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut cell = Memristor::new(DeviceLimits::PAPER);
            cell.program(target, &scheme, &mut rng).unwrap();
            cell.conductance()
        };
        assert_eq!(run(77), run(77));
    }

    #[test]
    fn retry_policy_validation() {
        assert!(RetryPolicy::new(0, 0.5, 100).is_err());
        assert!(RetryPolicy::new(3, -0.5, 100).is_err());
        assert!(RetryPolicy::new(3, f64::NAN, 100).is_err());
        assert!(RetryPolicy::new(3, 0.5, 0).is_err());
        let p = RetryPolicy::default();
        assert!(p.max_attempts >= 1 && p.pulse_budget >= 1);
    }

    #[test]
    fn healthy_cell_recovers_on_first_attempt() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut cell = Memristor::new(DeviceLimits::PAPER);
        let report = cell
            .program_with_retry(
                Siemens(5e-4),
                &WriteScheme::paper(),
                &RetryPolicy::default(),
                &mut rng,
                &NoopRecorder,
            )
            .unwrap();
        assert!(report.recovered);
        assert_eq!(report.attempts, 1);
        assert!(report.relative_error.abs() <= WriteScheme::paper().tolerance);
        assert!(report.pulses <= RetryPolicy::default().pulse_budget);
    }

    #[test]
    fn already_in_band_cell_needs_no_attempt() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let g = Siemens(5e-4);
        let mut cell = Memristor::with_conductance(DeviceLimits::PAPER, g).unwrap();
        let report = cell
            .program_with_retry(
                g,
                &WriteScheme::paper(),
                &RetryPolicy::default(),
                &mut rng,
                &NoopRecorder,
            )
            .unwrap();
        assert!(report.recovered);
        assert_eq!(report.attempts, 0);
        assert_eq!(report.pulses, 0);
        assert_eq!(report.energy, Joules::ZERO);
    }

    #[test]
    fn stuck_cell_is_unrecoverable_within_budget() {
        let recorder = spinamm_telemetry::MemoryRecorder::default();
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let mut cell = Memristor::new(DeviceLimits::PAPER);
        cell.pin(DeviceLimits::PAPER.g_min());
        let policy = RetryPolicy::new(4, 0.5, 90).unwrap();
        let report = cell
            .program_with_retry(
                DeviceLimits::PAPER.g_max(),
                &WriteScheme::paper(),
                &policy,
                &mut rng,
                &recorder,
            )
            .unwrap();
        assert!(!report.recovered);
        assert!(report.pulses <= policy.pulse_budget, "{}", report.pulses);
        assert!(report.attempts >= 2, "escalation should retry");
        assert!(report.relative_error.abs() > WriteScheme::paper().tolerance);
        let snap = recorder.snapshot();
        assert_eq!(
            snap.counter("memristor.write_retries"),
            u64::from(report.attempts - 1)
        );
        assert_eq!(snap.counter("memristor.unrecoverable_cells"), 1);
        assert_eq!(
            snap.counter("memristor.write_pulses"),
            u64::from(report.pulses)
        );
    }

    #[test]
    fn escalated_pulses_cost_quadratic_energy() {
        // A stuck cell burns the whole budget; with escalation the energy
        // must exceed pulses × nominal pulse energy.
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let mut cell = Memristor::new(DeviceLimits::PAPER);
        cell.pin(DeviceLimits::PAPER.g_min());
        let scheme = WriteScheme::paper();
        let policy = RetryPolicy::new(3, 1.0, 300).unwrap();
        let report = cell
            .program_with_retry(
                DeviceLimits::PAPER.g_max(),
                &scheme,
                &policy,
                &mut rng,
                &NoopRecorder,
            )
            .unwrap();
        assert!(report.energy.0 > scheme.pulse_energy.0 * f64::from(report.pulses));
    }

    #[test]
    fn retry_rejects_out_of_window_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut cell = Memristor::new(DeviceLimits::PAPER);
        assert!(cell
            .program_with_retry(
                Siemens(1.0),
                &WriteScheme::paper(),
                &RetryPolicy::default(),
                &mut rng,
                &NoopRecorder,
            )
            .is_err());
    }

    #[test]
    fn residual_errors_spread_inside_band() {
        // Distinct cells programmed to the same target must NOT all land on
        // the same value (that would defeat the variation model).
        let scheme = WriteScheme::paper();
        let target = Siemens(5e-4);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let finals: Vec<f64> = (0..50)
            .map(|_| {
                let mut cell = Memristor::new(DeviceLimits::PAPER);
                cell.program(target, &scheme, &mut rng).unwrap();
                cell.conductance().0
            })
            .collect();
        let distinct = {
            let mut v = finals.clone();
            v.sort_by(f64::total_cmp);
            v.dedup();
            v.len()
        };
        assert!(distinct > 10, "only {distinct} distinct programmed values");
        for g in finals {
            assert!(((g - target.0) / target.0).abs() <= scheme.tolerance);
        }
    }
}
