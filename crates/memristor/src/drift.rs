//! Conductance drift (retention) of programmed Ag-Si cells.
//!
//! Filamentary memristors relax after programming: conductance decays
//! toward the off state with a roughly logarithmic time dependence
//! (`g(t) = g₀·(1 − ν·log₁₀(1 + t/t₀))` with device-to-device variation of
//! the drift coefficient ν). The paper treats the stored templates as
//! non-volatile, which is valid over its evaluation horizon — this module
//! makes the horizon *quantitative*: how long until drift eats the 3 %
//! write tolerance, and what a reprogramming refresh restores.

use crate::device::Memristor;
use crate::MemristorError;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use spinamm_circuit::units::{Seconds, Siemens};

/// Logarithmic drift model.
///
/// # Example
///
/// ```
/// use spinamm_memristor::DriftModel;
///
/// let m = DriftModel::TYPICAL;
/// // How long until the 3 % write band is consumed?
/// let t = m.time_to_loss(0.03).expect("nonzero drift");
/// assert!(t.0 > 1e5, "days, not seconds");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    /// Median relative decay per decade of time, `ν`.
    pub nu: f64,
    /// Onset time `t₀` (drift is negligible before it).
    pub t0: Seconds,
    /// Device-to-device relative spread of `ν`.
    pub nu_sigma: f64,
}

impl DriftModel {
    /// A representative Ag-Si retention corner: 0.5 % decay per decade
    /// starting at 1 s, with 30 % device spread. At this corner a template
    /// stays within the 3 % write band for months — consistent with the
    /// paper's treatment of the stored patterns as non-volatile.
    pub const TYPICAL: DriftModel = DriftModel {
        nu: 0.005,
        t0: Seconds(1.0),
        nu_sigma: 0.3,
    };

    /// An aggressive (worn / hot) corner: 3 % per decade.
    pub const AGGRESSIVE: DriftModel = DriftModel {
        nu: 0.03,
        t0: Seconds(1.0),
        nu_sigma: 0.3,
    };

    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] unless `0 ≤ nu < 1`,
    /// `t0 > 0` and `nu_sigma ≥ 0` (all finite).
    pub fn new(nu: f64, t0: Seconds, nu_sigma: f64) -> Result<Self, MemristorError> {
        if !(nu.is_finite() && (0.0..1.0).contains(&nu)) {
            return Err(MemristorError::InvalidParameter {
                what: "drift coefficient must lie in [0, 1)",
            });
        }
        if !(t0.0.is_finite() && t0.0 > 0.0) {
            return Err(MemristorError::InvalidParameter {
                what: "drift onset time must be finite and positive",
            });
        }
        if !(nu_sigma.is_finite() && nu_sigma >= 0.0) {
            return Err(MemristorError::InvalidParameter {
                what: "drift spread must be finite and non-negative",
            });
        }
        Ok(Self { nu, t0, nu_sigma })
    }

    /// Median remaining fraction of the programmed conductance after
    /// `elapsed` (clamped at zero).
    #[must_use]
    pub fn median_retention(&self, elapsed: Seconds) -> f64 {
        if elapsed.0 <= 0.0 {
            return 1.0;
        }
        (1.0 - self.nu * (1.0 + elapsed.0 / self.t0.0).log10()).max(0.0)
    }

    /// The elapsed time at which the median drift reaches a relative loss
    /// of `tolerance` (e.g. the 3 % write band), or `None` if it never does
    /// (`nu == 0`).
    #[must_use]
    pub fn time_to_loss(&self, tolerance: f64) -> Option<Seconds> {
        if self.nu <= 0.0 {
            return None;
        }
        // 1 − ν·log10(1 + t/t0) = 1 − tolerance → t = t0·(10^(tol/ν) − 1).
        Some(Seconds(
            self.t0.0 * (10.0_f64.powf(tolerance / self.nu) - 1.0),
        ))
    }

    /// Samples one device's retention fraction after `elapsed` (its ν drawn
    /// with the configured spread, truncated at zero).
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] when `elapsed` is not
    /// finite — a NaN/∞ horizon would otherwise silently collapse the
    /// retention to zero (NaN falls through `max`) and erase the template
    /// when the aged conductance is stamped into the crossbar.
    pub fn sample_retention<R: Rng + ?Sized>(
        &self,
        elapsed: Seconds,
        rng: &mut R,
    ) -> Result<f64, MemristorError> {
        if !elapsed.0.is_finite() {
            return Err(MemristorError::InvalidParameter {
                what: "elapsed time must be finite",
            });
        }
        if elapsed.0 <= 0.0 || self.nu == 0.0 {
            return Ok(1.0);
        }
        let nu = if self.nu_sigma > 0.0 {
            let normal = Normal::new(0.0, self.nu_sigma).expect("sigma validated");
            (self.nu * (1.0 + normal.sample(rng))).max(0.0)
        } else {
            self.nu
        };
        Ok((1.0 - nu * (1.0 + elapsed.0 / self.t0.0).log10()).max(0.0))
    }
}

impl Default for DriftModel {
    fn default() -> Self {
        Self::TYPICAL
    }
}

impl Memristor {
    /// Ages the cell by `elapsed` under a drift model (conductance decays
    /// toward — and is floored at — the device's off state).
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] when `elapsed` is not
    /// finite; the cell state is left untouched in that case.
    pub fn age<R: Rng + ?Sized>(
        &mut self,
        elapsed: Seconds,
        model: &DriftModel,
        rng: &mut R,
    ) -> Result<(), MemristorError> {
        let fraction = model.sample_retention(elapsed, rng)?;
        let g = self.conductance().0 * fraction;
        let floored = g.max(self.limits().g_min().0);
        self.force_conductance(Siemens(floored));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceLimits;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn median_retention_shape() {
        let m = DriftModel::TYPICAL;
        assert_eq!(m.median_retention(Seconds(0.0)), 1.0);
        let day = m.median_retention(Seconds(86_400.0));
        let year = m.median_retention(Seconds(3.15e7));
        assert!(day < 1.0 && year < day, "day {day}, year {year}");
        // Typical corner: still inside the 3 % write band after a day.
        assert!(1.0 - day < 0.03, "day loss {}", 1.0 - day);
    }

    #[test]
    fn time_to_write_band_is_long_at_typical_corner() {
        let t = DriftModel::TYPICAL.time_to_loss(0.03).unwrap();
        // 3 % / 0.5 % per decade = 6 decades from 1 s ≈ 11 days.
        assert!(t.0 > 5e5, "time to 3 % loss {} s", t.0);
        // The aggressive corner crosses the band within minutes.
        let t_bad = DriftModel::AGGRESSIVE.time_to_loss(0.03).unwrap();
        assert!(t_bad.0 < 60.0, "aggressive {} s", t_bad.0);
        // Zero drift never loses.
        let frozen = DriftModel::new(0.0, Seconds(1.0), 0.0).unwrap();
        assert!(frozen.time_to_loss(0.03).is_none());
        assert_eq!(frozen.median_retention(Seconds(1e9)), 1.0);
    }

    #[test]
    fn time_to_loss_is_consistent_with_retention() {
        let m = DriftModel::TYPICAL;
        let t = m.time_to_loss(0.03).unwrap();
        let r = m.median_retention(t);
        assert!((r - 0.97).abs() < 1e-9, "retention at crossing {r}");
    }

    #[test]
    fn aging_a_cell_reduces_conductance() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut cell = Memristor::with_conductance(DeviceLimits::PAPER, Siemens(8e-4)).unwrap();
        cell.age(Seconds(1e6), &DriftModel::AGGRESSIVE, &mut rng)
            .unwrap();
        assert!(cell.conductance().0 < 8e-4);
        assert!(cell.conductance().0 >= DeviceLimits::PAPER.g_min().0);
    }

    #[test]
    fn aging_floors_at_off_state() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut cell = Memristor::new(DeviceLimits::PAPER); // already off
        cell.age(Seconds(1e12), &DriftModel::AGGRESSIVE, &mut rng)
            .unwrap();
        assert_eq!(cell.conductance(), DeviceLimits::PAPER.g_min());
    }

    #[test]
    fn device_spread_produces_distinct_retentions() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let m = DriftModel::TYPICAL;
        let samples: Vec<f64> = (0..50)
            .map(|_| m.sample_retention(Seconds(1e6), &mut rng).unwrap())
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        assert!(
            sorted.len() > 40,
            "spread produced {} distinct values",
            sorted.len()
        );
        // All within a sane band around the median.
        let median = m.median_retention(Seconds(1e6));
        for s in samples {
            assert!((s - median).abs() < 0.05);
        }
    }

    #[test]
    fn non_finite_elapsed_is_rejected_and_state_preserved() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let m = DriftModel::TYPICAL;
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                m.sample_retention(Seconds(bad), &mut rng).is_err(),
                "sample_retention must reject {bad}"
            );
            let mut cell = Memristor::with_conductance(DeviceLimits::PAPER, Siemens(8e-4)).unwrap();
            assert!(cell.age(Seconds(bad), &m, &mut rng).is_err());
            assert_eq!(
                cell.conductance(),
                Siemens(8e-4),
                "failed aging must not disturb the cell"
            );
        }
    }

    #[test]
    fn validation() {
        assert!(DriftModel::new(-0.1, Seconds(1.0), 0.1).is_err());
        assert!(DriftModel::new(1.0, Seconds(1.0), 0.1).is_err());
        assert!(DriftModel::new(0.01, Seconds(0.0), 0.1).is_err());
        assert!(DriftModel::new(0.01, Seconds(1.0), -1.0).is_err());
        assert_eq!(DriftModel::default(), DriftModel::TYPICAL);
    }
}
