//! Conductance drift (retention) of programmed Ag-Si cells.
//!
//! Filamentary memristors relax after programming: conductance decays
//! toward the off state with a roughly logarithmic time dependence
//! (`g(t) = g₀·(1 − ν·log₁₀(1 + t/t₀))` with device-to-device variation of
//! the drift coefficient ν). The paper treats the stored templates as
//! non-volatile, which is valid over its evaluation horizon — this module
//! makes the horizon *quantitative*: how long until drift eats the 3 %
//! write tolerance, and what a reprogramming refresh restores.

use crate::device::Memristor;
use crate::MemristorError;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use spinamm_circuit::units::Seconds;

/// Logarithmic drift model.
///
/// # Example
///
/// ```
/// use spinamm_memristor::DriftModel;
///
/// let m = DriftModel::TYPICAL;
/// // How long until the 3 % write band is consumed?
/// let t = m.time_to_loss(0.03).expect("nonzero drift");
/// assert!(t.0 > 1e5, "days, not seconds");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    /// Median relative decay per decade of time, `ν`.
    pub nu: f64,
    /// Onset time `t₀` (drift is negligible before it).
    pub t0: Seconds,
    /// Device-to-device relative spread of `ν`.
    pub nu_sigma: f64,
}

impl DriftModel {
    /// A representative Ag-Si retention corner: 0.5 % decay per decade
    /// starting at 1 s, with 30 % device spread. At this corner a template
    /// stays within the 3 % write band for months — consistent with the
    /// paper's treatment of the stored patterns as non-volatile.
    pub const TYPICAL: DriftModel = DriftModel {
        nu: 0.005,
        t0: Seconds(1.0),
        nu_sigma: 0.3,
    };

    /// An aggressive (worn / hot) corner: 3 % per decade.
    pub const AGGRESSIVE: DriftModel = DriftModel {
        nu: 0.03,
        t0: Seconds(1.0),
        nu_sigma: 0.3,
    };

    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] unless `0 ≤ nu < 1`,
    /// `t0 > 0` and `nu_sigma ≥ 0` (all finite).
    pub fn new(nu: f64, t0: Seconds, nu_sigma: f64) -> Result<Self, MemristorError> {
        if !(nu.is_finite() && (0.0..1.0).contains(&nu)) {
            return Err(MemristorError::InvalidParameter {
                what: "drift coefficient must lie in [0, 1)",
            });
        }
        if !(t0.0.is_finite() && t0.0 > 0.0) {
            return Err(MemristorError::InvalidParameter {
                what: "drift onset time must be finite and positive",
            });
        }
        if !(nu_sigma.is_finite() && nu_sigma >= 0.0) {
            return Err(MemristorError::InvalidParameter {
                what: "drift spread must be finite and non-negative",
            });
        }
        Ok(Self { nu, t0, nu_sigma })
    }

    /// Median remaining fraction of the programmed conductance after
    /// `elapsed` (clamped at zero).
    #[must_use]
    pub fn median_retention(&self, elapsed: Seconds) -> f64 {
        if elapsed.0 <= 0.0 {
            return 1.0;
        }
        (1.0 - self.nu * (1.0 + elapsed.0 / self.t0.0).log10()).max(0.0)
    }

    /// The elapsed time at which the median drift reaches a relative loss
    /// of `tolerance` (e.g. the 3 % write band), or `None` if it never does:
    /// either `nu == 0`, or `tolerance / nu` is so large that
    /// `10^(tol/ν)` overflows — the crossing time is beyond any
    /// representable horizon.
    #[must_use]
    pub fn time_to_loss(&self, tolerance: f64) -> Option<Seconds> {
        if self.nu <= 0.0 {
            return None;
        }
        // 1 − ν·log10(1 + t/t0) = 1 − tolerance → t = t0·(10^(tol/ν) − 1).
        let t = self.t0.0 * (10.0_f64.powf(tolerance / self.nu) - 1.0);
        t.is_finite().then_some(Seconds(t))
    }

    /// Draws one device's drift coefficient ν with the configured spread,
    /// clamped to the model's validated `[0, 1)` contract — the sampled
    /// tail must not exceed the decay a valid model could be built with,
    /// or a single aging step could erase a cell outright.
    pub fn sample_nu<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.nu == 0.0 || self.nu_sigma == 0.0 {
            return self.nu;
        }
        let normal = Normal::new(0.0, self.nu_sigma).expect("sigma validated");
        (self.nu * (1.0 + normal.sample(rng))).clamp(0.0, NU_CEIL)
    }

    /// Retention fraction after `elapsed` for a specific device's drift
    /// coefficient `nu` (e.g. one drawn once at program time with
    /// [`DriftModel::sample_nu`] and held fixed for the filament's life —
    /// how the lifetime scheduler gets deterministic per-cell
    /// trajectories).
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] when `elapsed` is not
    /// finite or `nu` lies outside `[0, 1)`.
    pub fn retention_with(&self, nu: f64, elapsed: Seconds) -> Result<f64, MemristorError> {
        if !elapsed.0.is_finite() {
            return Err(MemristorError::InvalidParameter {
                what: "elapsed time must be finite",
            });
        }
        if !(nu.is_finite() && (0.0..1.0).contains(&nu)) {
            return Err(MemristorError::InvalidParameter {
                what: "drift coefficient must lie in [0, 1)",
            });
        }
        if elapsed.0 <= 0.0 || nu == 0.0 {
            return Ok(1.0);
        }
        Ok((1.0 - nu * (1.0 + elapsed.0 / self.t0.0).log10()).max(0.0))
    }

    /// Samples one device's retention fraction after `elapsed` (its ν drawn
    /// with the configured spread, clamped into the model's `[0, 1)`
    /// contract).
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] when `elapsed` is not
    /// finite — a NaN/∞ horizon would otherwise silently collapse the
    /// retention to zero (NaN falls through `max`) and erase the template
    /// when the aged conductance is stamped into the crossbar.
    pub fn sample_retention<R: Rng + ?Sized>(
        &self,
        elapsed: Seconds,
        rng: &mut R,
    ) -> Result<f64, MemristorError> {
        if !elapsed.0.is_finite() {
            return Err(MemristorError::InvalidParameter {
                what: "elapsed time must be finite",
            });
        }
        if elapsed.0 <= 0.0 || self.nu == 0.0 {
            return Ok(1.0);
        }
        let nu = self.sample_nu(rng);
        Ok((1.0 - nu * (1.0 + elapsed.0 / self.t0.0).log10()).max(0.0))
    }
}

/// Upper clamp for sampled drift coefficients: the largest value still
/// inside the `nu < 1` construction contract.
const NU_CEIL: f64 = 1.0 - 1e-9;

impl Default for DriftModel {
    fn default() -> Self {
        Self::TYPICAL
    }
}

impl Memristor {
    /// Sets the cell's absolute age since its last write to `elapsed`:
    /// conductance becomes `g₀ · retention(elapsed)` where `g₀` is the
    /// programmed reference (floored at the device's off state). Because
    /// the decay is computed from the reference rather than the current
    /// state, calls compose: `age_to(t)` gives the same state no matter
    /// how many intermediate ages were visited (exactly so for the median
    /// model; up to ν re-sampling under device spread).
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] when `elapsed` is not
    /// finite and non-negative; the cell state is left untouched.
    pub fn age_to<R: Rng + ?Sized>(
        &mut self,
        elapsed: Seconds,
        model: &DriftModel,
        rng: &mut R,
    ) -> Result<(), MemristorError> {
        if elapsed.0 < 0.0 {
            return Err(MemristorError::InvalidParameter {
                what: "cell age must be finite and non-negative",
            });
        }
        let fraction = model.sample_retention(elapsed, rng)?;
        self.apply_retention(elapsed, fraction)
    }

    /// Ages the cell by a *further* `elapsed` under a drift model
    /// (conductance decays toward — and is floored at — the device's off
    /// state). Rebased shim over [`Memristor::age_to`]: the increment is
    /// added to the age accumulated since the last write, so
    /// `age(t₁); age(t₂)` lands on the same state as `age(t₁+t₂)` instead
    /// of compounding the decay — the historical bug this replaces.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] when `elapsed` is not
    /// finite; the cell state is left untouched in that case.
    pub fn age<R: Rng + ?Sized>(
        &mut self,
        elapsed: Seconds,
        model: &DriftModel,
        rng: &mut R,
    ) -> Result<(), MemristorError> {
        if !elapsed.0.is_finite() {
            return Err(MemristorError::InvalidParameter {
                what: "elapsed time must be finite",
            });
        }
        // Negative increments were always no-ops (retention 1); keep that.
        self.age_to(Seconds(self.aged().0 + elapsed.0.max(0.0)), model, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceLimits;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spinamm_circuit::units::Siemens;

    #[test]
    fn median_retention_shape() {
        let m = DriftModel::TYPICAL;
        assert_eq!(m.median_retention(Seconds(0.0)), 1.0);
        let day = m.median_retention(Seconds(86_400.0));
        let year = m.median_retention(Seconds(3.15e7));
        assert!(day < 1.0 && year < day, "day {day}, year {year}");
        // Typical corner: still inside the 3 % write band after a day.
        assert!(1.0 - day < 0.03, "day loss {}", 1.0 - day);
    }

    #[test]
    fn time_to_write_band_is_long_at_typical_corner() {
        let t = DriftModel::TYPICAL.time_to_loss(0.03).unwrap();
        // 3 % / 0.5 % per decade = 6 decades from 1 s ≈ 11 days.
        assert!(t.0 > 5e5, "time to 3 % loss {} s", t.0);
        // The aggressive corner crosses the band within minutes.
        let t_bad = DriftModel::AGGRESSIVE.time_to_loss(0.03).unwrap();
        assert!(t_bad.0 < 60.0, "aggressive {} s", t_bad.0);
        // Zero drift never loses.
        let frozen = DriftModel::new(0.0, Seconds(1.0), 0.0).unwrap();
        assert!(frozen.time_to_loss(0.03).is_none());
        assert_eq!(frozen.median_retention(Seconds(1e9)), 1.0);
    }

    #[test]
    fn time_to_loss_is_consistent_with_retention() {
        let m = DriftModel::TYPICAL;
        let t = m.time_to_loss(0.03).unwrap();
        let r = m.median_retention(t);
        assert!((r - 0.97).abs() < 1e-9, "retention at crossing {r}");
    }

    #[test]
    fn aging_a_cell_reduces_conductance() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut cell = Memristor::with_conductance(DeviceLimits::PAPER, Siemens(8e-4)).unwrap();
        cell.age(Seconds(1e6), &DriftModel::AGGRESSIVE, &mut rng)
            .unwrap();
        assert!(cell.conductance().0 < 8e-4);
        assert!(cell.conductance().0 >= DeviceLimits::PAPER.g_min().0);
    }

    #[test]
    fn aging_floors_at_off_state() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut cell = Memristor::new(DeviceLimits::PAPER); // already off
        cell.age(Seconds(1e12), &DriftModel::AGGRESSIVE, &mut rng)
            .unwrap();
        assert_eq!(cell.conductance(), DeviceLimits::PAPER.g_min());
    }

    #[test]
    fn device_spread_produces_distinct_retentions() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let m = DriftModel::TYPICAL;
        let samples: Vec<f64> = (0..50)
            .map(|_| m.sample_retention(Seconds(1e6), &mut rng).unwrap())
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        assert!(
            sorted.len() > 40,
            "spread produced {} distinct values",
            sorted.len()
        );
        // All within a sane band around the median.
        let median = m.median_retention(Seconds(1e6));
        for s in samples {
            assert!((s - median).abs() < 0.05);
        }
    }

    #[test]
    fn non_finite_elapsed_is_rejected_and_state_preserved() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let m = DriftModel::TYPICAL;
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                m.sample_retention(Seconds(bad), &mut rng).is_err(),
                "sample_retention must reject {bad}"
            );
            let mut cell = Memristor::with_conductance(DeviceLimits::PAPER, Siemens(8e-4)).unwrap();
            assert!(cell.age(Seconds(bad), &m, &mut rng).is_err());
            assert_eq!(
                cell.conductance(),
                Siemens(8e-4),
                "failed aging must not disturb the cell"
            );
        }
    }

    #[test]
    fn validation() {
        assert!(DriftModel::new(-0.1, Seconds(1.0), 0.1).is_err());
        assert!(DriftModel::new(1.0, Seconds(1.0), 0.1).is_err());
        assert!(DriftModel::new(0.01, Seconds(0.0), 0.1).is_err());
        assert!(DriftModel::new(0.01, Seconds(1.0), -1.0).is_err());
        assert_eq!(DriftModel::default(), DriftModel::TYPICAL);
    }

    #[test]
    fn time_to_loss_overflow_returns_none() {
        // Regression: tolerance/ν in the thousands used to overflow
        // 10^(tol/ν) to ∞ and hand back Seconds(inf).
        let slow = DriftModel::new(1e-6, Seconds(1.0), 0.0).unwrap();
        assert!(slow.time_to_loss(0.03).is_none());
        assert!(DriftModel::TYPICAL.time_to_loss(1e4).is_none());
        // Finite crossings still report.
        let t = DriftModel::TYPICAL.time_to_loss(0.03).unwrap();
        assert!(t.0.is_finite() && t.0 > 0.0);
    }

    #[test]
    fn sampled_nu_tail_is_clamped_below_one() {
        // Regression: a huge device spread could push a sampled ν past 1,
        // erasing a cell in a single short aging step. The tail must obey
        // the model's nu < 1 contract.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let wild = DriftModel::new(0.03, Seconds(1.0), 1e4).unwrap();
        for _ in 0..500 {
            let nu = wild.sample_nu(&mut rng);
            assert!((0.0..1.0).contains(&nu), "sampled nu {nu} escaped [0,1)");
            // One onset-time step can no longer hit zero retention:
            // 1 − ν·log10(2) > 0 for every ν < 1.
            let r = wild.sample_retention(Seconds(1.0), &mut rng).unwrap();
            assert!(r > 0.69, "single-step retention collapsed to {r}");
        }
    }

    #[test]
    fn retention_with_matches_median_and_validates() {
        let m = DriftModel::TYPICAL;
        let r = m.retention_with(m.nu, Seconds(1e6)).unwrap();
        assert!((r - m.median_retention(Seconds(1e6))).abs() < 1e-15);
        assert_eq!(m.retention_with(0.0, Seconds(1e9)).unwrap(), 1.0);
        assert!(m.retention_with(1.0, Seconds(1.0)).is_err());
        assert!(m.retention_with(-0.1, Seconds(1.0)).is_err());
        assert!(m.retention_with(0.01, Seconds(f64::NAN)).is_err());
    }

    #[test]
    fn repeated_aging_no_longer_compounds() {
        // Regression for the composability bug: age(t1); age(t2) used to
        // re-apply the decay to the already-drifted conductance.
        let median = DriftModel::new(0.03, Seconds(1.0), 0.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut split = Memristor::with_conductance(DeviceLimits::PAPER, Siemens(8e-4)).unwrap();
        split.age(Seconds(1e3), &median, &mut rng).unwrap();
        split.age(Seconds(9e3), &median, &mut rng).unwrap();
        let mut whole = Memristor::with_conductance(DeviceLimits::PAPER, Siemens(8e-4)).unwrap();
        whole.age(Seconds(1e4), &median, &mut rng).unwrap();
        assert_eq!(split.conductance(), whole.conductance());
        assert_eq!(split.aged(), Seconds(1e4));
    }

    #[test]
    fn age_to_is_absolute_and_rewrites_rebase() {
        let median = DriftModel::new(0.03, Seconds(1.0), 0.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut cell = Memristor::with_conductance(DeviceLimits::PAPER, Siemens(8e-4)).unwrap();
        cell.age_to(Seconds(1e6), &median, &mut rng).unwrap();
        let aged_g = cell.conductance();
        assert!(aged_g.0 < 8e-4);
        assert_eq!(cell.programmed_reference(), Siemens(8e-4));
        // A re-program re-anchors the reference and zeroes the age.
        cell.set_conductance(Siemens(8e-4)).unwrap();
        assert_eq!(cell.aged(), Seconds(0.0));
        cell.age_to(Seconds(1e6), &median, &mut rng).unwrap();
        assert_eq!(
            cell.conductance(),
            aged_g,
            "refresh restarts the decay clock"
        );
        assert!(cell.age_to(Seconds(-1.0), &median, &mut rng).is_err());
    }
}

#[cfg(test)]
mod drift_props {
    use super::*;
    use crate::device::DeviceLimits;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spinamm_circuit::units::Siemens;

    proptest! {
        // The bugfix contract: for the median model (no device spread),
        // incremental aging composes bit-exactly — age(t1); age(t2) lands
        // on the identical state as age(t1 + t2).
        #[test]
        fn age_composes_for_the_median_model(
            t1 in 0.0..1e9f64,
            t2 in 0.0..1e9f64,
            nu in 0.0..0.5f64,
            g0 in 3.2e-5..1e-3f64,
        ) {
            let model = DriftModel::new(nu, Seconds(1.0), 0.0).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            let mut split =
                Memristor::with_conductance(DeviceLimits::PAPER, Siemens(g0)).unwrap();
            split.age(Seconds(t1), &model, &mut rng).unwrap();
            split.age(Seconds(t2), &model, &mut rng).unwrap();
            let mut whole =
                Memristor::with_conductance(DeviceLimits::PAPER, Siemens(g0)).unwrap();
            whole.age(Seconds(t1 + t2), &model, &mut rng).unwrap();
            prop_assert_eq!(split.conductance(), whole.conductance());
            prop_assert_eq!(split.aged(), whole.aged());
        }

        // age_to is idempotent at a fixed horizon and equals the shim path.
        #[test]
        fn age_to_matches_incremental_shim(
            steps in proptest::collection::vec(0.0..1e7f64, 1..6),
            nu in 0.0..0.5f64,
        ) {
            let model = DriftModel::new(nu, Seconds(1.0), 0.0).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            let mut inc =
                Memristor::with_conductance(DeviceLimits::PAPER, Siemens(8e-4)).unwrap();
            let mut total = 0.0;
            for &s in &steps {
                inc.age(Seconds(s), &model, &mut rng).unwrap();
                total += s;
            }
            let mut abs =
                Memristor::with_conductance(DeviceLimits::PAPER, Siemens(8e-4)).unwrap();
            abs.age_to(Seconds(total), &model, &mut rng).unwrap();
            prop_assert_eq!(inc.conductance(), abs.conductance());
        }
    }
}
