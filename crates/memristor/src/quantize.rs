//! Digital-level ↔ conductance mapping.
//!
//! The paper stores 5-bit (32-level) template pixels as memristor
//! conductances spread linearly over the programmable window. [`LevelMap`]
//! owns that mapping in both directions.

use crate::device::DeviceLimits;
use crate::MemristorError;
use spinamm_circuit::units::Siemens;

/// Linear mapping between `2^bits` digital levels and conductances in a
/// device window.
///
/// Level `0` maps to the lowest conductance (`g_min`) and the top level to
/// `g_max`, matching the convention that a dark pixel contributes the least
/// column current.
///
/// # Example
///
/// ```
/// use spinamm_memristor::{DeviceLimits, LevelMap};
///
/// # fn main() -> Result<(), spinamm_memristor::MemristorError> {
/// let map = LevelMap::new(DeviceLimits::PAPER, 5)?;
/// assert_eq!(map.level_count(), 32);
/// let g = map.conductance(31)?;
/// assert_eq!(g, DeviceLimits::PAPER.g_max());
/// assert_eq!(map.nearest_level(g), 31);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelMap {
    limits: DeviceLimits,
    bits: u32,
}

impl LevelMap {
    /// Creates a map storing `bits`-bit values in the given window.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] unless `1 ≤ bits ≤ 16`.
    pub fn new(limits: DeviceLimits, bits: u32) -> Result<Self, MemristorError> {
        if !(1..=16).contains(&bits) {
            return Err(MemristorError::InvalidParameter {
                what: "level map requires 1..=16 bits",
            });
        }
        Ok(Self { limits, bits })
    }

    /// Bits per stored value.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of representable levels, `2^bits`.
    #[must_use]
    pub fn level_count(&self) -> u32 {
        1 << self.bits
    }

    /// The device window this map spans.
    #[must_use]
    pub fn limits(&self) -> DeviceLimits {
        self.limits
    }

    /// Conductance spacing between adjacent levels.
    #[must_use]
    pub fn step(&self) -> Siemens {
        let span = self.limits.g_max().0 - self.limits.g_min().0;
        Siemens(span / f64::from(self.level_count() - 1))
    }

    /// Conductance of a digital level.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::LevelOutOfRange`] if `level ≥ 2^bits`.
    pub fn conductance(&self, level: u32) -> Result<Siemens, MemristorError> {
        if level >= self.level_count() {
            return Err(MemristorError::LevelOutOfRange {
                level,
                count: self.level_count(),
            });
        }
        Ok(Siemens(
            self.limits.g_min().0 + f64::from(level) * self.step().0,
        ))
    }

    /// The digital level whose conductance is closest to `g` (clamped to the
    /// representable range — values beyond the window snap to the extreme
    /// levels).
    #[must_use]
    pub fn nearest_level(&self, g: Siemens) -> u32 {
        let step = self.step().0;
        let raw = (g.0 - self.limits.g_min().0) / step;
        let idx = raw.round().clamp(0.0, f64::from(self.level_count() - 1));
        idx as u32
    }

    /// Normalized value in `[0, 1]` of a level (`level / (2^bits − 1)`).
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::LevelOutOfRange`] if `level ≥ 2^bits`.
    pub fn normalized(&self, level: u32) -> Result<f64, MemristorError> {
        if level >= self.level_count() {
            return Err(MemristorError::LevelOutOfRange {
                level,
                count: self.level_count(),
            });
        }
        Ok(f64::from(level) / f64::from(self.level_count() - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_bit_paper_map() {
        let map = LevelMap::new(DeviceLimits::PAPER, 5).unwrap();
        assert_eq!(map.bits(), 5);
        assert_eq!(map.level_count(), 32);
        assert_eq!(map.conductance(0).unwrap(), DeviceLimits::PAPER.g_min());
        assert_eq!(map.conductance(31).unwrap(), DeviceLimits::PAPER.g_max());
    }

    #[test]
    fn levels_are_evenly_spaced() {
        let map = LevelMap::new(DeviceLimits::PAPER, 3).unwrap();
        let step = map.step().0;
        for k in 0..7 {
            let a = map.conductance(k).unwrap().0;
            let b = map.conductance(k + 1).unwrap().0;
            assert!((b - a - step).abs() < 1e-15);
        }
    }

    #[test]
    fn round_trip_every_level() {
        for bits in 1..=8 {
            let map = LevelMap::new(DeviceLimits::PAPER, bits).unwrap();
            for level in 0..map.level_count() {
                let g = map.conductance(level).unwrap();
                assert_eq!(map.nearest_level(g), level, "bits={bits} level={level}");
            }
        }
    }

    #[test]
    fn nearest_level_clamps() {
        let map = LevelMap::new(DeviceLimits::PAPER, 5).unwrap();
        assert_eq!(map.nearest_level(Siemens(0.0)), 0);
        assert_eq!(map.nearest_level(Siemens(1.0)), 31);
    }

    #[test]
    fn nearest_level_rounds_half_window() {
        let map = LevelMap::new(DeviceLimits::PAPER, 5).unwrap();
        let g0 = map.conductance(10).unwrap().0;
        let step = map.step().0;
        assert_eq!(map.nearest_level(Siemens(g0 + 0.4 * step)), 10);
        assert_eq!(map.nearest_level(Siemens(g0 + 0.6 * step)), 11);
    }

    #[test]
    fn level_bounds_checked() {
        let map = LevelMap::new(DeviceLimits::PAPER, 5).unwrap();
        assert!(matches!(
            map.conductance(32),
            Err(MemristorError::LevelOutOfRange {
                level: 32,
                count: 32
            })
        ));
        assert!(map.normalized(32).is_err());
    }

    #[test]
    fn normalized_endpoints() {
        let map = LevelMap::new(DeviceLimits::PAPER, 5).unwrap();
        assert_eq!(map.normalized(0).unwrap(), 0.0);
        assert_eq!(map.normalized(31).unwrap(), 1.0);
        assert!((map.normalized(16).unwrap() - 16.0 / 31.0).abs() < 1e-15);
    }

    #[test]
    fn bits_validation() {
        assert!(LevelMap::new(DeviceLimits::PAPER, 0).is_err());
        assert!(LevelMap::new(DeviceLimits::PAPER, 17).is_err());
        assert!(LevelMap::new(DeviceLimits::PAPER, 16).is_ok());
    }
}
