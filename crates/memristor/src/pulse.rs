//! Voltage-pulse write dynamics: the threshold behaviour that makes V/2
//! crossbar programming possible.
//!
//! Filamentary Ag-Si cells are strongly voltage-non-linear writers: below a
//! threshold voltage nothing moves (which is also why small read biases such
//! as the paper's ΔV ≈ 30 mV do not disturb the stored state), and above it
//! the conductance slews at a roughly linear rate in the overdrive. This
//! module gives [`Memristor`] that behaviour so
//! [`spinamm_crossbar`](https://docs.rs)'s programming study can quantify
//! the half-select disturb of V/2 biasing.

use crate::device::Memristor;
use crate::MemristorError;
use spinamm_circuit::units::{Seconds, Siemens, Volts};

/// Threshold-linear voltage write model.
///
/// A pulse of `v > set_threshold` SETs (raises conductance); a pulse of
/// `v < −reset_threshold` RESETs (lowers conductance); anything in between
/// leaves the state untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseWriteModel {
    /// SET threshold voltage (positive polarity magnitude).
    pub set_threshold: Volts,
    /// RESET threshold voltage (negative polarity magnitude).
    pub reset_threshold: Volts,
    /// Conductance slew rate per volt of overdrive, S/(V·s).
    pub rate: f64,
}

impl PulseWriteModel {
    /// Representative Ag-Si programming: ±1.3 V thresholds and a slew rate
    /// that moves the full 1 kΩ–32 kΩ window in ~1 µs of 1 V overdrive.
    pub const TYPICAL: PulseWriteModel = PulseWriteModel {
        set_threshold: Volts(1.3),
        reset_threshold: Volts(1.3),
        rate: 1e3 * (1e-3 - 3.125e-5), // full window per ms·V
    };

    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] unless both thresholds
    /// and the rate are finite and positive.
    pub fn new(
        set_threshold: Volts,
        reset_threshold: Volts,
        rate: f64,
    ) -> Result<Self, MemristorError> {
        for v in [set_threshold.0, reset_threshold.0, rate] {
            if !(v.is_finite() && v > 0.0) {
                return Err(MemristorError::InvalidParameter {
                    what: "pulse model parameters must be finite and positive",
                });
            }
        }
        Ok(Self {
            set_threshold,
            reset_threshold,
            rate,
        })
    }

    /// The conductance change produced by one pulse of amplitude `v` and
    /// width `dt` (signed; zero inside the threshold window).
    #[must_use]
    pub fn delta(&self, v: Volts, dt: Seconds) -> Siemens {
        if v.0 >= self.set_threshold.0 {
            Siemens(self.rate * (v.0 - self.set_threshold.0) * dt.0)
        } else if v.0 <= -self.reset_threshold.0 {
            Siemens(-self.rate * (-v.0 - self.reset_threshold.0) * dt.0)
        } else {
            Siemens(0.0)
        }
    }

    /// Number of pulses of amplitude `v` (toward the correct polarity) and
    /// width `dt` needed to traverse a conductance distance `span`.
    ///
    /// Returns `u32::MAX` if the pulse is sub-threshold.
    #[must_use]
    pub fn pulses_for(&self, span: Siemens, v: Volts, dt: Seconds) -> u32 {
        let step = self.delta(v, dt).0.abs();
        if step <= 0.0 {
            return u32::MAX;
        }
        (span.0.abs() / step).ceil().max(1.0) as u32
    }
}

impl Default for PulseWriteModel {
    fn default() -> Self {
        Self::TYPICAL
    }
}

impl Memristor {
    /// Applies one voltage pulse under a [`PulseWriteModel`], clamping the
    /// state to the programmable window. Returns the realized conductance
    /// change.
    pub fn apply_voltage_pulse(
        &mut self,
        v: Volts,
        dt: Seconds,
        model: &PulseWriteModel,
    ) -> Siemens {
        let before = self.conductance();
        let delta = model.delta(v, dt);
        if delta.0 != 0.0 {
            self.force_conductance(Siemens(before.0 + delta.0));
        }
        Siemens(self.conductance().0 - before.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceLimits;

    const DT: Seconds = Seconds(100e-9);

    #[test]
    fn sub_threshold_pulses_do_nothing() {
        let m = PulseWriteModel::TYPICAL;
        assert_eq!(m.delta(Volts(1.0), DT), Siemens(0.0));
        assert_eq!(m.delta(Volts(-1.0), DT), Siemens(0.0));
        assert_eq!(
            m.delta(Volts(0.03), DT),
            Siemens(0.0),
            "read bias is harmless"
        );
        let mut cell = Memristor::with_conductance(DeviceLimits::PAPER, Siemens(5e-4)).unwrap();
        assert_eq!(cell.apply_voltage_pulse(Volts(1.2), DT, &m), Siemens(0.0));
        assert_eq!(cell.conductance(), Siemens(5e-4));
    }

    #[test]
    fn set_and_reset_move_opposite_ways() {
        let m = PulseWriteModel::TYPICAL;
        let mut cell = Memristor::with_conductance(DeviceLimits::PAPER, Siemens(5e-4)).unwrap();
        let up = cell.apply_voltage_pulse(Volts(2.3), DT, &m);
        assert!(up.0 > 0.0);
        let down = cell.apply_voltage_pulse(Volts(-2.3), DT, &m);
        assert!(down.0 < 0.0);
        assert!(
            (up.0 + down.0).abs() < 1e-12,
            "symmetric thresholds and rate"
        );
    }

    #[test]
    fn delta_linear_in_overdrive_and_width() {
        let m = PulseWriteModel::TYPICAL;
        let d1 = m.delta(Volts(1.8), DT).0; // 0.5 V overdrive
        let d2 = m.delta(Volts(2.3), DT).0; // 1.0 V overdrive
        assert!((d2 / d1 - 2.0).abs() < 1e-12);
        let d_wide = m.delta(Volts(1.8), Seconds(2.0 * DT.0)).0;
        assert!((d_wide / d1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pulses_for_traversal() {
        let m = PulseWriteModel::TYPICAL;
        let span = Siemens(DeviceLimits::PAPER.g_max().0 - DeviceLimits::PAPER.g_min().0);
        let n = m.pulses_for(span, Volts(2.3), Seconds(1e-6));
        // Full window at 1 V overdrive in ~1 ms → 1000 µs-pulses.
        assert!((900..=1100).contains(&n), "{n} pulses");
        assert_eq!(m.pulses_for(span, Volts(1.0), DT), u32::MAX);
    }

    #[test]
    fn pulse_clamps_to_window() {
        let m = PulseWriteModel::TYPICAL;
        let mut cell =
            Memristor::with_conductance(DeviceLimits::PAPER, DeviceLimits::PAPER.g_max()).unwrap();
        let realized = cell.apply_voltage_pulse(Volts(3.0), Seconds(1e-3), &m);
        assert_eq!(realized, Siemens(0.0), "already at the rail");
        assert_eq!(cell.conductance(), DeviceLimits::PAPER.g_max());
    }

    #[test]
    fn validation() {
        assert!(PulseWriteModel::new(Volts(0.0), Volts(1.0), 1.0).is_err());
        assert!(PulseWriteModel::new(Volts(1.0), Volts(-1.0), 1.0).is_err());
        assert!(PulseWriteModel::new(Volts(1.0), Volts(1.0), 0.0).is_err());
        assert_eq!(PulseWriteModel::default(), PulseWriteModel::TYPICAL);
    }
}
