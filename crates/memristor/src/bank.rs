//! Parallel memristor banks: storing one analog value in several devices.
//!
//! "For a given write-precision, larger number of bits can be obtained by
//! using parallel combination of multiple memristors to store a single analog
//! value" (paper §2, citing Likharev's CMOL CrossNets \[4\]). A bank of `n`
//! devices programmed to `target / n` each has a total conductance whose
//! *relative* error shrinks like `1/√n`, because the independent residual
//! write errors average out.

use crate::device::{DeviceLimits, Memristor, ReadNoise};
use crate::write::{WriteReport, WriteScheme};
use crate::MemristorError;
use rand::Rng;
use spinamm_circuit::units::{Joules, Siemens};

/// A parallel combination of identically targeted memristors acting as one
/// higher-precision analog cell.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use spinamm_memristor::{DeviceLimits, MemristorBank, WriteScheme};
/// use spinamm_circuit::units::Siemens;
///
/// # fn main() -> Result<(), spinamm_memristor::MemristorError> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let mut bank = MemristorBank::new(DeviceLimits::PAPER, 4)?;
/// // Total target mid-window: each device gets a quarter of it.
/// bank.program(Siemens(8e-4), &WriteScheme::paper(), &mut rng)?;
/// let err = (bank.conductance().0 - 8e-4).abs() / 8e-4;
/// assert!(err <= 0.03); // at worst single-device tolerance
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemristorBank {
    cells: Vec<Memristor>,
}

impl MemristorBank {
    /// Creates a bank of `n` off-state devices.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] if `n == 0`.
    pub fn new(limits: DeviceLimits, n: usize) -> Result<Self, MemristorError> {
        if n == 0 {
            return Err(MemristorError::InvalidParameter {
                what: "bank must contain at least one device",
            });
        }
        Ok(Self {
            cells: vec![Memristor::new(limits); n],
        })
    }

    /// Number of parallel devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the bank has no devices (never true for constructed banks,
    /// provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The individual devices.
    #[must_use]
    pub fn cells(&self) -> &[Memristor] {
        &self.cells
    }

    /// Total (parallel) conductance — the sum over devices.
    #[must_use]
    pub fn conductance(&self) -> Siemens {
        Siemens(self.cells.iter().map(|c| c.conductance().0).sum())
    }

    /// One noisy read of the total conductance (each device independently
    /// noisy).
    pub fn read<R: Rng + ?Sized>(&self, noise: ReadNoise, rng: &mut R) -> Siemens {
        Siemens(self.cells.iter().map(|c| c.read(noise, rng).0).sum())
    }

    /// The total-conductance window of the bank (`n ×` the device window).
    #[must_use]
    pub fn total_window(&self) -> (Siemens, Siemens) {
        let limits = self.cells[0].limits();
        let n = self.cells.len() as f64;
        (Siemens(limits.g_min().0 * n), Siemens(limits.g_max().0 * n))
    }

    /// Programs the bank so its total conductance approximates `target`:
    /// each device is programmed to `target / n`.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::ConductanceOutOfRange`] if `target / n` is
    /// outside the single-device window.
    pub fn program<R: Rng + ?Sized>(
        &mut self,
        target: Siemens,
        scheme: &WriteScheme,
        rng: &mut R,
    ) -> Result<WriteReport, MemristorError> {
        let per_device = Siemens(target.0 / self.cells.len() as f64);
        let mut pulses = 0;
        let mut energy = Joules::ZERO;
        for cell in &mut self.cells {
            let report = cell.program(per_device, scheme, rng)?;
            pulses += report.pulses;
            energy += report.energy;
        }
        let relative_error = (self.conductance().0 - target.0) / target.0;
        Ok(WriteReport {
            pulses,
            energy,
            relative_error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bank_requires_devices() {
        assert!(MemristorBank::new(DeviceLimits::PAPER, 0).is_err());
        let bank = MemristorBank::new(DeviceLimits::PAPER, 3).unwrap();
        assert_eq!(bank.len(), 3);
        assert!(!bank.is_empty());
        assert_eq!(bank.cells().len(), 3);
    }

    #[test]
    fn fresh_bank_total_is_n_times_off() {
        let bank = MemristorBank::new(DeviceLimits::PAPER, 4).unwrap();
        let expected = DeviceLimits::PAPER.g_min().0 * 4.0;
        assert!((bank.conductance().0 - expected).abs() < 1e-15);
    }

    #[test]
    fn total_window_scales_with_n() {
        let bank = MemristorBank::new(DeviceLimits::PAPER, 8).unwrap();
        let (lo, hi) = bank.total_window();
        assert!((lo.0 - 8.0 * DeviceLimits::PAPER.g_min().0).abs() < 1e-15);
        assert!((hi.0 - 8.0 * DeviceLimits::PAPER.g_max().0).abs() < 1e-15);
    }

    #[test]
    fn program_distributes_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut bank = MemristorBank::new(DeviceLimits::PAPER, 4).unwrap();
        let target = Siemens(1.2e-3);
        bank.program(target, &WriteScheme::paper(), &mut rng)
            .unwrap();
        for cell in bank.cells() {
            let per = target.0 / 4.0;
            assert!(((cell.conductance().0 - per) / per).abs() <= 0.03);
        }
    }

    #[test]
    fn program_rejects_unreachable_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut bank = MemristorBank::new(DeviceLimits::PAPER, 2).unwrap();
        // 2 devices can reach at most 2 × g_max = 2e-3 S.
        assert!(bank
            .program(Siemens(5e-3), &WriteScheme::paper(), &mut rng)
            .is_err());
    }

    #[test]
    fn larger_banks_average_down_error() {
        // RMS relative error of the bank total should drop roughly like
        // 1/√n. Compare n = 1 vs n = 16 over many trials.
        let scheme = WriteScheme::paper();
        let rms = |n: usize, seed: u64| -> f64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut acc = 0.0;
            let trials = 300;
            for _ in 0..trials {
                let mut bank = MemristorBank::new(DeviceLimits::PAPER, n).unwrap();
                let target = Siemens(5e-4 * n as f64);
                let rep = bank.program(target, &scheme, &mut rng).unwrap();
                acc += rep.relative_error * rep.relative_error;
            }
            (acc / f64::from(trials)).sqrt()
        };
        let single = rms(1, 31);
        let wide = rms(16, 32);
        assert!(
            wide < single / 2.0,
            "16-device bank rms {wide} should be well below single-device {single}"
        );
    }

    #[test]
    fn read_noise_applies_per_device() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let bank = MemristorBank::new(DeviceLimits::PAPER, 4).unwrap();
        let clean = bank.conductance();
        let noisy = bank.read(ReadNoise::new(0.05).unwrap(), &mut rng);
        assert_ne!(clean, noisy);
        // But the exact read with no noise matches.
        assert_eq!(bank.read(ReadNoise::NONE, &mut rng), clean);
    }

    #[test]
    fn program_reports_accumulated_energy() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut bank = MemristorBank::new(DeviceLimits::PAPER, 4).unwrap();
        let scheme = WriteScheme::paper();
        let rep = bank.program(Siemens(1.6e-3), &scheme, &mut rng).unwrap();
        assert!(rep.pulses >= 4, "each device needs at least one pulse");
        assert!((rep.energy.0 - f64::from(rep.pulses) * scheme.pulse_energy.0).abs() < 1e-24);
    }
}
