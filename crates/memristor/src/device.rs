//! The memristor device: bounded conductance state with read noise.

use crate::MemristorError;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use spinamm_circuit::units::{Ohms, Seconds, Siemens};

/// The programmable conductance window of a memristor device family.
///
/// Expressed as the resistance range `[r_on, r_off]` with `r_on < r_off`;
/// conductances then span `[1/r_off, 1/r_on]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceLimits {
    r_on: Ohms,
    r_off: Ohms,
}

impl DeviceLimits {
    /// The paper's Table-2 device: 1 kΩ (on) to 32 kΩ (off).
    pub const PAPER: DeviceLimits = DeviceLimits {
        r_on: Ohms(1_000.0),
        r_off: Ohms(32_000.0),
    };

    /// Creates limits from the on (lowest) and off (highest) resistances.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] unless
    /// `0 < r_on < r_off` and both are finite.
    pub fn new(r_on: Ohms, r_off: Ohms) -> Result<Self, MemristorError> {
        if !(r_on.0.is_finite() && r_off.0.is_finite()) {
            return Err(MemristorError::InvalidParameter {
                what: "resistance bounds must be finite",
            });
        }
        if r_on.0 <= 0.0 || r_off.0 <= r_on.0 {
            return Err(MemristorError::InvalidParameter {
                what: "require 0 < r_on < r_off",
            });
        }
        Ok(Self { r_on, r_off })
    }

    /// Creates limits scaled from the paper's window: both bounds multiplied
    /// by `factor`. Used by the Fig. 9a conductance-range sweep, where the
    /// paper moves the window from 200 Ω–6.4 kΩ up to high-resistance ranges.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] if `factor` is not a
    /// finite positive number.
    pub fn scaled_from_paper(factor: f64) -> Result<Self, MemristorError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(MemristorError::InvalidParameter {
                what: "scale factor must be finite and positive",
            });
        }
        Self::new(
            Ohms(Self::PAPER.r_on.0 * factor),
            Ohms(Self::PAPER.r_off.0 * factor),
        )
    }

    /// Lowest programmable resistance (the "on" state).
    #[must_use]
    pub fn r_on(&self) -> Ohms {
        self.r_on
    }

    /// Highest programmable resistance (the "off" state).
    #[must_use]
    pub fn r_off(&self) -> Ohms {
        self.r_off
    }

    /// Lowest programmable conductance (`1 / r_off`).
    #[must_use]
    pub fn g_min(&self) -> Siemens {
        self.r_off.to_siemens()
    }

    /// Highest programmable conductance (`1 / r_on`).
    #[must_use]
    pub fn g_max(&self) -> Siemens {
        self.r_on.to_siemens()
    }

    /// On/off conductance ratio, a figure of merit for dynamic range.
    #[must_use]
    pub fn dynamic_range(&self) -> f64 {
        self.r_off.0 / self.r_on.0
    }

    /// `true` if `g` lies inside the programmable window (inclusive, with a
    /// 1 ppm tolerance for floating-point round-off).
    #[must_use]
    pub fn contains(&self, g: Siemens) -> bool {
        let lo = self.g_min().0 * (1.0 - 1e-6);
        let hi = self.g_max().0 * (1.0 + 1e-6);
        g.0 >= lo && g.0 <= hi
    }

    /// Clamps `g` into the programmable window.
    #[must_use]
    pub fn clamp(&self, g: Siemens) -> Siemens {
        Siemens(g.0.clamp(self.g_min().0, self.g_max().0))
    }

    fn check(&self, g: Siemens) -> Result<(), MemristorError> {
        if self.contains(g) {
            Ok(())
        } else {
            Err(MemristorError::ConductanceOutOfRange {
                requested: g.0,
                min: self.g_min().0,
                max: self.g_max().0,
            })
        }
    }
}

/// Multiplicative Gaussian read noise: an observation of conductance `g`
/// returns `g · (1 + ε)` with `ε ~ N(0, sigma²)`.
///
/// The paper's system simulations "incorporate variations in input source as
/// well as memristor values ... to obtain realistic values for the
/// current-outputs"; this type is the memristor half of that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadNoise {
    /// Relative standard deviation of one observation.
    pub sigma: f64,
}

impl ReadNoise {
    /// Noise-free observation.
    pub const NONE: ReadNoise = ReadNoise { sigma: 0.0 };

    /// Creates a read-noise model.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] if `sigma` is negative or
    /// not finite.
    pub fn new(sigma: f64) -> Result<Self, MemristorError> {
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(MemristorError::InvalidParameter {
                what: "read-noise sigma must be finite and non-negative",
            });
        }
        Ok(Self { sigma })
    }

    /// Applies the noise to a conductance value.
    pub fn perturb<R: Rng + ?Sized>(&self, g: Siemens, rng: &mut R) -> Siemens {
        if self.sigma == 0.0 {
            return g;
        }
        let normal = Normal::new(0.0, self.sigma).expect("sigma validated at construction");
        Siemens(g.0 * (1.0 + normal.sample(rng)))
    }
}

/// One Ag-Si memristor cell: a conductance state bounded by
/// [`DeviceLimits`].
///
/// Freshly constructed cells sit in the fully "off" (lowest conductance)
/// state, which is how a crossbar powers up before programming. A cell can
/// additionally be *pinned* — a hard stuck-at defect: writes keep updating
/// the programmed state (the tuner cannot tell a stuck cell apart except by
/// its verify reads), but every read observes the pinned value.
///
/// Every write pulse re-forms the filament, so the cell also tracks its
/// *programmed reference*: the conductance the last write left behind and
/// the age (seconds since that write). Retention decays from the reference,
/// never from an already-drifted observation — that is what makes aging
/// time-composable (`age(t₁); age(t₂) ≡ age(t₁+t₂)`). A lifetime wear
/// counter accumulates every pulse for endurance accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Memristor {
    limits: DeviceLimits,
    conductance: Siemens,
    reference: Siemens,
    age: Seconds,
    writes: u64,
    pinned: Option<Siemens>,
}

impl Memristor {
    /// Creates a cell in the off state.
    #[must_use]
    pub fn new(limits: DeviceLimits) -> Self {
        Self {
            limits,
            conductance: limits.g_min(),
            reference: limits.g_min(),
            age: Seconds(0.0),
            writes: 0,
            pinned: None,
        }
    }

    /// Creates a cell already holding conductance `g`.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::ConductanceOutOfRange`] if `g` is outside
    /// the programmable window.
    pub fn with_conductance(limits: DeviceLimits, g: Siemens) -> Result<Self, MemristorError> {
        limits.check(g)?;
        Ok(Self {
            limits,
            conductance: g,
            reference: g,
            age: Seconds(0.0),
            writes: 0,
            pinned: None,
        })
    }

    /// The device's programmable window.
    #[must_use]
    pub fn limits(&self) -> DeviceLimits {
        self.limits
    }

    /// The conductance every read observes: the pinned stuck-at value when
    /// the cell is defective, otherwise the programmed state.
    #[must_use]
    pub fn conductance(&self) -> Siemens {
        self.pinned.unwrap_or(self.conductance)
    }

    /// The programmed (intended) state, ignoring any stuck-at pin — what
    /// the write circuitry believes it stored.
    #[must_use]
    pub fn programmed(&self) -> Siemens {
        self.conductance
    }

    /// Pins the cell to a stuck-at conductance (clamped into the window).
    /// Subsequent reads observe `g` regardless of programming.
    pub fn pin(&mut self, g: Siemens) {
        self.pinned = Some(self.limits.clamp(g));
    }

    /// Removes a stuck-at pin; reads observe the programmed state again.
    pub fn unpin(&mut self) {
        self.pinned = None;
    }

    /// `true` when the cell is pinned to a stuck-at value.
    #[must_use]
    pub fn is_pinned(&self) -> bool {
        self.pinned.is_some()
    }

    /// The observed resistance state (respects a stuck-at pin).
    #[must_use]
    pub fn resistance(&self) -> Ohms {
        self.conductance().to_ohms()
    }

    /// One noisy read of the conductance (respects a stuck-at pin).
    pub fn read<R: Rng + ?Sized>(&self, noise: ReadNoise, rng: &mut R) -> Siemens {
        noise.perturb(self.conductance(), rng)
    }

    /// Overwrites the state exactly (an idealized write, used by tests and
    /// by callers that model write error themselves). Like any write it
    /// re-forms the filament: the programmed reference moves to `g`, the
    /// age since programming resets, and the wear counter ticks once.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::ConductanceOutOfRange`] if `g` is outside
    /// the programmable window.
    pub fn set_conductance(&mut self, g: Siemens) -> Result<(), MemristorError> {
        self.limits.check(g)?;
        self.conductance = g;
        self.reference = g;
        self.age = Seconds(0.0);
        self.writes = self.writes.saturating_add(1);
        Ok(())
    }

    /// One physical write pulse: moves the state (clamped into the window),
    /// re-anchors the programmed reference there, and counts the pulse
    /// toward the endurance budget.
    pub(crate) fn force_conductance(&mut self, g: Siemens) {
        self.conductance = self.limits.clamp(g);
        self.reference = self.conductance;
        self.age = Seconds(0.0);
        self.writes = self.writes.saturating_add(1);
    }

    /// The programmed reference `g₀`: the conductance the last write pulse
    /// left behind, from which retention decays.
    #[must_use]
    pub fn programmed_reference(&self) -> Siemens {
        self.reference
    }

    /// Seconds of drift applied since the last write pulse.
    #[must_use]
    pub fn aged(&self) -> Seconds {
        self.age
    }

    /// Lifetime write-pulse count (wear) for endurance accounting.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Moves the programmed state to `reference · fraction` (floored at the
    /// off state) and records `elapsed` as the cell's age since its last
    /// write. This is the primitive every aging path lands on: the decay is
    /// always applied to the programmed reference, never to an
    /// already-drifted observation, so repeated calls with increasing
    /// `elapsed` compose exactly. Not a write — the reference and wear
    /// counter are untouched.
    ///
    /// # Errors
    ///
    /// Returns [`MemristorError::InvalidParameter`] when `elapsed` is not
    /// finite and non-negative or `fraction` lies outside `[0, 1]`; the
    /// cell is untouched in that case.
    pub fn apply_retention(
        &mut self,
        elapsed: Seconds,
        fraction: f64,
    ) -> Result<(), MemristorError> {
        if !(elapsed.0.is_finite() && elapsed.0 >= 0.0) {
            return Err(MemristorError::InvalidParameter {
                what: "cell age must be finite and non-negative",
            });
        }
        if !(fraction.is_finite() && (0.0..=1.0).contains(&fraction)) {
            return Err(MemristorError::InvalidParameter {
                what: "retention fraction must lie in [0, 1]",
            });
        }
        let g = self.reference.0 * fraction;
        self.conductance = Siemens(g.max(self.limits.g_min().0));
        self.age = elapsed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_limits() {
        let l = DeviceLimits::PAPER;
        assert_eq!(l.r_on(), Ohms(1_000.0));
        assert_eq!(l.r_off(), Ohms(32_000.0));
        assert!((l.g_max().0 - 1e-3).abs() < 1e-12);
        assert!((l.g_min().0 - 3.125e-5).abs() < 1e-12);
        assert!((l.dynamic_range() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn limits_validation() {
        assert!(DeviceLimits::new(Ohms(100.0), Ohms(200.0)).is_ok());
        assert!(DeviceLimits::new(Ohms(200.0), Ohms(100.0)).is_err());
        assert!(DeviceLimits::new(Ohms(0.0), Ohms(100.0)).is_err());
        assert!(DeviceLimits::new(Ohms(f64::NAN), Ohms(100.0)).is_err());
        assert!(DeviceLimits::new(Ohms(100.0), Ohms(100.0)).is_err());
    }

    #[test]
    fn scaled_from_paper_window() {
        // Fig. 9a's low end: 200 Ω – 6.4 kΩ is the paper window / 5.
        let l = DeviceLimits::scaled_from_paper(0.2).unwrap();
        assert!((l.r_on().0 - 200.0).abs() < 1e-9);
        assert!((l.r_off().0 - 6_400.0).abs() < 1e-9);
        assert!(DeviceLimits::scaled_from_paper(0.0).is_err());
        assert!(DeviceLimits::scaled_from_paper(-1.0).is_err());
        assert!(DeviceLimits::scaled_from_paper(f64::INFINITY).is_err());
    }

    #[test]
    fn contains_and_clamp() {
        let l = DeviceLimits::PAPER;
        assert!(l.contains(l.g_min()));
        assert!(l.contains(l.g_max()));
        assert!(l.contains(Siemens(5e-4)));
        assert!(!l.contains(Siemens(2e-3)));
        assert!(!l.contains(Siemens(1e-5)));
        assert_eq!(l.clamp(Siemens(2e-3)), l.g_max());
        assert_eq!(l.clamp(Siemens(1e-6)), l.g_min());
        assert_eq!(l.clamp(Siemens(5e-4)), Siemens(5e-4));
    }

    #[test]
    fn new_cell_is_off() {
        let cell = Memristor::new(DeviceLimits::PAPER);
        assert_eq!(cell.conductance(), DeviceLimits::PAPER.g_min());
        assert_eq!(cell.resistance(), Ohms(32_000.0));
    }

    #[test]
    fn set_conductance_bounds() {
        let mut cell = Memristor::new(DeviceLimits::PAPER);
        assert!(cell.set_conductance(Siemens(5e-4)).is_ok());
        assert_eq!(cell.conductance(), Siemens(5e-4));
        assert!(matches!(
            cell.set_conductance(Siemens(0.1)),
            Err(MemristorError::ConductanceOutOfRange { .. })
        ));
        // Failed writes leave the state untouched.
        assert_eq!(cell.conductance(), Siemens(5e-4));
    }

    #[test]
    fn with_conductance_validates() {
        assert!(Memristor::with_conductance(DeviceLimits::PAPER, Siemens(5e-4)).is_ok());
        assert!(Memristor::with_conductance(DeviceLimits::PAPER, Siemens(1.0)).is_err());
    }

    #[test]
    fn pinned_cell_reads_stuck_value_but_tracks_programmed_state() {
        let mut cell = Memristor::new(DeviceLimits::PAPER);
        assert!(!cell.is_pinned());
        cell.pin(DeviceLimits::PAPER.g_max());
        assert!(cell.is_pinned());
        assert_eq!(cell.conductance(), DeviceLimits::PAPER.g_max());
        // Writes still update the programmed (intended) state underneath.
        cell.set_conductance(Siemens(5e-4)).unwrap();
        assert_eq!(cell.programmed(), Siemens(5e-4));
        assert_eq!(cell.conductance(), DeviceLimits::PAPER.g_max());
        assert_eq!(cell.resistance(), Ohms(1_000.0));
        cell.unpin();
        assert!(!cell.is_pinned());
        assert_eq!(cell.conductance(), Siemens(5e-4));
    }

    #[test]
    fn pin_clamps_into_window() {
        let mut cell = Memristor::new(DeviceLimits::PAPER);
        cell.pin(Siemens(1.0));
        assert_eq!(cell.conductance(), DeviceLimits::PAPER.g_max());
        cell.pin(Siemens(0.0));
        assert_eq!(cell.conductance(), DeviceLimits::PAPER.g_min());
    }

    #[test]
    fn read_noise_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let noise = ReadNoise::new(0.03).unwrap();
        let g = Siemens(1e-4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| noise.perturb(g, &mut rng).0).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let rel_sigma = var.sqrt() / g.0;
        assert!((mean / g.0 - 1.0).abs() < 2e-3, "mean ratio {}", mean / g.0);
        assert!((rel_sigma - 0.03).abs() < 3e-3, "sigma {rel_sigma}");
    }

    #[test]
    fn zero_noise_is_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cell = Memristor::new(DeviceLimits::PAPER);
        assert_eq!(cell.read(ReadNoise::NONE, &mut rng), cell.conductance());
    }

    #[test]
    fn read_noise_validation() {
        assert!(ReadNoise::new(-0.1).is_err());
        assert!(ReadNoise::new(f64::NAN).is_err());
        assert!(ReadNoise::new(0.0).is_ok());
    }

    #[test]
    fn writes_anchor_reference_and_count_wear() {
        let mut cell = Memristor::new(DeviceLimits::PAPER);
        assert_eq!(cell.writes(), 0);
        assert_eq!(cell.programmed_reference(), DeviceLimits::PAPER.g_min());
        cell.set_conductance(Siemens(5e-4)).unwrap();
        assert_eq!(cell.writes(), 1);
        assert_eq!(cell.programmed_reference(), Siemens(5e-4));
        assert_eq!(cell.aged(), Seconds(0.0));
        cell.force_conductance(Siemens(6e-4));
        assert_eq!(cell.writes(), 2);
        assert_eq!(cell.programmed_reference(), Siemens(6e-4));
        // Rejected writes leave the reference and wear untouched.
        assert!(cell.set_conductance(Siemens(1.0)).is_err());
        assert_eq!(cell.writes(), 2);
        assert_eq!(cell.programmed_reference(), Siemens(6e-4));
    }

    #[test]
    fn apply_retention_decays_from_reference_not_state() {
        let mut cell = Memristor::with_conductance(DeviceLimits::PAPER, Siemens(8e-4)).unwrap();
        cell.apply_retention(Seconds(10.0), 0.9).unwrap();
        assert!((cell.conductance().0 - 7.2e-4).abs() < 1e-12);
        assert_eq!(cell.aged(), Seconds(10.0));
        // A later, shallower fraction is still taken from g₀ — retention
        // stamps are absolute, not cumulative.
        cell.apply_retention(Seconds(20.0), 0.95).unwrap();
        assert!((cell.conductance().0 - 7.6e-4).abs() < 1e-12);
        assert_eq!(cell.writes(), 0, "retention is not a write");
        // Floors at the off state and validates its inputs.
        cell.apply_retention(Seconds(30.0), 0.0).unwrap();
        assert_eq!(cell.conductance(), DeviceLimits::PAPER.g_min());
        assert!(cell.apply_retention(Seconds(-1.0), 0.5).is_err());
        assert!(cell.apply_retention(Seconds(1.0), 1.5).is_err());
        assert!(cell.apply_retention(Seconds(1.0), f64::NAN).is_err());
        assert!(cell.apply_retention(Seconds(f64::NAN), 0.5).is_err());
    }

    #[test]
    fn read_noise_is_deterministic_per_seed() {
        let noise = ReadNoise::new(0.05).unwrap();
        let g = Siemens(1e-4);
        let a = noise.perturb(g, &mut ChaCha8Rng::seed_from_u64(9));
        let b = noise.perturb(g, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
