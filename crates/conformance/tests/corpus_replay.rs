//! Replays the committed divergence corpus (`conformance/corpus/` at the
//! repository root) as a regression suite.
//!
//! Perturbed repros must **still diverge** (detector sensitivity: if the
//! oracle stops catching a committed divergence, that is a regression in
//! the harness itself). Clean baselines must replay with zero violations.

use spinamm_conformance::{repro_from_json, run_case, ToleranceLedger};
use spinamm_telemetry::NoopRecorder;
use std::fs;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../conformance/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("committed corpus directory must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_present_and_parses() {
    let files = corpus_files();
    assert!(
        !files.is_empty(),
        "conformance/corpus must contain at least one repro"
    );
    let mut perturbed = 0usize;
    for path in &files {
        let text = fs::read_to_string(path).expect("readable repro");
        let (spec, _) = repro_from_json(&text)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", path.display()));
        if spec.perturbation.is_some() {
            perturbed += 1;
        }
    }
    assert!(
        perturbed >= 1,
        "corpus must pin at least one intentionally perturbed repro"
    );
}

#[test]
fn tiled_baseline_replays_through_the_capacity_pool() {
    let path = corpus_dir().join("tiled-capacity-baseline.json");
    let text = fs::read_to_string(&path).expect("tiled baseline must be committed");
    let (spec, recorded) = repro_from_json(&text).expect("valid repro");
    assert!(recorded.is_empty(), "tiled baseline must be clean");
    assert!(
        spec.pattern_count >= 3,
        "tiled baseline must shard into at least two tiles"
    );
    let outcome = run_case(&spec, &ToleranceLedger::DEFAULT, &NoopRecorder).expect("replayable");
    assert!(
        outcome.divergences.is_empty(),
        "tiled baseline replayed with violations: {:?}",
        outcome.divergences
    );
    // The tiled section must actually have run: every unfaulted query
    // tallies a flat↔tiled winner comparison.
    assert_eq!(
        outcome.flat_tiled.total, spec.query_count as u64,
        "flat↔tiled agreement was not tallied for every query"
    );
}

#[test]
fn committed_repros_replay_as_recorded() {
    for path in corpus_files() {
        let text = fs::read_to_string(&path).expect("readable repro");
        let (spec, recorded) = repro_from_json(&text).expect("valid repro");
        let outcome = run_case(&spec, &ToleranceLedger::DEFAULT, &NoopRecorder)
            .unwrap_or_else(|e| panic!("{} failed to run: {e}", path.display()));
        if recorded.is_empty() {
            assert!(
                outcome.divergences.is_empty(),
                "{} is a clean baseline but replayed with violations: {:?}",
                path.display(),
                outcome.divergences
            );
        } else {
            assert!(
                !outcome.divergences.is_empty(),
                "{} no longer diverges — the oracle lost sensitivity to a \
                 committed repro",
                path.display()
            );
            // The same checks must fire, not merely *some* divergence.
            for want in &recorded {
                assert!(
                    outcome.divergences.iter().any(|d| d.check == want.check),
                    "{}: recorded check `{}` did not re-fire (got {:?})",
                    path.display(),
                    want.check,
                    outcome.divergences
                );
            }
        }
    }
}
