//! The tolerance ledger: the machine-readable contract describing how much
//! the recall fidelities and execution paths are allowed to disagree.
//!
//! Two families of promises exist (DESIGN.md §9):
//!
//! * **Bit-identity.** `recall_batch`, the [`spinamm_engine::RecallEngine`]
//!   at any worker count, requests served over the network tier, and every
//!   deployment driven through the engine must reproduce the sequential
//!   reference **exactly** — same winner, same codes, same energy floats.
//!   These paths share one RNG schedule by construction (PRs 2–4), so any
//!   difference at all is a bug. Their budget in this ledger is implicitly
//!   zero and not configurable.
//! * **Bounded divergence.** Different fidelities (ideal correlation vs
//!   driven crossbar vs parasitic solve) and different decompositions
//!   (flat vs partitioned vs hierarchical) compute physically different
//!   estimates of the same dot products. They are allowed to disagree
//!   within the numeric budgets below; outside them the divergence is a
//!   ledger violation.

use crate::ConformanceError;

/// Numeric divergence budgets for every non-bit-identical comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToleranceLedger {
    /// Max |DOM difference| in LSB codes between the ideal-correlation and
    /// driven-crossbar fidelities for the same query. The driven fidelity
    /// sees source-resistance sag that ideal evaluation ignores, so its
    /// codes sit systematically at or below the ideal ones.
    pub ideal_driven_dom_lsb: u32,
    /// Max |DOM difference| in LSB codes between the driven and parasitic
    /// fidelities. The cached parasitic solve adds line resistance on top
    /// of the driven model, a much smaller perturbation.
    pub driven_parasitic_dom_lsb: u32,
    /// A winner mismatch between two compared paths is excused only when
    /// *both* sides ranked the contest this closely (their top-two code
    /// margin is at or below this many LSBs): near-ties legitimately flip
    /// under re-quantization.
    pub tie_margin_lsb: u32,
    /// Max |DOM difference| for the metamorphic input-permutation check
    /// (ideal fidelity, input mismatch disabled). Programming write noise
    /// is resampled per build, so permuted rebuilds track only to within a
    /// code or so.
    pub permutation_dom_lsb: u32,
    /// Minimum corpus-wide winner agreement between the flat and the
    /// 2-segment partitioned decomposition at driven fidelity. Summed
    /// segment codes re-rank near-ties, so per-query agreement is bounded,
    /// not exact.
    pub min_flat_partitioned_agreement: f64,
    /// Minimum corpus-wide winner agreement between the flat module and
    /// the 2-cluster hierarchical deployment at driven fidelity. Cluster
    /// routing loses globally-close seconds, so this floor is the loosest.
    pub min_flat_hierarchical_agreement: f64,
    /// Minimum corpus-wide winner agreement between the flat module and
    /// the tiled capacity pool at driven fidelity, comparing the flat
    /// winner to the pool's k=1 match mapped back to its build ordinal.
    /// Tiles resample programming noise and calibrate independently (only
    /// tile 0 shares the flat module's device samples), so per-query
    /// agreement is bounded, not exact.
    pub min_flat_tiled_agreement: f64,
    /// Max |DOM difference| in LSB codes between an f64 compiled recall
    /// plan and its opt-in f32 fast tier for the same query (analytic
    /// fidelities only; parasitic plans refuse the f32 tier). The f32
    /// correlate loses ~2⁻²⁴ relative precision per accumulation step,
    /// which quantizes away almost everywhere but can move a code that
    /// lands within a float ulp of an ADC decision threshold.
    pub plan_f32_dom_lsb: u32,
    /// Max relative column-current error between the f64 and f32 plan
    /// tiers, `|i32 − i64| / max(|i64|, ε)` with ε = 1 pA guarding dead
    /// columns. Bounds the analog-side drift before quantization.
    pub plan_f32_current_rel: f64,
}

impl ToleranceLedger {
    /// The committed budgets, with roughly 2× headroom over the maxima
    /// observed across a 240-case seeded calibration sweep (the
    /// `corpus::tests::calibration_sweep` helper; the `observed_*` fields
    /// of the conformance report track the live maxima against these
    /// budgets). Measured: ideal↔driven |ΔDOM| ≤ 6 LSB, driven↔parasitic
    /// ≤ 1 LSB, permutation ≤ 1 LSB, flat↔partitioned agreement 1.000,
    /// flat↔hierarchical agreement 0.990, flat↔tiled agreement 1.000.
    /// The f32-plan tier measured
    /// |ΔDOM| ≤ 1 LSB and relative current error < 1e-5 across the same
    /// sweep (`spinamm_core::plan` keeps all conditioning in f64, so only
    /// the correlate accumulates in single precision).
    pub const DEFAULT: Self = Self {
        ideal_driven_dom_lsb: 12,
        driven_parasitic_dom_lsb: 3,
        tie_margin_lsb: 3,
        permutation_dom_lsb: 3,
        min_flat_partitioned_agreement: 0.90,
        min_flat_hierarchical_agreement: 0.85,
        min_flat_tiled_agreement: 0.90,
        plan_f32_dom_lsb: 2,
        plan_f32_current_rel: 1e-4,
    };

    /// Checks the budgets are usable: agreement floors in `[0, 1]`, finite.
    ///
    /// # Errors
    ///
    /// Returns [`ConformanceError::InvalidParameter`] otherwise.
    pub fn validate(&self) -> Result<(), ConformanceError> {
        for rate in [
            self.min_flat_partitioned_agreement,
            self.min_flat_hierarchical_agreement,
            self.min_flat_tiled_agreement,
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(ConformanceError::InvalidParameter {
                    what: "ledger agreement floors must be within [0, 1]",
                });
            }
        }
        if !self.plan_f32_current_rel.is_finite() || self.plan_f32_current_rel < 0.0 {
            return Err(ConformanceError::InvalidParameter {
                what: "f32-plan current budget must be finite and non-negative",
            });
        }
        Ok(())
    }
}

impl Default for ToleranceLedger {
    fn default() -> Self {
        Self::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ledger_validates() {
        assert!(ToleranceLedger::DEFAULT.validate().is_ok());
    }

    #[test]
    fn bad_agreement_floor_is_rejected() {
        let mut ledger = ToleranceLedger::DEFAULT;
        ledger.min_flat_partitioned_agreement = 1.5;
        assert!(ledger.validate().is_err());
        ledger.min_flat_partitioned_agreement = f64::NAN;
        assert!(ledger.validate().is_err());
    }

    #[test]
    fn bad_f32_current_budget_is_rejected() {
        let mut ledger = ToleranceLedger::DEFAULT;
        ledger.plan_f32_current_rel = -1e-6;
        assert!(ledger.validate().is_err());
        ledger.plan_f32_current_rel = f64::INFINITY;
        assert!(ledger.validate().is_err());
    }
}
