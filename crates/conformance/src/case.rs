//! One conformance case: a seeded workload pushed through every fidelity
//! and every execution path, judged against the tolerance ledger.

use crate::ledger::ToleranceLedger;
use crate::ConformanceError;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spinamm_circuit::units::{Amps, Seconds, Volts};
use spinamm_cmos::Tech45;
use spinamm_core::adc::SpinSarAdc;
use spinamm_core::amm::{AmmConfig, AssociativeMemoryModule, Fidelity, RecallResult};
use spinamm_core::capacity::TiledAmm;
use spinamm_core::degrade::DegradationPolicy;
use spinamm_core::hierarchy::HierarchicalAmm;
use spinamm_core::partition::PartitionedAmm;
use spinamm_core::plan::{PlanOptions, PlanPrecision};
use spinamm_core::wta::argmax_lowest_index;
use spinamm_data::workload::{PatternWorkload, WorkloadConfig};
use spinamm_engine::{Deployment, EngineConfig, EngineResponse, RecallEngine};
use spinamm_faults::{FaultMap, FaultModel};
use spinamm_telemetry::Recorder;

/// The three evaluation fidelities every case sweeps, in comparison order.
pub const FIDELITIES: [Fidelity; 3] = [Fidelity::Ideal, Fidelity::Driven, Fidelity::Parasitic];

/// Engine worker counts every case sweeps ("several worker counts": one
/// degenerate single-worker engine plus a genuinely concurrent one).
pub const WORKER_COUNTS: [usize; 2] = [1, 3];

/// Stuck-cell rate used for the faulted differential path.
const FAULT_RATE: f64 = 0.02;

/// An intentional column-wise conductance perturbation, installed on the
/// batch-path module only so the differential oracle must flag it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perturbation {
    /// The crossbar column whose cells are scaled.
    pub column: usize,
    /// The conductance gain, in `(0, 1)`: scaling *down* never trips the
    /// degradation policy's masking (no positive excess), so the raw
    /// divergence reaches the oracle unmitigated.
    pub gain: f64,
}

/// One seeded conformance case — everything needed to reproduce a run.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Master seed for the workload and module builds.
    pub seed: u64,
    /// Stored templates.
    pub pattern_count: usize,
    /// Elements per template.
    pub vector_len: usize,
    /// Noisy queries evaluated per path.
    pub query_count: usize,
    /// Workload noise magnitude in levels.
    pub noise_magnitude: u32,
    /// Run the fault-injected differential path (a seeded stuck-cell map
    /// installed identically on every compared module).
    pub faulted: bool,
    /// Optional intentional divergence (see [`Perturbation`]).
    pub perturbation: Option<Perturbation>,
}

impl CaseSpec {
    /// Checks the case is runnable through every path (partitioning needs
    /// at least two rows, hierarchy at least two patterns, and so on).
    ///
    /// # Errors
    ///
    /// Returns [`ConformanceError::InvalidParameter`] otherwise.
    pub fn validate(&self) -> Result<(), ConformanceError> {
        if self.pattern_count < 2 {
            return Err(ConformanceError::InvalidParameter {
                what: "case needs at least 2 patterns (hierarchy has 2 clusters)",
            });
        }
        if self.vector_len < 4 {
            return Err(ConformanceError::InvalidParameter {
                what: "case needs at least 4 rows (partitioning has 2 segments)",
            });
        }
        if self.query_count == 0 {
            return Err(ConformanceError::InvalidParameter {
                what: "case needs at least one query",
            });
        }
        if !(1..32).contains(&self.noise_magnitude) {
            return Err(ConformanceError::InvalidParameter {
                what: "noise magnitude must be within 1..32 levels",
            });
        }
        if let Some(p) = self.perturbation {
            if p.column >= self.pattern_count {
                return Err(ConformanceError::InvalidParameter {
                    what: "perturbed column outside the array",
                });
            }
            if !p.gain.is_finite() || !(0.0..1.0).contains(&p.gain) || p.gain == 0.0 {
                return Err(ConformanceError::InvalidParameter {
                    what: "perturbation gain must be within (0, 1)",
                });
            }
        }
        Ok(())
    }
}

/// One ledger violation: which check failed, on which query, and how.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Dotted check identifier, e.g. `bit_identity.batch.driven` or
    /// `fidelity.ideal_driven.dom`.
    pub check: String,
    /// The query index the violation occurred on, when per-query.
    pub query: Option<usize>,
    /// Human-readable mismatch description.
    pub detail: String,
}

/// Winner-agreement tally between two compared paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Agreement {
    /// Queries where both paths picked the same winner.
    pub agree: u64,
    /// Queries compared.
    pub total: u64,
}

impl Agreement {
    /// Agreement rate; an empty tally counts as full agreement.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.agree as f64 / self.total as f64
        }
    }

    /// Accumulates another tally.
    pub fn merge(&mut self, other: Agreement) {
        self.agree += other.agree;
        self.total += other.total;
    }
}

/// Maximum divergences actually observed, reported next to the ledger
/// budgets so drift toward a budget is visible before it crosses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObservedBounds {
    /// Max |ΔDOM| seen between ideal and driven fidelity.
    pub ideal_driven_dom_lsb: u32,
    /// Max |ΔDOM| seen between driven and parasitic fidelity.
    pub driven_parasitic_dom_lsb: u32,
    /// Max |ΔDOM| seen across the metamorphic permutation check.
    pub permutation_dom_lsb: u32,
    /// Max |ΔDOM| seen between the f64 and f32 compiled-plan tiers.
    pub plan_f32_dom_lsb: u32,
}

impl ObservedBounds {
    /// Pointwise maximum with another observation.
    pub fn merge(&mut self, other: &ObservedBounds) {
        self.ideal_driven_dom_lsb = self.ideal_driven_dom_lsb.max(other.ideal_driven_dom_lsb);
        self.driven_parasitic_dom_lsb = self
            .driven_parasitic_dom_lsb
            .max(other.driven_parasitic_dom_lsb);
        self.permutation_dom_lsb = self.permutation_dom_lsb.max(other.permutation_dom_lsb);
        self.plan_f32_dom_lsb = self.plan_f32_dom_lsb.max(other.plan_f32_dom_lsb);
    }
}

/// Everything one case produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CaseOutcome {
    /// Individual ledger checks evaluated.
    pub checks: u64,
    /// Ledger violations found (empty on a conforming case).
    pub divergences: Vec<Divergence>,
    /// Maxima observed against the bounded budgets.
    pub observed: ObservedBounds,
    /// Flat↔partitioned winner agreement (aggregated by the corpus).
    pub flat_partitioned: Agreement,
    /// Flat↔hierarchical winner agreement (aggregated by the corpus).
    pub flat_hierarchical: Agreement,
    /// Flat↔tiled winner agreement (aggregated by the corpus).
    pub flat_tiled: Agreement,
}

fn fidelity_name(f: Fidelity) -> &'static str {
    match f {
        Fidelity::Ideal => "ideal",
        Fidelity::Driven => "driven",
        Fidelity::Parasitic => "parasitic",
    }
}

fn amm_config(spec: &CaseSpec, fidelity: Fidelity) -> AmmConfig {
    AmmConfig {
        fidelity,
        seed: spec.seed ^ 0xa5eed,
        ..AmmConfig::default()
    }
}

fn workload(spec: &CaseSpec) -> Result<PatternWorkload, ConformanceError> {
    Ok(PatternWorkload::generate(&WorkloadConfig {
        pattern_count: spec.pattern_count,
        vector_len: spec.vector_len,
        bits: 5,
        query_count: spec.query_count,
        query_noise: 0.3,
        noise_magnitude: spec.noise_magnitude,
        similarity: 0.0,
        seed: spec.seed,
    })?)
}

/// Installs the case's seeded fault map (when `spec.faulted`) and the
/// intentional perturbation (when handed one) in a single injection pass,
/// so compared modules share one degradation schedule.
fn install_faults(
    module: &mut AssociativeMemoryModule,
    spec: &CaseSpec,
    perturbation: Option<Perturbation>,
) -> Result<(), ConformanceError> {
    if !spec.faulted && perturbation.is_none() {
        return Ok(());
    }
    let rows = module.vector_len();
    let cols = module.pattern_count();
    let mut map = if spec.faulted {
        FaultMap::sample(
            &FaultModel::stuck(FAULT_RATE).expect("static rate in range"),
            rows,
            cols,
            spec.seed ^ 0xfa17,
        )?
    } else {
        FaultMap::pristine(rows, cols, 0)?
    };
    if let Some(p) = perturbation {
        for row in 0..rows {
            map = map.with_cell_gain(row, p.column, p.gain)?;
        }
    }
    module.inject_faults(map, &DegradationPolicy::default())?;
    Ok(())
}

/// The winner's code margin over the best other column (`dom` itself for a
/// single-column module). Near-ties — small margins on *both* sides of a
/// comparison — are the only excuse for a winner mismatch.
fn margin(codes: &[u32], winner: usize) -> u32 {
    let runner_up = codes
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != winner)
        .map(|(_, &c)| c)
        .max();
    match runner_up {
        Some(r) => codes[winner].saturating_sub(r),
        None => codes[winner],
    }
}

/// The sequential full-argsort ranking oracle: all columns ordered by
/// `(code descending, global column ascending)`, truncated to `k` — an
/// independent implementation of the contract
/// [`spinamm_core::capacity::top_k_merge`] must meet.
fn argsort_oracle(scores: &[u32], k: usize) -> Vec<(usize, u32)> {
    let mut all: Vec<(usize, u32)> = scores.iter().copied().enumerate().collect();
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

fn flat_detail(a: &RecallResult, b: &RecallResult) -> String {
    format!(
        "winner {} dom {} vs winner {} dom {} (codes {:?} vs {:?})",
        a.raw_winner, a.dom, b.raw_winner, b.dom, a.codes, b.codes
    )
}

/// Bounded cross-fidelity comparison; returns the max |ΔDOM| observed.
fn bounded_pair(
    out: &mut CaseOutcome,
    name: &str,
    a: &[RecallResult],
    b: &[RecallResult],
    dom_budget: u32,
    tie_margin: u32,
) -> u32 {
    let mut max_delta = 0u32;
    for (k, (ra, rb)) in a.iter().zip(b).enumerate() {
        out.checks += 1;
        let delta = ra.dom.abs_diff(rb.dom);
        max_delta = max_delta.max(delta);
        if delta > dom_budget {
            out.divergences.push(Divergence {
                check: format!("{name}.dom"),
                query: Some(k),
                detail: format!("|ΔDOM| {delta} exceeds budget {dom_budget} LSB"),
            });
        }
        if ra.raw_winner != rb.raw_winner {
            let ma = margin(&ra.codes, ra.raw_winner);
            let mb = margin(&rb.codes, rb.raw_winner);
            if ma > tie_margin || mb > tie_margin {
                out.divergences.push(Divergence {
                    check: format!("{name}.winner"),
                    query: Some(k),
                    detail: format!(
                        "winners {} vs {} with margins {ma}/{mb} LSB (tie budget {tie_margin})",
                        ra.raw_winner, rb.raw_winner
                    ),
                });
            }
        }
    }
    max_delta
}

/// Runs one case through the full differential oracle. Divergences are
/// *findings* collected in the outcome, not errors; `Err` means the
/// harness itself could not run (bad spec, device failure).
///
/// Emits `conformance.cases` / `conformance.checks` /
/// `conformance.divergences` counters on `recorder`.
///
/// # Errors
///
/// Returns [`ConformanceError::InvalidParameter`] for an unrunnable spec
/// and propagates recall-stack failures.
#[allow(clippy::too_many_lines)] // one case = one linear audit script
pub fn run_case<T: Recorder>(
    spec: &CaseSpec,
    ledger: &ToleranceLedger,
    recorder: &T,
) -> Result<CaseOutcome, ConformanceError> {
    spec.validate()?;
    ledger.validate()?;
    let w = workload(spec)?;
    let inputs: Vec<Vec<u32>> = w.queries.iter().map(|(_, q)| q.clone()).collect();
    let mut out = CaseOutcome::default();
    let mut per_fidelity: Vec<Vec<RecallResult>> = Vec::with_capacity(FIDELITIES.len());

    // --- Bit-identity oracle, per fidelity. ------------------------------
    for fidelity in FIDELITIES {
        let name = fidelity_name(fidelity);
        let cfg = amm_config(spec, fidelity);
        let mut reference = AssociativeMemoryModule::build(&w.patterns, &cfg)?;
        install_faults(&mut reference, spec, None)?;
        let sequential = inputs
            .iter()
            .map(|q| reference.recall(q))
            .collect::<Result<Vec<_>, _>>()?;

        // Sequential vs recall_batch. The intentional perturbation, when
        // present, lands on this module alone: the oracle must flag it.
        let mut batch_module = AssociativeMemoryModule::build(&w.patterns, &cfg)?;
        install_faults(&mut batch_module, spec, spec.perturbation)?;
        let batched = batch_module.recall_batch(&inputs)?;
        out.checks += inputs.len() as u64;
        for (k, (a, b)) in sequential.iter().zip(&batched).enumerate() {
            if a != b {
                out.divergences.push(Divergence {
                    check: format!("bit_identity.batch.{name}"),
                    query: Some(k),
                    detail: flat_detail(a, b),
                });
            }
        }

        // Sequential vs the concurrent engine at several worker counts.
        for workers in WORKER_COUNTS {
            let mut engine_module = AssociativeMemoryModule::build(&w.patterns, &cfg)?;
            install_faults(&mut engine_module, spec, None)?;
            let engine = RecallEngine::new(
                Deployment::Flat(engine_module),
                &EngineConfig::builder()
                    .workers(workers)
                    .queue_capacity(2)
                    .use_plans(false)
                    .build(),
            );
            let responses = engine.recall_many(&inputs)?;
            engine.shutdown();
            out.checks += inputs.len() as u64;
            for (k, (want, got)) in sequential.iter().zip(&responses).enumerate() {
                let identical = matches!(got, EngineResponse::Flat(r) if r == want);
                if !identical {
                    out.divergences.push(Divergence {
                        check: format!("bit_identity.engine.{name}.w{workers}"),
                        query: Some(k),
                        detail: format!("engine response diverged: {got:?}"),
                    });
                }
            }
        }

        // Sequential vs a compiled recall plan. An f64 plan lowered from an
        // identically built (and identically faulted) module must reproduce
        // the sequential reference bit for bit — winner, codes, currents,
        // energy floats, all of it.
        let mut plan_module = AssociativeMemoryModule::build(&w.patterns, &cfg)?;
        install_faults(&mut plan_module, spec, None)?;
        let mut plan = plan_module.compile_plan(PlanOptions::default())?;
        out.checks += inputs.len() as u64;
        for (k, (want, q)) in sequential.iter().zip(&inputs).enumerate() {
            let got = plan.execute(q)?;
            if &got != want {
                out.divergences.push(Divergence {
                    check: format!("bit_identity.plan.{name}"),
                    query: Some(k),
                    detail: flat_detail(&got, want),
                });
            }
        }

        // The opt-in f32 fast tier is a bounded-divergence path: DOM within
        // `plan_f32_dom_lsb`, winner flips excused only on near-ties, and
        // the pre-quantization column currents within relative budget.
        // Parasitic plans refuse the tier, so only analytic fidelities run.
        if fidelity != Fidelity::Parasitic {
            let mut fast_module = AssociativeMemoryModule::build(&w.patterns, &cfg)?;
            install_faults(&mut fast_module, spec, None)?;
            let mut fast = fast_module.compile_plan(PlanOptions {
                precision: PlanPrecision::F32,
            })?;
            for (k, (want, q)) in sequential.iter().zip(&inputs).enumerate() {
                let got = fast.execute(q)?;
                out.checks += 1;
                let delta = got.dom.abs_diff(want.dom);
                out.observed.plan_f32_dom_lsb = out.observed.plan_f32_dom_lsb.max(delta);
                if delta > ledger.plan_f32_dom_lsb {
                    out.divergences.push(Divergence {
                        check: format!("plan.f32.{name}.dom"),
                        query: Some(k),
                        detail: format!(
                            "|ΔDOM| {delta} exceeds budget {} LSB",
                            ledger.plan_f32_dom_lsb
                        ),
                    });
                }
                if got.raw_winner != want.raw_winner {
                    let ma = margin(&got.codes, got.raw_winner);
                    let mb = margin(&want.codes, want.raw_winner);
                    if ma > ledger.tie_margin_lsb || mb > ledger.tie_margin_lsb {
                        out.divergences.push(Divergence {
                            check: format!("plan.f32.{name}.winner"),
                            query: Some(k),
                            detail: format!(
                                "winners {} vs {} with margins {ma}/{mb} LSB (tie budget {})",
                                got.raw_winner, want.raw_winner, ledger.tie_margin_lsb
                            ),
                        });
                    }
                }
                out.checks += 1;
                for (j, (fast_i, ref_i)) in got
                    .column_currents
                    .iter()
                    .zip(&want.column_currents)
                    .enumerate()
                {
                    let rel = (fast_i.0 - ref_i.0).abs() / ref_i.0.abs().max(1e-12);
                    if rel > ledger.plan_f32_current_rel {
                        out.divergences.push(Divergence {
                            check: format!("plan.f32.{name}.current"),
                            query: Some(k),
                            detail: format!(
                                "column {j} current drifted {rel:.2e} (budget {:.2e})",
                                ledger.plan_f32_current_rel
                            ),
                        });
                    }
                }
            }
        }

        per_fidelity.push(sequential);
    }

    // --- Bounded cross-fidelity divergence. ------------------------------
    let d = bounded_pair(
        &mut out,
        "fidelity.ideal_driven",
        &per_fidelity[0],
        &per_fidelity[1],
        ledger.ideal_driven_dom_lsb,
        ledger.tie_margin_lsb,
    );
    out.observed.ideal_driven_dom_lsb = d;
    let d = bounded_pair(
        &mut out,
        "fidelity.driven_parasitic",
        &per_fidelity[1],
        &per_fidelity[2],
        ledger.driven_parasitic_dom_lsb,
        ledger.tie_margin_lsb,
    );
    out.observed.driven_parasitic_dom_lsb = d;

    // --- Partitioned and hierarchical deployments (driven fidelity). -----
    let cfg = amm_config(spec, Fidelity::Driven);
    let flat_driven = &per_fidelity[1];

    let mut part = PartitionedAmm::build(&w.patterns, 2, &cfg)?;
    let part_engine = RecallEngine::new(
        Deployment::Partitioned(part.clone()),
        &EngineConfig::builder()
            .workers(2)
            .queue_capacity(2)
            .use_plans(false)
            .build(),
    );
    let part_responses = part_engine.recall_many(&inputs)?;
    part_engine.shutdown();
    let part_direct = inputs
        .iter()
        .map(|q| part.recall(q))
        .collect::<Result<Vec<_>, _>>()?;
    out.checks += inputs.len() as u64;
    for (k, (want, got)) in part_direct.iter().zip(&part_responses).enumerate() {
        let identical = matches!(got, EngineResponse::Partitioned(r) if r == want);
        if !identical {
            out.divergences.push(Divergence {
                check: "bit_identity.engine.partitioned".to_string(),
                query: Some(k),
                detail: format!("engine response diverged: {got:?}"),
            });
        }
    }

    let mut hier = HierarchicalAmm::build(&w.patterns, 2, &cfg)?;
    let hier_engine = RecallEngine::new(
        Deployment::Hierarchical(hier.clone()),
        &EngineConfig::builder()
            .workers(2)
            .queue_capacity(2)
            .use_plans(false)
            .build(),
    );
    let hier_responses = hier_engine.recall_many(&inputs)?;
    hier_engine.shutdown();
    let hier_direct = inputs
        .iter()
        .map(|q| hier.recall(q))
        .collect::<Result<Vec<_>, _>>()?;
    out.checks += inputs.len() as u64;
    for (k, (want, got)) in hier_direct.iter().zip(&hier_responses).enumerate() {
        let identical = matches!(got, EngineResponse::Hierarchical(r) if r == want);
        if !identical {
            out.divergences.push(Divergence {
                check: "bit_identity.engine.hierarchical".to_string(),
                query: Some(k),
                detail: format!("engine response diverged: {got:?}"),
            });
        }
    }

    // --- Tiled capacity pool (driven fidelity, ranked top-k recall). ------
    // The pool splits the template set across two tiles and ranks with
    // k = 3; every ranked result is audited against the sequential argsort
    // oracle and the legacy single-winner (k = 1) rule, and the engine's
    // fan-out must reproduce direct pool recall bit for bit.
    let tile_capacity = w.patterns.len().div_ceil(2);
    let mut tiled = TiledAmm::build(&w.patterns, tile_capacity, &cfg)?.with_top_k(3)?;
    let tiled_engine = RecallEngine::new(
        Deployment::Tiled(tiled.clone()),
        &EngineConfig::builder()
            .workers(2)
            .queue_capacity(2)
            .use_plans(false)
            .build(),
    );
    let tiled_responses = tiled_engine.recall_many(&inputs)?;
    tiled_engine.shutdown();
    let tiled_direct = inputs
        .iter()
        .map(|q| tiled.recall(q))
        .collect::<Result<Vec<_>, _>>()?;
    out.checks += inputs.len() as u64;
    for (k, (want, got)) in tiled_direct.iter().zip(&tiled_responses).enumerate() {
        let identical = matches!(got, EngineResponse::Tiled(r) if r == want);
        if !identical {
            out.divergences.push(Divergence {
                check: "bit_identity.engine.tiled".to_string(),
                query: Some(k),
                detail: format!("engine response diverged: {got:?}"),
            });
        }
    }
    for (k, r) in tiled_direct.iter().enumerate() {
        // Ranked output ≡ the first top_k entries of a full argsort of the
        // concatenated per-tile codes (code desc, global column asc).
        out.checks += 1;
        let ranked: Vec<(usize, u32)> = r
            .matches
            .iter()
            .map(|m| (m.global_column, m.score))
            .collect();
        let oracle = argsort_oracle(&r.scores, ranked.len());
        if ranked != oracle {
            out.divergences.push(Divergence {
                check: "capacity.topk.oracle".to_string(),
                query: Some(k),
                detail: format!("ranked {ranked:?} vs argsort oracle {oracle:?}"),
            });
        }
        // k = 1 ≡ the legacy WTA tie-break rule over the concatenation.
        out.checks += 1;
        let legacy = argmax_lowest_index(&r.scores).expect("pool has columns");
        if r.matches[0].global_column != legacy || r.dom != r.scores[legacy] {
            out.divergences.push(Divergence {
                check: "capacity.topk.k1".to_string(),
                query: Some(k),
                detail: format!(
                    "top match {} dom {} vs argmax_lowest_index {} code {}",
                    r.matches[0].global_column, r.dom, legacy, r.scores[legacy]
                ),
            });
        }
    }

    // Cross-decomposition winner agreement, aggregated corpus-wide against
    // the ledger floors. Faulted cases are skipped: the flat reference
    // carries the fault map but the decompositions do not, so the tally
    // would measure the faults, not the decomposition.
    if !spec.faulted {
        for (rf, rp) in flat_driven.iter().zip(&part_direct) {
            out.flat_partitioned.total += 1;
            if rf.raw_winner == rp.winner {
                out.flat_partitioned.agree += 1;
            }
        }
        for (rf, rh) in flat_driven.iter().zip(&hier_direct) {
            out.flat_hierarchical.total += 1;
            if rf.raw_winner == rh.winner {
                out.flat_hierarchical.agree += 1;
            }
        }
        for (rf, rt) in flat_driven.iter().zip(&tiled_direct) {
            out.flat_tiled.total += 1;
            let ordinal = rt.matches[0].handle.map(|h| tiled.build_ordinal(&h));
            if ordinal == Some(rf.raw_winner) {
                out.flat_tiled.agree += 1;
            }
        }
    }

    // --- Metamorphic invariants. -----------------------------------------
    metamorphic_duplication(spec, &w, &mut out)?;
    metamorphic_permutation(spec, &w, ledger, &mut out)?;
    metamorphic_monotonicity(spec, &w, &mut out)?;
    adc_saturation_check(spec, &mut out)?;

    recorder.counter("conformance.cases", 1);
    recorder.counter("conformance.checks", out.checks);
    recorder.counter("conformance.divergences", out.divergences.len() as u64);
    Ok(out)
}

/// Template-duplication tie: an exact copy of template 0 stored in the
/// last column must never report as the winner unless it strictly
/// out-scores the original — on an exact code tie the lowest index wins.
fn metamorphic_duplication(
    spec: &CaseSpec,
    w: &PatternWorkload,
    out: &mut CaseOutcome,
) -> Result<(), ConformanceError> {
    let mut patterns = w.patterns.clone();
    patterns.push(w.patterns[0].clone());
    let dup = patterns.len() - 1;
    let cfg = amm_config(spec, Fidelity::Driven);
    let mut module = AssociativeMemoryModule::build(&patterns, &cfg)?;
    let r = module.recall(&w.patterns[0])?;
    out.checks += 1;
    let expected = argmax_lowest_index(&r.codes).expect("non-empty codes");
    if r.raw_winner != expected || (r.codes[0] == r.codes[dup] && r.raw_winner != 0) {
        out.divergences.push(Divergence {
            check: "metamorphic.duplication".to_string(),
            query: None,
            detail: format!(
                "winner {} with codes {:?}; duplicate of template 0 at column {dup}",
                r.raw_winner, r.codes
            ),
        });
    }
    Ok(())
}

/// Input-permutation consistency: permuting the rows of every template and
/// of the query must leave the recall outcome unchanged up to programming
/// write noise (ideal fidelity, input mismatch disabled, so row order
/// carries no sampled per-row state).
fn metamorphic_permutation(
    spec: &CaseSpec,
    w: &PatternWorkload,
    ledger: &ToleranceLedger,
    out: &mut CaseOutcome,
) -> Result<(), ConformanceError> {
    let mut cfg = amm_config(spec, Fidelity::Ideal);
    cfg.input_mismatch = false;
    let query = &w.queries[0].1;
    let mut base = AssociativeMemoryModule::build(&w.patterns, &cfg)?;
    let rb = base.recall(query)?;

    let mut perm: Vec<usize> = (0..spec.vector_len).collect();
    {
        use rand::seq::SliceRandom;
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x9e23);
        perm.shuffle(&mut rng);
    }
    let permuted: Vec<Vec<u32>> = w
        .patterns
        .iter()
        .map(|p| perm.iter().map(|&i| p[i]).collect())
        .collect();
    let permuted_query: Vec<u32> = perm.iter().map(|&i| query[i]).collect();
    let mut shuffled = AssociativeMemoryModule::build(&permuted, &cfg)?;
    let rp = shuffled.recall(&permuted_query)?;

    out.checks += 1;
    let delta = rb.dom.abs_diff(rp.dom);
    out.observed.permutation_dom_lsb = out.observed.permutation_dom_lsb.max(delta);
    let winners_excused = rb.raw_winner == rp.raw_winner
        || (margin(&rb.codes, rb.raw_winner) <= ledger.tie_margin_lsb
            && margin(&rp.codes, rp.raw_winner) <= ledger.tie_margin_lsb);
    if delta > ledger.permutation_dom_lsb || !winners_excused {
        out.divergences.push(Divergence {
            check: "metamorphic.permutation".to_string(),
            query: Some(0),
            detail: format!(
                "base winner {} dom {} vs permuted winner {} dom {} (budget {} LSB)",
                rb.raw_winner, rp.dom, rp.raw_winner, rp.dom, ledger.permutation_dom_lsb
            ),
        });
    }
    Ok(())
}

/// DOM monotonicity under column-wise conductance scaling: scaling every
/// cell of the winning column by a gain ladder `1 > γ₁ > γ₂ > …` must
/// never *increase* that column's code (ideal fidelity: the column current
/// scales exactly with γ and the converter is deterministic and monotone).
fn metamorphic_monotonicity(
    spec: &CaseSpec,
    w: &PatternWorkload,
    out: &mut CaseOutcome,
) -> Result<(), ConformanceError> {
    let cfg = amm_config(spec, Fidelity::Ideal);
    let query = &w.patterns[0];
    let mut base = AssociativeMemoryModule::build(&w.patterns, &cfg)?;
    let r0 = base.recall(query)?;
    let column = r0.raw_winner;
    let mut prev = r0.codes[column];
    for gain in [0.85f64, 0.65, 0.45] {
        let mut module = AssociativeMemoryModule::build(&w.patterns, &cfg)?;
        let rows = module.vector_len();
        let cols = module.pattern_count();
        let mut map = FaultMap::pristine(rows, cols, 0)?;
        for row in 0..rows {
            map = map.with_cell_gain(row, column, gain)?;
        }
        module.inject_faults(map, &DegradationPolicy::default())?;
        let r = module.recall(query)?;
        out.checks += 1;
        if r.codes[column] > prev {
            out.divergences.push(Divergence {
                check: "metamorphic.monotonicity".to_string(),
                query: None,
                detail: format!(
                    "column {column} code rose {prev} → {} at gain {gain}",
                    r.codes[column]
                ),
            });
        }
        prev = r.codes[column];
    }
    Ok(())
}

/// Over-range saturation driven through the harness: a column current far
/// beyond DAC full scale must convert to the all-ones code with bounded,
/// finite write energy, and a non-finite current must be rejected.
fn adc_saturation_check(spec: &CaseSpec, out: &mut CaseOutcome) -> Result<(), ConformanceError> {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x0adc);
    let adc = SpinSarAdc::build(
        5,
        Amps(1e-6),
        Volts(0.030),
        Seconds(10e-9),
        &Tech45::DEFAULT,
        &mut rng,
    )?;
    let ceiling = adc.saturation_ceiling()?;
    let sat = adc.convert(Amps(ceiling.0 * 50.0), &mut rng)?;
    out.checks += 1;
    if sat.code != 31 || !sat.dwn_energy.0.is_finite() {
        out.divergences.push(Divergence {
            check: "adc.saturation".to_string(),
            query: None,
            detail: format!(
                "50× over-range converted to code {} with DWN energy {}",
                sat.code, sat.dwn_energy.0
            ),
        });
    }
    out.checks += 1;
    if adc.convert(Amps(f64::NAN), &mut rng).is_ok() {
        out.divergences.push(Divergence {
            check: "adc.guard".to_string(),
            query: None,
            detail: "non-finite input current was accepted".to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinamm_telemetry::{MemoryRecorder, NoopRecorder};

    fn spec() -> CaseSpec {
        CaseSpec {
            seed: 0x51ab,
            pattern_count: 4,
            vector_len: 12,
            query_count: 4,
            noise_magnitude: 1,
            faulted: false,
            perturbation: None,
        }
    }

    #[test]
    fn spec_validation() {
        assert!(spec().validate().is_ok());
        let mut s = spec();
        s.pattern_count = 1;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.vector_len = 2;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.query_count = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.perturbation = Some(Perturbation {
            column: 9,
            gain: 0.5,
        });
        assert!(s.validate().is_err());
        let mut s = spec();
        s.perturbation = Some(Perturbation {
            column: 0,
            gain: 1.5,
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn clean_case_has_no_divergences() {
        let recorder = MemoryRecorder::default();
        let out = run_case(&spec(), &ToleranceLedger::DEFAULT, &recorder).unwrap();
        assert!(
            out.divergences.is_empty(),
            "unexpected divergences: {:?}",
            out.divergences
        );
        assert!(out.checks > 20, "only {} checks ran", out.checks);
        let counters = recorder.snapshot().counters;
        assert_eq!(counters.get("conformance.cases"), Some(&1));
        assert_eq!(counters.get("conformance.divergences"), Some(&0));
        assert_eq!(counters.get("conformance.checks"), Some(&out.checks));
    }

    #[test]
    fn plan_paths_stay_within_ledger() {
        // The compiled-plan oracle must actually run: the f64 tier bit
        // identically (no `bit_identity.plan.*` findings on a clean case)
        // and the f32 tier within its dedicated ledger budget, with the
        // observed maximum reported for calibration drift-watching.
        let out = run_case(&spec(), &ToleranceLedger::DEFAULT, &NoopRecorder).unwrap();
        assert!(
            !out.divergences.iter().any(|d| d.check.contains("plan")),
            "plan checks diverged: {:?}",
            out.divergences
        );
        assert!(out.observed.plan_f32_dom_lsb <= ToleranceLedger::DEFAULT.plan_f32_dom_lsb);
    }

    #[test]
    fn f32_budget_of_zero_flags_real_drift() {
        // Detector sensitivity: squeezing the f32 current budget to zero
        // must surface the tier's genuine (tiny) drift, proving the check
        // compares real numbers rather than vacuously passing.
        let mut ledger = ToleranceLedger::DEFAULT;
        ledger.plan_f32_current_rel = 0.0;
        let out = run_case(&spec(), &ledger, &NoopRecorder).unwrap();
        assert!(
            out.divergences
                .iter()
                .any(|d| d.check.contains("plan.f32") && d.check.ends_with("current")),
            "zero current budget should flag f32 drift: {:?}",
            out.divergences
        );
    }

    #[test]
    fn faulted_case_stays_bit_identical() {
        let mut s = spec();
        s.faulted = true;
        let out = run_case(&s, &ToleranceLedger::DEFAULT, &NoopRecorder).unwrap();
        let bit_identity_violations: Vec<_> = out
            .divergences
            .iter()
            .filter(|d| d.check.starts_with("bit_identity"))
            .collect();
        assert!(
            bit_identity_violations.is_empty(),
            "{bit_identity_violations:?}"
        );
    }

    #[test]
    fn perturbed_case_is_caught() {
        let mut s = spec();
        s.perturbation = Some(Perturbation {
            column: 0,
            gain: 0.5,
        });
        let out = run_case(&s, &ToleranceLedger::DEFAULT, &NoopRecorder).unwrap();
        assert!(
            out.divergences
                .iter()
                .any(|d| d.check.starts_with("bit_identity.batch")),
            "a halved column must break seq/batch bit-identity: {:?}",
            out.divergences
        );
    }

    #[test]
    fn margin_helper() {
        assert_eq!(margin(&[5, 3, 4], 0), 1);
        assert_eq!(margin(&[5, 5, 4], 0), 0);
        assert_eq!(margin(&[7], 0), 7);
        assert_eq!(margin(&[2, 9, 2], 1), 7);
    }
}
