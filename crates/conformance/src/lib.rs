//! Cross-fidelity conformance harness for the spinamm recall stack.
//!
//! The paper's headline results (Fig. 3, Fig. 9, Table 1) assume the
//! abstraction levels agree: the ideal dot product, the behavioural
//! crossbar, and the parasitic solve must rank the same winner or every
//! reported accuracy and margin number is an artifact of whichever
//! fidelity a study happened to use. After four PRs of solver caching,
//! fault injection and a concurrent engine on the recall path, this crate
//! is the standing oracle that continuously proves all those paths still
//! compute the same thing:
//!
//! * [`case::run_case`] — the **differential oracle**. One seeded workload
//!   is pushed through every fidelity (ideal / driven / parasitic) and
//!   every execution path (sequential [`recall`], `recall_batch`, the
//!   [`RecallEngine`] at several worker counts, partitioned and
//!   hierarchical deployments, fault-injected modules) and each comparison
//!   is judged against the [`ledger::ToleranceLedger`]: bit-identity where
//!   PRs 2–4 promise it, bounded DOM/margin divergence between fidelities,
//!   plus metamorphic invariants (input-permutation consistency,
//!   template-duplication ties, DOM monotonicity under column-wise
//!   conductance scaling, ADC over-range saturation).
//! * [`corpus::run_corpus`] — the **corpus driver**: samples seeded cases,
//!   aggregates cross-path agreement against the ledger floors, and
//!   reports every divergence.
//! * [`corpus::shrink_case`] + [`corpus::repro_to_json`] — the **shrinking
//!   reducer**: minimizes a divergent case and persists it as a JSON repro
//!   that replays as a regression test (see `conformance/corpus/` at the
//!   repository root).
//!
//! Telemetry: the harness emits `conformance.cases`,
//! `conformance.checks` and `conformance.divergences` counters on the
//! recorder it is handed.
//!
//! [`recall`]: spinamm_core::amm::AssociativeMemoryModule::recall
//! [`RecallEngine`]: spinamm_engine::RecallEngine

pub mod case;
pub mod corpus;
pub mod ledger;

pub use case::{
    run_case, Agreement, CaseOutcome, CaseSpec, Divergence, ObservedBounds, Perturbation,
};
pub use corpus::{
    repro_from_json, repro_to_json, run_corpus, shrink_case, CorpusConfig, CorpusOutcome,
    DivergentCase, ShrinkResult,
};
pub use ledger::ToleranceLedger;

use std::fmt;

/// Everything that can go wrong while running the harness (as opposed to a
/// *divergence*, which is a finding, not an error).
#[derive(Debug, Clone, PartialEq)]
pub enum ConformanceError {
    /// A spec, ledger or repro parameter is outside its domain.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// A recall-stack operation failed.
    Core(spinamm_core::CoreError),
    /// The concurrent engine failed.
    Engine(spinamm_engine::EngineError),
    /// A committed repro did not parse.
    Repro(String),
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            Self::Core(e) => write!(f, "core error: {e}"),
            Self::Engine(e) => write!(f, "engine error: {e}"),
            Self::Repro(e) => write!(f, "bad repro: {e}"),
        }
    }
}

impl std::error::Error for ConformanceError {}

impl From<spinamm_core::CoreError> for ConformanceError {
    fn from(e: spinamm_core::CoreError) -> Self {
        Self::Core(e)
    }
}

impl From<spinamm_engine::EngineError> for ConformanceError {
    fn from(e: spinamm_engine::EngineError) -> Self {
        Self::Engine(e)
    }
}

impl From<spinamm_data::DataError> for ConformanceError {
    fn from(e: spinamm_data::DataError) -> Self {
        Self::Core(e.into())
    }
}

impl From<spinamm_faults::FaultsError> for ConformanceError {
    fn from(e: spinamm_faults::FaultsError) -> Self {
        Self::Core(e.into())
    }
}
