//! The corpus driver: seeded case sampling, corpus-wide aggregation
//! against the ledger floors, the shrinking reducer, and the JSON repro
//! format that replays committed divergences as regression tests.

use crate::case::{
    run_case, Agreement, CaseOutcome, CaseSpec, Divergence, ObservedBounds, Perturbation,
};
use crate::ledger::ToleranceLedger;
use crate::ConformanceError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spinamm_telemetry::json::{self, JsonValue};
use spinamm_telemetry::Recorder;

/// How many seeded cases to sample and where to start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusConfig {
    /// Number of sampled cases.
    pub cases: usize,
    /// Seed for the sampler; every case derives its own seed from it.
    pub base_seed: u64,
}

/// A case that violated the ledger, kept with its findings.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergentCase {
    /// The sampled spec that diverged.
    pub spec: CaseSpec,
    /// The violations it produced.
    pub divergences: Vec<Divergence>,
}

/// Aggregate result of a corpus sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusOutcome {
    /// Cases run.
    pub cases: u64,
    /// Ledger checks evaluated across all cases.
    pub checks: u64,
    /// Cases whose per-case checks violated the ledger.
    pub divergent: Vec<DivergentCase>,
    /// Maxima observed against the bounded budgets, corpus-wide.
    pub observed: ObservedBounds,
    /// Flat↔partitioned winner agreement across unfaulted cases.
    pub flat_partitioned: Agreement,
    /// Flat↔hierarchical winner agreement across unfaulted cases.
    pub flat_hierarchical: Agreement,
    /// Flat↔tiled winner agreement across unfaulted cases.
    pub flat_tiled: Agreement,
    /// Corpus-level violations (agreement floors under the ledger minimum).
    pub aggregate_violations: Vec<Divergence>,
}

impl CorpusOutcome {
    /// Total unwaived ledger violations: every per-case divergence plus
    /// every aggregate floor violation.
    #[must_use]
    pub fn unwaived_divergences(&self) -> u64 {
        let per_case: usize = self.divergent.iter().map(|d| d.divergences.len()).sum();
        (per_case + self.aggregate_violations.len()) as u64
    }
}

/// Samples the `index`-th case spec. Every fourth case runs the
/// fault-injected differential path; perturbations are never sampled —
/// they exist only for intentional-divergence demos and committed repros.
fn sample_spec<R: Rng + ?Sized>(rng: &mut R, index: usize) -> CaseSpec {
    CaseSpec {
        seed: rng.gen::<u64>(),
        pattern_count: rng.gen_range(3..=6),
        vector_len: rng.gen_range(8..=20),
        query_count: rng.gen_range(3..=6),
        noise_magnitude: rng.gen_range(1..=3),
        faulted: index % 4 == 3,
        perturbation: None,
    }
}

/// Runs `cfg.cases` sampled cases through the differential oracle and
/// checks the corpus-wide agreement floors.
///
/// # Errors
///
/// Propagates harness failures from [`run_case`]; divergences are findings
/// in the outcome, never errors.
pub fn run_corpus<T: Recorder>(
    cfg: &CorpusConfig,
    ledger: &ToleranceLedger,
    recorder: &T,
) -> Result<CorpusOutcome, ConformanceError> {
    if cfg.cases == 0 {
        return Err(ConformanceError::InvalidParameter {
            what: "corpus needs at least one case",
        });
    }
    ledger.validate()?;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.base_seed);
    let mut out = CorpusOutcome::default();
    for index in 0..cfg.cases {
        let spec = sample_spec(&mut rng, index);
        let case = run_case(&spec, ledger, recorder)?;
        out.cases += 1;
        out.checks += case.checks;
        out.observed.merge(&case.observed);
        out.flat_partitioned.merge(case.flat_partitioned);
        out.flat_hierarchical.merge(case.flat_hierarchical);
        out.flat_tiled.merge(case.flat_tiled);
        if !case.divergences.is_empty() {
            out.divergent.push(DivergentCase {
                spec,
                divergences: case.divergences,
            });
        }
    }
    for (name, tally, floor) in [
        (
            "aggregate.flat_partitioned_agreement",
            out.flat_partitioned,
            ledger.min_flat_partitioned_agreement,
        ),
        (
            "aggregate.flat_hierarchical_agreement",
            out.flat_hierarchical,
            ledger.min_flat_hierarchical_agreement,
        ),
        (
            "aggregate.flat_tiled_agreement",
            out.flat_tiled,
            ledger.min_flat_tiled_agreement,
        ),
    ] {
        out.checks += 1;
        if tally.rate() < floor {
            out.aggregate_violations.push(Divergence {
                check: name.to_string(),
                query: None,
                detail: format!(
                    "agreement {:.3} ({}/{}) below ledger floor {floor:.3}",
                    tally.rate(),
                    tally.agree,
                    tally.total
                ),
            });
        }
    }
    Ok(out)
}

/// A shrunk divergence: the minimal still-diverging spec, its outcome, and
/// how many reduction probes it took to get there.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkResult {
    /// The minimized spec.
    pub spec: CaseSpec,
    /// The outcome of the minimized spec (still divergent).
    pub outcome: CaseOutcome,
    /// Candidate cases evaluated during reduction.
    pub probes: u64,
}

/// Reduction probe budget: shrinking re-runs the full oracle per
/// candidate, so the loop is capped rather than run to a fixed point.
const MAX_SHRINK_PROBES: u64 = 64;

/// Greedily minimizes a divergent case: each round proposes structurally
/// smaller candidates (fewer queries, no faults, less noise, fewer
/// patterns, shorter vectors) and keeps any that still diverges, until no
/// proposal survives or the probe budget runs out.
///
/// # Errors
///
/// Returns [`ConformanceError::InvalidParameter`] when `spec` does not
/// diverge in the first place (nothing to shrink), and propagates harness
/// failures.
pub fn shrink_case(
    spec: &CaseSpec,
    ledger: &ToleranceLedger,
) -> Result<ShrinkResult, ConformanceError> {
    let recorder = spinamm_telemetry::NoopRecorder;
    let outcome = run_case(spec, ledger, &recorder)?;
    if outcome.divergences.is_empty() {
        return Err(ConformanceError::InvalidParameter {
            what: "shrink target does not diverge",
        });
    }
    let mut best = spec.clone();
    let mut best_outcome = outcome;
    let mut probes = 0u64;
    loop {
        let mut improved = false;
        for candidate in shrink_candidates(&best) {
            if probes >= MAX_SHRINK_PROBES {
                return Ok(ShrinkResult {
                    spec: best,
                    outcome: best_outcome,
                    probes,
                });
            }
            if candidate.validate().is_err() {
                continue;
            }
            probes += 1;
            let case = run_case(&candidate, ledger, &recorder)?;
            if !case.divergences.is_empty() {
                best = candidate;
                best_outcome = case;
                improved = true;
                break;
            }
        }
        if !improved {
            return Ok(ShrinkResult {
                spec: best,
                outcome: best_outcome,
                probes,
            });
        }
    }
}

/// Structurally smaller variants of `spec`, most aggressive first.
fn shrink_candidates(spec: &CaseSpec) -> Vec<CaseSpec> {
    let mut candidates = Vec::new();
    if spec.query_count > 1 {
        let mut c = spec.clone();
        c.query_count = (spec.query_count / 2).max(1);
        candidates.push(c);
    }
    if spec.faulted {
        let mut c = spec.clone();
        c.faulted = false;
        candidates.push(c);
    }
    if spec.noise_magnitude > 1 {
        let mut c = spec.clone();
        c.noise_magnitude = 1;
        candidates.push(c);
    }
    if spec.pattern_count > 2 {
        let mut c = spec.clone();
        c.pattern_count = spec.pattern_count - 1;
        if let Some(p) = &mut c.perturbation {
            p.column = p.column.min(c.pattern_count - 1);
        }
        candidates.push(c);
    }
    if spec.vector_len > 4 {
        let mut c = spec.clone();
        c.vector_len = (spec.vector_len / 2).max(4);
        candidates.push(c);
    }
    candidates
}

/// Repro file schema version (`"schema"` field).
const REPRO_SCHEMA: u64 = 1;

/// Serializes a spec plus its observed divergences as a standalone JSON
/// repro suitable for committing under `conformance/corpus/`.
#[must_use]
pub fn repro_to_json(spec: &CaseSpec, divergences: &[Divergence]) -> String {
    let perturbation = match spec.perturbation {
        Some(p) => JsonValue::object([
            ("column", JsonValue::Uint(p.column as u64)),
            ("gain", JsonValue::Num(p.gain)),
        ]),
        None => JsonValue::Null,
    };
    let divs = divergences
        .iter()
        .map(|d| {
            JsonValue::object([
                ("check", JsonValue::Str(d.check.clone())),
                (
                    "query",
                    match d.query {
                        Some(q) => JsonValue::Uint(q as u64),
                        None => JsonValue::Null,
                    },
                ),
                ("detail", JsonValue::Str(d.detail.clone())),
            ])
        })
        .collect();
    JsonValue::object([
        ("schema", JsonValue::Uint(REPRO_SCHEMA)),
        (
            "spec",
            JsonValue::object([
                ("seed", JsonValue::Uint(spec.seed)),
                ("pattern_count", JsonValue::Uint(spec.pattern_count as u64)),
                ("vector_len", JsonValue::Uint(spec.vector_len as u64)),
                ("query_count", JsonValue::Uint(spec.query_count as u64)),
                (
                    "noise_magnitude",
                    JsonValue::Uint(u64::from(spec.noise_magnitude)),
                ),
                ("faulted", JsonValue::Bool(spec.faulted)),
                ("perturbation", perturbation),
            ]),
        ),
        ("divergences", JsonValue::Array(divs)),
    ])
    .render()
}

fn field_u64(obj: &JsonValue, key: &str) -> Result<u64, ConformanceError> {
    obj.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| ConformanceError::Repro(format!("missing or non-integer field `{key}`")))
}

/// Parses a committed repro back into its spec and recorded divergences.
///
/// # Errors
///
/// Returns [`ConformanceError::Repro`] on malformed JSON, a wrong schema
/// version, or missing fields, and [`ConformanceError::InvalidParameter`]
/// when the decoded spec is out of domain.
pub fn repro_from_json(text: &str) -> Result<(CaseSpec, Vec<Divergence>), ConformanceError> {
    let doc = json::parse(text).map_err(ConformanceError::Repro)?;
    if field_u64(&doc, "schema")? != REPRO_SCHEMA {
        return Err(ConformanceError::Repro(format!(
            "unsupported repro schema (expected {REPRO_SCHEMA})"
        )));
    }
    let spec_obj = doc
        .get("spec")
        .ok_or_else(|| ConformanceError::Repro("missing `spec` object".to_string()))?;
    let perturbation = match spec_obj.get("perturbation") {
        None | Some(JsonValue::Null) => None,
        Some(p) => Some(Perturbation {
            column: field_u64(p, "column")? as usize,
            gain: p
                .get("gain")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| ConformanceError::Repro("missing perturbation gain".to_string()))?,
        }),
    };
    let faulted = match spec_obj.get("faulted") {
        Some(JsonValue::Bool(b)) => *b,
        _ => {
            return Err(ConformanceError::Repro(
                "missing `faulted` flag".to_string(),
            ))
        }
    };
    let spec = CaseSpec {
        seed: field_u64(spec_obj, "seed")?,
        pattern_count: field_u64(spec_obj, "pattern_count")? as usize,
        vector_len: field_u64(spec_obj, "vector_len")? as usize,
        query_count: field_u64(spec_obj, "query_count")? as usize,
        noise_magnitude: field_u64(spec_obj, "noise_magnitude")? as u32,
        faulted,
        perturbation,
    };
    spec.validate()?;
    let divergences = doc
        .get("divergences")
        .and_then(JsonValue::as_array)
        .unwrap_or(&[])
        .iter()
        .map(|d| {
            Ok(Divergence {
                check: d
                    .get("check")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| {
                        ConformanceError::Repro("divergence missing `check`".to_string())
                    })?
                    .to_string(),
                query: d
                    .get("query")
                    .and_then(JsonValue::as_u64)
                    .map(|q| q as usize),
                detail: d
                    .get("detail")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
            })
        })
        .collect::<Result<Vec<_>, ConformanceError>>()?;
    Ok((spec, divergences))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinamm_telemetry::{MemoryRecorder, NoopRecorder};

    #[test]
    fn small_corpus_is_clean() {
        let recorder = MemoryRecorder::default();
        let out = run_corpus(
            &CorpusConfig {
                cases: 6,
                base_seed: 0xc0_7b05,
            },
            &ToleranceLedger::DEFAULT,
            &recorder,
        )
        .unwrap();
        assert_eq!(out.cases, 6);
        assert_eq!(out.unwaived_divergences(), 0, "{:?}", out.divergent);
        assert!(out.flat_partitioned.total > 0);
        let counters = recorder.snapshot().counters;
        assert_eq!(counters.get("conformance.cases"), Some(&6));
    }

    /// Calibration sweep for re-tuning [`ToleranceLedger::DEFAULT`]: run
    /// with `--ignored --nocapture` and set each budget to ~2× the printed
    /// maximum.
    #[test]
    #[ignore = "calibration helper, run on demand"]
    fn calibration_sweep() {
        let out = run_corpus(
            &CorpusConfig {
                cases: 240,
                base_seed: 0xca11b8,
            },
            &ToleranceLedger::DEFAULT,
            &NoopRecorder,
        )
        .unwrap();
        println!("observed: {:?}", out.observed);
        println!(
            "flat_partitioned: {:.3} ({}/{})",
            out.flat_partitioned.rate(),
            out.flat_partitioned.agree,
            out.flat_partitioned.total
        );
        println!(
            "flat_hierarchical: {:.3} ({}/{})",
            out.flat_hierarchical.rate(),
            out.flat_hierarchical.agree,
            out.flat_hierarchical.total
        );
        println!(
            "flat_tiled: {:.3} ({}/{})",
            out.flat_tiled.rate(),
            out.flat_tiled.agree,
            out.flat_tiled.total
        );
        println!("divergent cases: {}", out.divergent.len());
        for d in out.divergent.iter().take(5) {
            println!("  {:?}", d);
        }
    }

    #[test]
    fn empty_corpus_is_rejected() {
        assert!(run_corpus(
            &CorpusConfig {
                cases: 0,
                base_seed: 0,
            },
            &ToleranceLedger::DEFAULT,
            &NoopRecorder,
        )
        .is_err());
    }

    fn perturbed_spec() -> CaseSpec {
        CaseSpec {
            seed: 0xd1_4e57,
            pattern_count: 5,
            vector_len: 16,
            query_count: 6,
            noise_magnitude: 2,
            faulted: true,
            perturbation: Some(Perturbation {
                column: 1,
                gain: 0.5,
            }),
        }
    }

    #[test]
    fn shrink_minimizes_a_perturbed_case() {
        let spec = perturbed_spec();
        let shrunk = shrink_case(&spec, &ToleranceLedger::DEFAULT).unwrap();
        assert!(!shrunk.outcome.divergences.is_empty());
        assert!(shrunk.probes > 0);
        // The reducer must strictly simplify at least one axis of this
        // deliberately oversized target.
        assert!(
            shrunk.spec.query_count < spec.query_count
                || !shrunk.spec.faulted
                || shrunk.spec.vector_len < spec.vector_len
                || shrunk.spec.pattern_count < spec.pattern_count,
            "no axis shrank: {:?}",
            shrunk.spec
        );
    }

    #[test]
    fn shrinking_a_clean_case_is_an_error() {
        let mut spec = perturbed_spec();
        spec.perturbation = None;
        spec.faulted = false;
        assert!(shrink_case(&spec, &ToleranceLedger::DEFAULT).is_err());
    }

    #[test]
    fn repro_round_trips() {
        let spec = perturbed_spec();
        let divergences = vec![Divergence {
            check: "bit_identity.batch.driven".to_string(),
            query: Some(2),
            detail: "winner 1 dom 9 vs winner 0 dom 17".to_string(),
        }];
        let text = repro_to_json(&spec, &divergences);
        let (back_spec, back_divs) = repro_from_json(&text).unwrap();
        assert_eq!(back_spec, spec);
        assert_eq!(back_divs, divergences);

        let mut plain = spec;
        plain.perturbation = None;
        let (back_plain, _) = repro_from_json(&repro_to_json(&plain, &[])).unwrap();
        assert_eq!(back_plain, plain);
    }

    #[test]
    fn malformed_repros_are_rejected() {
        assert!(repro_from_json("not json").is_err());
        assert!(repro_from_json("{\"schema\": 99}").is_err());
        assert!(repro_from_json("{\"schema\": 1}").is_err());
    }
}

#[cfg(test)]
mod corpus_generation {
    use super::*;

    /// One-off generator for the committed corpus files; prints repro JSON.
    #[test]
    #[ignore = "corpus generation helper"]
    fn generate_committed_repros() {
        let spec = CaseSpec {
            seed: 0xd1_4e57,
            pattern_count: 5,
            vector_len: 16,
            query_count: 6,
            noise_magnitude: 2,
            faulted: true,
            perturbation: Some(Perturbation {
                column: 1,
                gain: 0.5,
            }),
        };
        let shrunk = shrink_case(&spec, &ToleranceLedger::DEFAULT).unwrap();
        println!("PERTURBED ({} probes):", shrunk.probes);
        println!(
            "{}",
            repro_to_json(&shrunk.spec, &shrunk.outcome.divergences)
        );
        let clean = CaseSpec {
            seed: 0xc1ea4,
            pattern_count: 4,
            vector_len: 10,
            query_count: 3,
            noise_magnitude: 1,
            faulted: true,
            perturbation: None,
        };
        let out = run_case(
            &clean,
            &ToleranceLedger::DEFAULT,
            &spinamm_telemetry::NoopRecorder,
        )
        .unwrap();
        assert!(out.divergences.is_empty(), "{:?}", out.divergences);
        println!("CLEAN:");
        println!("{}", repro_to_json(&clean, &[]));
    }
}
