//! Property-based tests: every seeded fault map must survive a JSON
//! round trip bit-exactly, and lookups must agree with the sampled lists.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use spinamm_faults::{FaultMap, FaultModel};

#[derive(Debug, Clone)]
struct ModelSpec {
    stuck_lrs: f64,
    stuck_hrs: f64,
    open_row: f64,
    short_row: f64,
    open_col: f64,
    short_col: f64,
    spread: f64,
    threshold: f64,
    latch: f64,
}

fn model_spec() -> impl Strategy<Value = ModelSpec> {
    (
        (0.0..0.4f64, 0.0..0.4f64, 0.0..0.3f64),
        (0.0..0.3f64, 0.0..0.3f64, 0.0..0.3f64),
        (0.0..0.5f64, 0.0..0.3f64, 0.0..1e-6f64),
    )
        .prop_map(
            |((stuck_lrs, stuck_hrs, open_row), (short_row, open_col, short_col), rest)| {
                ModelSpec {
                    stuck_lrs,
                    stuck_hrs,
                    open_row,
                    short_row,
                    open_col,
                    short_col,
                    spread: rest.0,
                    threshold: rest.1,
                    latch: rest.2,
                }
            },
        )
}

fn build(spec: &ModelSpec) -> FaultModel {
    let mut m = FaultModel::none();
    m.stuck_lrs_rate = spec.stuck_lrs;
    m.stuck_hrs_rate = spec.stuck_hrs;
    m.open_row_rate = spec.open_row;
    m.short_row_rate = spec.short_row;
    m.open_col_rate = spec.open_col;
    m.short_col_rate = spec.short_col;
    m.spread_sigma = spec.spread;
    m.dwn_threshold_sigma = spec.threshold;
    m.latch_offset_sigma = spec.latch;
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any seeded map round-trips through JSON bit-exactly.
    #[test]
    fn json_round_trip(
        spec in model_spec(),
        rows in 1usize..14,
        cols in 1usize..10,
        seed in proptest::prelude::any::<u64>(),
    ) {
        let map = FaultMap::sample(&build(&spec), rows, cols, seed).unwrap();
        let text = map.to_json_string();
        spinamm_telemetry::json::validate(&text)
            .map_err(|e| TestCaseError::fail(format!("invalid JSON: {e}")))?;
        let back = FaultMap::from_json_str(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}")))?;
        prop_assert_eq!(back, map);
    }

    /// Sampling is a pure function of (model, dims, seed), and per-element
    /// lookups agree with the serialized lists.
    #[test]
    fn deterministic_and_consistent(
        spec in model_spec(),
        rows in 1usize..14,
        cols in 1usize..10,
        seed in proptest::prelude::any::<u64>(),
    ) {
        let model = build(&spec);
        let a = FaultMap::sample(&model, rows, cols, seed).unwrap();
        let b = FaultMap::sample(&model, rows, cols, seed).unwrap();
        prop_assert_eq!(&a, &b);
        let mut hard = 0u64;
        for cell in a.stuck_cells() {
            prop_assert_eq!(a.stuck_at(cell.row, cell.col), Some(cell.kind));
            hard += 1;
        }
        for row in 0..rows {
            if a.row_defect(row).is_some() {
                hard += 1;
            }
        }
        for col in 0..cols {
            if a.col_defect(col).is_some() {
                hard += 1;
            }
            prop_assert!(a.cell_gain(0, col).is_finite());
            prop_assert!(a.threshold_factor(col) > 0.0);
            prop_assert!(a.latch_offset(col).is_finite());
        }
        prop_assert_eq!(a.injected_count(), hard);
    }
}
