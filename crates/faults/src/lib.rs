//! Fault taxonomy and seeded fault-map sampling for crossbar yield studies.
//!
//! The paper argues (§5) that the DTCS scheme tolerates resistance spread
//! and device variation; this crate supplies the machinery to test that
//! claim at scale. A [`FaultModel`] holds per-category defect rates and
//! variation widths; [`FaultMap::sample`] draws one concrete, reproducible
//! defect realization for a `rows × cols` array from a seed. The map is a
//! passive description — `spinamm-crossbar` applies the cell/line faults
//! when stamping conductances and `spinamm-core` applies the neuron-side
//! terms (DWN threshold spread, latch offsets) and runs graceful
//! degradation. Maps serialize to JSON (and back, bit-exactly for finite
//! values) so a failing yield point can be replayed outside the sweep.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, Normal};
use spinamm_telemetry::json::{self, JsonValue};

/// Which resistance extreme a stuck cell is pinned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckKind {
    /// Stuck at low-resistance state (maximum conductance, `g_max`).
    Lrs,
    /// Stuck at high-resistance state (minimum conductance, `g_min`).
    Hrs,
}

/// How a row or column line is broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineDefect {
    /// Line is severed: no current flows (reads as zero conductance /
    /// an undriven row).
    Open,
    /// Line is shorted to its return rail: it loads the array but
    /// contributes nothing to the readout.
    Short,
}

/// Error type for fault model construction and map (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultsError {
    /// A rate or width parameter is out of its valid range.
    InvalidParameter {
        /// Which parameter was rejected.
        what: &'static str,
    },
    /// A serialized fault map failed to parse or had the wrong shape.
    Parse(String),
}

impl std::fmt::Display for FaultsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultsError::InvalidParameter { what } => {
                write!(f, "invalid fault parameter: {what}")
            }
            FaultsError::Parse(why) => write!(f, "fault map parse error: {why}"),
        }
    }
}

impl std::error::Error for FaultsError {}

/// Stochastic fault/variation model for one crossbar tile.
///
/// All `*_rate` fields are per-element probabilities in `[0, 1]`; all
/// `*_sigma` fields are non-negative distribution widths. The model is a
/// plain description — see [`FaultMap::sample`] for the sampling order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability a cell is stuck at the low-resistance state (`g_max`).
    pub stuck_lrs_rate: f64,
    /// Probability a cell is stuck at the high-resistance state (`g_min`).
    pub stuck_hrs_rate: f64,
    /// Probability a row line is open (undriven).
    pub open_row_rate: f64,
    /// Probability a row line is shorted to ground.
    pub short_row_rate: f64,
    /// Probability a column line is open (disconnected from the sense node).
    pub open_col_rate: f64,
    /// Probability a column line is shorted to ground (loads rows, reads 0).
    pub short_col_rate: f64,
    /// Lognormal σ of the per-cell conductance read gain (`exp(N(0, σ))`).
    pub spread_sigma: f64,
    /// Lognormal σ of the per-column DWN switching-threshold factor.
    pub dwn_threshold_sigma: f64,
    /// Gaussian σ of the per-column input-referred latch offset, in amperes.
    pub latch_offset_sigma: f64,
}

impl FaultModel {
    /// A fault-free model: every rate and width zero.
    #[must_use]
    pub fn none() -> Self {
        Self {
            stuck_lrs_rate: 0.0,
            stuck_hrs_rate: 0.0,
            open_row_rate: 0.0,
            short_row_rate: 0.0,
            open_col_rate: 0.0,
            short_col_rate: 0.0,
            spread_sigma: 0.0,
            dwn_threshold_sigma: 0.0,
            latch_offset_sigma: 0.0,
        }
    }

    /// A pure stuck-cell model at total rate `rate`, split evenly between
    /// LRS and HRS pins — the sweep axis of the yield study.
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::InvalidParameter`] when `rate` is outside
    /// `[0, 1]` or non-finite.
    pub fn stuck(rate: f64) -> Result<Self, FaultsError> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(FaultsError::InvalidParameter {
                what: "stuck rate must be in [0, 1]",
            });
        }
        Ok(Self {
            stuck_lrs_rate: rate / 2.0,
            stuck_hrs_rate: rate / 2.0,
            ..Self::none()
        })
    }

    /// Checks every rate is a probability and every width is non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::InvalidParameter`] naming the first bad field.
    pub fn validate(&self) -> Result<(), FaultsError> {
        let rates = [
            (self.stuck_lrs_rate, "stuck_lrs_rate must be in [0, 1]"),
            (self.stuck_hrs_rate, "stuck_hrs_rate must be in [0, 1]"),
            (self.open_row_rate, "open_row_rate must be in [0, 1]"),
            (self.short_row_rate, "short_row_rate must be in [0, 1]"),
            (self.open_col_rate, "open_col_rate must be in [0, 1]"),
            (self.short_col_rate, "short_col_rate must be in [0, 1]"),
        ];
        for (rate, what) in rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(FaultsError::InvalidParameter { what });
            }
        }
        if self.stuck_lrs_rate + self.stuck_hrs_rate > 1.0 {
            return Err(FaultsError::InvalidParameter {
                what: "stuck_lrs_rate + stuck_hrs_rate must be <= 1",
            });
        }
        if self.open_row_rate + self.short_row_rate > 1.0 {
            return Err(FaultsError::InvalidParameter {
                what: "open_row_rate + short_row_rate must be <= 1",
            });
        }
        if self.open_col_rate + self.short_col_rate > 1.0 {
            return Err(FaultsError::InvalidParameter {
                what: "open_col_rate + short_col_rate must be <= 1",
            });
        }
        let widths = [
            (self.spread_sigma, "spread_sigma must be finite and >= 0"),
            (
                self.dwn_threshold_sigma,
                "dwn_threshold_sigma must be finite and >= 0",
            ),
            (
                self.latch_offset_sigma,
                "latch_offset_sigma must be finite and >= 0",
            ),
        ];
        for (width, what) in widths {
            if !width.is_finite() || width < 0.0 {
                return Err(FaultsError::InvalidParameter { what });
            }
        }
        Ok(())
    }
}

/// One stuck cell in a [`FaultMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckCell {
    /// Row index of the stuck cell.
    pub row: usize,
    /// Column index of the stuck cell.
    pub col: usize,
    /// Which extreme the cell is pinned to.
    pub kind: StuckKind,
}

/// A concrete, seeded defect realization for one `rows × cols` array.
///
/// Maps are deterministic in `(model, rows, cols, seed)` and carry their
/// provenance so a serialized map is self-describing. Soft variation
/// vectors (`gains`, `threshold_factors`, `latch_offsets`) are empty when
/// the corresponding model width was zero; accessors then return the
/// identity value.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMap {
    rows: usize,
    cols: usize,
    seed: u64,
    /// Stuck cells sorted by `row * cols + col` for binary-search lookup.
    stuck: Vec<StuckCell>,
    open_rows: Vec<usize>,
    short_rows: Vec<usize>,
    open_cols: Vec<usize>,
    short_cols: Vec<usize>,
    /// Per-cell conductance read gains, row-major (empty ⇒ all 1.0).
    gains: Vec<f64>,
    /// Per-column DWN threshold factors (empty ⇒ all 1.0).
    threshold_factors: Vec<f64>,
    /// Per-column input-referred latch offsets in amperes (empty ⇒ 0 A).
    latch_offsets: Vec<f64>,
}

impl FaultMap {
    /// Draws one defect realization from `model` for a `rows × cols` array.
    ///
    /// Sampling is deterministic per `(model, rows, cols, seed)`: categories
    /// are drawn in a fixed order (stuck cells row-major, then row lines,
    /// column lines, cell gains, column threshold factors, column latch
    /// offsets) from a dedicated `ChaCha8` stream, so the map never touches
    /// a recall session's RNG.
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::InvalidParameter`] for empty dimensions or an
    /// invalid model.
    pub fn sample(
        model: &FaultModel,
        rows: usize,
        cols: usize,
        seed: u64,
    ) -> Result<Self, FaultsError> {
        model.validate()?;
        if rows == 0 || cols == 0 {
            return Err(FaultsError::InvalidParameter {
                what: "fault map dimensions must be non-zero",
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let mut stuck = Vec::new();
        if model.stuck_lrs_rate > 0.0 || model.stuck_hrs_rate > 0.0 {
            for row in 0..rows {
                for col in 0..cols {
                    let u: f64 = rng.gen();
                    if u < model.stuck_lrs_rate {
                        stuck.push(StuckCell {
                            row,
                            col,
                            kind: StuckKind::Lrs,
                        });
                    } else if u < model.stuck_lrs_rate + model.stuck_hrs_rate {
                        stuck.push(StuckCell {
                            row,
                            col,
                            kind: StuckKind::Hrs,
                        });
                    }
                }
            }
        }

        let mut sample_lines = |count: usize, open_rate: f64, short_rate: f64| {
            let mut open = Vec::new();
            let mut short = Vec::new();
            if open_rate > 0.0 || short_rate > 0.0 {
                for index in 0..count {
                    let u: f64 = rng.gen();
                    if u < open_rate {
                        open.push(index);
                    } else if u < open_rate + short_rate {
                        short.push(index);
                    }
                }
            }
            (open, short)
        };
        let (open_rows, short_rows) = sample_lines(rows, model.open_row_rate, model.short_row_rate);
        let (open_cols, short_cols) = sample_lines(cols, model.open_col_rate, model.short_col_rate);

        let lognormal = |sigma: f64, n: usize, rng: &mut ChaCha8Rng| -> Vec<f64> {
            if sigma == 0.0 {
                return Vec::new();
            }
            let dist = Normal::new(0.0, sigma).expect("validated sigma");
            (0..n).map(|_| dist.sample(rng).exp()).collect()
        };
        let gains = lognormal(model.spread_sigma, rows * cols, &mut rng);
        let threshold_factors = lognormal(model.dwn_threshold_sigma, cols, &mut rng);
        let latch_offsets = if model.latch_offset_sigma == 0.0 {
            Vec::new()
        } else {
            let dist = Normal::new(0.0, model.latch_offset_sigma).expect("validated sigma");
            (0..cols).map(|_| dist.sample(&mut rng)).collect()
        };

        Ok(Self {
            rows,
            cols,
            seed,
            stuck,
            open_rows,
            short_rows,
            open_cols,
            short_cols,
            gains,
            threshold_factors,
            latch_offsets,
        })
    }

    /// A map with no defects at all (useful as a neutral baseline).
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::InvalidParameter`] for empty dimensions.
    pub fn pristine(rows: usize, cols: usize, seed: u64) -> Result<Self, FaultsError> {
        Self::sample(&FaultModel::none(), rows, cols, seed)
    }

    /// Adds (or replaces) one stuck cell. Intended for hand-crafted defect
    /// scenarios in tests and what-if studies; sampled maps come from
    /// [`FaultMap::sample`].
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::InvalidParameter`] when the cell lies outside
    /// the array.
    pub fn with_stuck_cell(
        mut self,
        row: usize,
        col: usize,
        kind: StuckKind,
    ) -> Result<Self, FaultsError> {
        if row >= self.rows || col >= self.cols {
            return Err(FaultsError::InvalidParameter {
                what: "stuck cell outside the array",
            });
        }
        let key = row * self.cols + col;
        match self
            .stuck
            .binary_search_by_key(&key, |c| c.row * self.cols + c.col)
        {
            Ok(i) => self.stuck[i].kind = kind,
            Err(i) => self.stuck.insert(i, StuckCell { row, col, kind }),
        }
        Ok(self)
    }

    /// Adds (or replaces) one row-line defect.
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::InvalidParameter`] when `row` lies outside the
    /// array.
    pub fn with_row_defect(mut self, row: usize, defect: LineDefect) -> Result<Self, FaultsError> {
        if row >= self.rows {
            return Err(FaultsError::InvalidParameter {
                what: "row defect outside the array",
            });
        }
        Self::set_line_defect(&mut self.open_rows, &mut self.short_rows, row, defect);
        Ok(self)
    }

    /// Adds (or replaces) one column-line defect.
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::InvalidParameter`] when `col` lies outside the
    /// array.
    pub fn with_col_defect(mut self, col: usize, defect: LineDefect) -> Result<Self, FaultsError> {
        if col >= self.cols {
            return Err(FaultsError::InvalidParameter {
                what: "column defect outside the array",
            });
        }
        Self::set_line_defect(&mut self.open_cols, &mut self.short_cols, col, defect);
        Ok(self)
    }

    fn set_line_defect(
        open: &mut Vec<usize>,
        short: &mut Vec<usize>,
        index: usize,
        defect: LineDefect,
    ) {
        let (insert_into, remove_from) = match defect {
            LineDefect::Open => (open, short),
            LineDefect::Short => (short, open),
        };
        if let Ok(i) = remove_from.binary_search(&index) {
            remove_from.remove(i);
        }
        if let Err(i) = insert_into.binary_search(&index) {
            insert_into.insert(i, index);
        }
    }

    /// Sets the conductance read gain of one cell (materializing the gain
    /// vector at 1.0 if the map had none).
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::InvalidParameter`] when the cell lies outside
    /// the array or `gain` is not finite and positive.
    pub fn with_cell_gain(
        mut self,
        row: usize,
        col: usize,
        gain: f64,
    ) -> Result<Self, FaultsError> {
        if row >= self.rows || col >= self.cols {
            return Err(FaultsError::InvalidParameter {
                what: "gain cell outside the array",
            });
        }
        if !gain.is_finite() || gain <= 0.0 {
            return Err(FaultsError::InvalidParameter {
                what: "cell gain must be finite and positive",
            });
        }
        if self.gains.is_empty() {
            self.gains = vec![1.0; self.rows * self.cols];
        }
        self.gains[row * self.cols + col] = gain;
        Ok(self)
    }

    /// Sets the DWN switching-threshold factor of one column.
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::InvalidParameter`] when `col` lies outside the
    /// array or `factor` is not finite and positive.
    pub fn with_threshold_factor(mut self, col: usize, factor: f64) -> Result<Self, FaultsError> {
        if col >= self.cols {
            return Err(FaultsError::InvalidParameter {
                what: "threshold column outside the array",
            });
        }
        if !factor.is_finite() || factor <= 0.0 {
            return Err(FaultsError::InvalidParameter {
                what: "threshold factor must be finite and positive",
            });
        }
        if self.threshold_factors.is_empty() {
            self.threshold_factors = vec![1.0; self.cols];
        }
        self.threshold_factors[col] = factor;
        Ok(self)
    }

    /// Sets the input-referred latch offset current of one column, in
    /// amperes.
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::InvalidParameter`] when `col` lies outside the
    /// array or `offset` is not finite.
    pub fn with_latch_offset(mut self, col: usize, offset: f64) -> Result<Self, FaultsError> {
        if col >= self.cols {
            return Err(FaultsError::InvalidParameter {
                what: "latch offset column outside the array",
            });
        }
        if !offset.is_finite() {
            return Err(FaultsError::InvalidParameter {
                what: "latch offset must be finite",
            });
        }
        if self.latch_offsets.is_empty() {
            self.latch_offsets = vec![0.0; self.cols];
        }
        self.latch_offsets[col] = offset;
        Ok(self)
    }

    /// Array row count the map was sampled for.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array column count the map was sampled for.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Seed the map was sampled from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The stuck-cell list, sorted row-major.
    #[must_use]
    pub fn stuck_cells(&self) -> &[StuckCell] {
        &self.stuck
    }

    /// Whether (and how) the cell at `(row, col)` is stuck.
    #[must_use]
    pub fn stuck_at(&self, row: usize, col: usize) -> Option<StuckKind> {
        let key = row * self.cols + col;
        self.stuck
            .binary_search_by_key(&key, |c| c.row * self.cols + c.col)
            .ok()
            .map(|i| self.stuck[i].kind)
    }

    /// Defect on row line `row`, if any.
    #[must_use]
    pub fn row_defect(&self, row: usize) -> Option<LineDefect> {
        if self.open_rows.binary_search(&row).is_ok() {
            Some(LineDefect::Open)
        } else if self.short_rows.binary_search(&row).is_ok() {
            Some(LineDefect::Short)
        } else {
            None
        }
    }

    /// Defect on column line `col`, if any.
    #[must_use]
    pub fn col_defect(&self, col: usize) -> Option<LineDefect> {
        if self.open_cols.binary_search(&col).is_ok() {
            Some(LineDefect::Open)
        } else if self.short_cols.binary_search(&col).is_ok() {
            Some(LineDefect::Short)
        } else {
            None
        }
    }

    /// `true` when column `col` contributes nothing to the readout (open or
    /// shorted column line).
    #[must_use]
    pub fn col_disconnected(&self, col: usize) -> bool {
        self.col_defect(col).is_some()
    }

    /// Multiplicative conductance read gain for cell `(row, col)` (1.0 when
    /// the model had no spread).
    #[must_use]
    pub fn cell_gain(&self, row: usize, col: usize) -> f64 {
        if self.gains.is_empty() {
            1.0
        } else {
            self.gains[row * self.cols + col]
        }
    }

    /// Multiplicative DWN switching-threshold factor for column `col`.
    #[must_use]
    pub fn threshold_factor(&self, col: usize) -> f64 {
        if self.threshold_factors.is_empty() {
            1.0
        } else {
            self.threshold_factors[col]
        }
    }

    /// Input-referred latch offset current for column `col`, in amperes.
    #[must_use]
    pub fn latch_offset(&self, col: usize) -> f64 {
        if self.latch_offsets.is_empty() {
            0.0
        } else {
            self.latch_offsets[col]
        }
    }

    /// Number of hard defects in the map (stuck cells plus line defects).
    /// Soft variation (gains, thresholds, offsets) affects every element
    /// and is not counted.
    #[must_use]
    pub fn injected_count(&self) -> u64 {
        (self.stuck.len()
            + self.open_rows.len()
            + self.short_rows.len()
            + self.open_cols.len()
            + self.short_cols.len()) as u64
    }

    /// Serializes the map to a structured JSON value.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let indices = |items: &[usize]| {
            JsonValue::Array(items.iter().map(|&i| JsonValue::Uint(i as u64)).collect())
        };
        let floats =
            |items: &[f64]| JsonValue::Array(items.iter().map(|&v| JsonValue::Num(v)).collect());
        let stuck = JsonValue::Array(
            self.stuck
                .iter()
                .map(|c| {
                    JsonValue::object([
                        ("row", JsonValue::Uint(c.row as u64)),
                        ("col", JsonValue::Uint(c.col as u64)),
                        (
                            "kind",
                            JsonValue::from(match c.kind {
                                StuckKind::Lrs => "lrs",
                                StuckKind::Hrs => "hrs",
                            }),
                        ),
                    ])
                })
                .collect(),
        );
        JsonValue::object([
            ("rows", JsonValue::Uint(self.rows as u64)),
            ("cols", JsonValue::Uint(self.cols as u64)),
            ("seed", JsonValue::Uint(self.seed)),
            ("stuck", stuck),
            ("open_rows", indices(&self.open_rows)),
            ("short_rows", indices(&self.short_rows)),
            ("open_cols", indices(&self.open_cols)),
            ("short_cols", indices(&self.short_cols)),
            ("gains", floats(&self.gains)),
            ("threshold_factors", floats(&self.threshold_factors)),
            ("latch_offsets", floats(&self.latch_offsets)),
        ])
    }

    /// Serializes the map to a compact JSON string.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Reconstructs a map from [`FaultMap::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::Parse`] when a field is missing, mistyped, or
    /// inconsistent with the declared dimensions.
    pub fn from_json(value: &JsonValue) -> Result<Self, FaultsError> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| FaultsError::Parse(format!("missing field '{key}'")))
        };
        let uint = |key: &str| {
            field(key)?
                .as_u64()
                .ok_or_else(|| FaultsError::Parse(format!("field '{key}' must be an integer")))
        };
        let index_list = |key: &str, max: usize| -> Result<Vec<usize>, FaultsError> {
            field(key)?
                .as_array()
                .ok_or_else(|| FaultsError::Parse(format!("field '{key}' must be an array")))?
                .iter()
                .map(|v| {
                    let i = v.as_u64().ok_or_else(|| {
                        FaultsError::Parse(format!("'{key}' entries must be integers"))
                    })? as usize;
                    if i >= max {
                        return Err(FaultsError::Parse(format!(
                            "'{key}' index {i} out of range (< {max})"
                        )));
                    }
                    Ok(i)
                })
                .collect()
        };
        let float_list = |key: &str| -> Result<Vec<f64>, FaultsError> {
            field(key)?
                .as_array()
                .ok_or_else(|| FaultsError::Parse(format!("field '{key}' must be an array")))?
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| {
                        FaultsError::Parse(format!("'{key}' entries must be numbers"))
                    })
                })
                .collect()
        };

        let rows = uint("rows")? as usize;
        let cols = uint("cols")? as usize;
        if rows == 0 || cols == 0 {
            return Err(FaultsError::Parse("dimensions must be non-zero".into()));
        }
        let seed = uint("seed")?;
        let stuck = field("stuck")?
            .as_array()
            .ok_or_else(|| FaultsError::Parse("field 'stuck' must be an array".into()))?
            .iter()
            .map(|entry| {
                let cell = |key: &str| {
                    entry
                        .get(key)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| FaultsError::Parse(format!("stuck entry missing '{key}'")))
                };
                let row = cell("row")? as usize;
                let col = cell("col")? as usize;
                if row >= rows || col >= cols {
                    return Err(FaultsError::Parse(format!(
                        "stuck cell ({row}, {col}) out of range"
                    )));
                }
                let kind = match entry.get("kind").and_then(JsonValue::as_str) {
                    Some("lrs") => StuckKind::Lrs,
                    Some("hrs") => StuckKind::Hrs,
                    other => {
                        return Err(FaultsError::Parse(format!(
                            "stuck kind must be 'lrs' or 'hrs', got {other:?}"
                        )))
                    }
                };
                Ok(StuckCell { row, col, kind })
            })
            .collect::<Result<Vec<_>, _>>()?;
        for pair in stuck.windows(2) {
            if pair[0].row * cols + pair[0].col >= pair[1].row * cols + pair[1].col {
                return Err(FaultsError::Parse(
                    "stuck cells must be strictly row-major sorted".into(),
                ));
            }
        }
        let sorted = |list: &[usize], what: &str| -> Result<(), FaultsError> {
            if list.windows(2).all(|w| w[0] < w[1]) {
                Ok(())
            } else {
                Err(FaultsError::Parse(format!(
                    "'{what}' must be strictly sorted"
                )))
            }
        };
        let open_rows = index_list("open_rows", rows)?;
        let short_rows = index_list("short_rows", rows)?;
        let open_cols = index_list("open_cols", cols)?;
        let short_cols = index_list("short_cols", cols)?;
        sorted(&open_rows, "open_rows")?;
        sorted(&short_rows, "short_rows")?;
        sorted(&open_cols, "open_cols")?;
        sorted(&short_cols, "short_cols")?;
        let sized = |list: Vec<f64>, expect: usize, what: &str| -> Result<Vec<f64>, FaultsError> {
            if list.is_empty() || list.len() == expect {
                Ok(list)
            } else {
                Err(FaultsError::Parse(format!(
                    "'{what}' must be empty or have {expect} entries, got {}",
                    list.len()
                )))
            }
        };
        let gains = sized(float_list("gains")?, rows * cols, "gains")?;
        let threshold_factors = sized(float_list("threshold_factors")?, cols, "threshold_factors")?;
        let latch_offsets = sized(float_list("latch_offsets")?, cols, "latch_offsets")?;

        Ok(Self {
            rows,
            cols,
            seed,
            stuck,
            open_rows,
            short_rows,
            open_cols,
            short_cols,
            gains,
            threshold_factors,
            latch_offsets,
        })
    }

    /// Reconstructs a map from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`FaultsError::Parse`] on syntax or shape errors.
    pub fn from_json_str(input: &str) -> Result<Self, FaultsError> {
        let value = json::parse(input).map_err(FaultsError::Parse)?;
        Self::from_json(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_craft_explicit_maps() {
        let map = FaultMap::pristine(4, 3, 0)
            .unwrap()
            .with_stuck_cell(1, 2, StuckKind::Lrs)
            .unwrap()
            .with_stuck_cell(1, 2, StuckKind::Hrs) // replace
            .unwrap()
            .with_stuck_cell(0, 0, StuckKind::Lrs)
            .unwrap()
            .with_row_defect(3, LineDefect::Open)
            .unwrap()
            .with_col_defect(1, LineDefect::Short)
            .unwrap()
            .with_col_defect(1, LineDefect::Open) // replace short with open
            .unwrap()
            .with_cell_gain(2, 1, 1.25)
            .unwrap()
            .with_threshold_factor(0, 0.9)
            .unwrap()
            .with_latch_offset(2, -1e-7)
            .unwrap();
        assert_eq!(map.stuck_at(1, 2), Some(StuckKind::Hrs));
        assert_eq!(map.stuck_at(0, 0), Some(StuckKind::Lrs));
        assert_eq!(map.stuck_cells().len(), 2);
        assert_eq!(map.row_defect(3), Some(LineDefect::Open));
        assert_eq!(map.col_defect(1), Some(LineDefect::Open));
        assert!(map.col_disconnected(1));
        assert_eq!(map.cell_gain(2, 1), 1.25);
        assert_eq!(map.cell_gain(0, 1), 1.0);
        assert_eq!(map.threshold_factor(0), 0.9);
        assert_eq!(map.latch_offset(2), -1e-7);
        assert_eq!(map.injected_count(), 4);
        // Round-trips like any sampled map.
        let back = FaultMap::from_json_str(&map.to_json_string()).unwrap();
        assert_eq!(back, map);

        let base = FaultMap::pristine(2, 2, 0).unwrap();
        assert!(base.clone().with_stuck_cell(2, 0, StuckKind::Lrs).is_err());
        assert!(base.clone().with_row_defect(2, LineDefect::Open).is_err());
        assert!(base.clone().with_col_defect(2, LineDefect::Short).is_err());
        assert!(base.clone().with_cell_gain(0, 0, f64::NAN).is_err());
        assert!(base.clone().with_cell_gain(0, 0, 0.0).is_err());
        assert!(base.clone().with_threshold_factor(0, -1.0).is_err());
        assert!(base.with_latch_offset(0, f64::INFINITY).is_err());
    }

    #[test]
    fn stuck_preset_splits_evenly() {
        let m = FaultModel::stuck(0.1).unwrap();
        assert_eq!(m.stuck_lrs_rate, 0.05);
        assert_eq!(m.stuck_hrs_rate, 0.05);
        assert_eq!(m.open_col_rate, 0.0);
        m.validate().unwrap();
        assert!(FaultModel::stuck(1.5).is_err());
        assert!(FaultModel::stuck(-0.1).is_err());
        assert!(FaultModel::stuck(f64::NAN).is_err());
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let mut m = FaultModel::none();
        m.spread_sigma = -1.0;
        assert!(m.validate().is_err());
        m = FaultModel::none();
        m.dwn_threshold_sigma = f64::INFINITY;
        assert!(m.validate().is_err());
        m = FaultModel::none();
        m.stuck_lrs_rate = 0.7;
        m.stuck_hrs_rate = 0.7;
        assert!(m.validate().is_err());
        m = FaultModel::none();
        m.open_row_rate = 2.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut m = FaultModel::stuck(0.2).unwrap();
        m.spread_sigma = 0.1;
        m.dwn_threshold_sigma = 0.05;
        m.latch_offset_sigma = 1e-7;
        m.open_row_rate = 0.1;
        m.short_col_rate = 0.1;
        let a = FaultMap::sample(&m, 16, 8, 42).unwrap();
        let b = FaultMap::sample(&m, 16, 8, 42).unwrap();
        assert_eq!(a, b);
        let c = FaultMap::sample(&m, 16, 8, 43).unwrap();
        assert_ne!(a, c, "different seeds should differ at these rates");
    }

    #[test]
    fn pristine_map_is_identity() {
        let map = FaultMap::pristine(4, 3, 7).unwrap();
        assert_eq!(map.injected_count(), 0);
        for row in 0..4 {
            assert!(map.row_defect(row).is_none());
            for col in 0..3 {
                assert!(map.stuck_at(row, col).is_none());
                assert_eq!(map.cell_gain(row, col), 1.0);
            }
        }
        for col in 0..3 {
            assert!(map.col_defect(col).is_none());
            assert!(!map.col_disconnected(col));
            assert_eq!(map.threshold_factor(col), 1.0);
            assert_eq!(map.latch_offset(col), 0.0);
        }
    }

    #[test]
    fn stuck_rate_statistics_are_plausible() {
        let m = FaultModel::stuck(0.10).unwrap();
        let map = FaultMap::sample(&m, 100, 100, 1).unwrap();
        let frac = map.stuck_cells().len() as f64 / 10_000.0;
        assert!((0.07..0.13).contains(&frac), "got {frac}");
        // Lookup agrees with the list.
        for cell in map.stuck_cells() {
            assert_eq!(map.stuck_at(cell.row, cell.col), Some(cell.kind));
        }
        assert_eq!(map.injected_count(), map.stuck_cells().len() as u64);
    }

    #[test]
    fn line_defects_are_exclusive_and_lookup_consistent() {
        let mut m = FaultModel::none();
        m.open_row_rate = 0.3;
        m.short_row_rate = 0.3;
        m.open_col_rate = 0.3;
        m.short_col_rate = 0.3;
        let map = FaultMap::sample(&m, 64, 64, 5).unwrap();
        let mut opens = 0;
        let mut shorts = 0;
        for row in 0..64 {
            match map.row_defect(row) {
                Some(LineDefect::Open) => opens += 1,
                Some(LineDefect::Short) => shorts += 1,
                None => {}
            }
        }
        assert!(opens > 0 && shorts > 0);
        for col in 0..64 {
            let disconnected = map.col_defect(col).is_some();
            assert_eq!(map.col_disconnected(col), disconnected);
        }
    }

    #[test]
    fn soft_variation_has_expected_shape() {
        let mut m = FaultModel::none();
        m.spread_sigma = 0.2;
        m.dwn_threshold_sigma = 0.1;
        m.latch_offset_sigma = 1e-7;
        let map = FaultMap::sample(&m, 10, 6, 9).unwrap();
        for row in 0..10 {
            for col in 0..6 {
                let g = map.cell_gain(row, col);
                assert!(g.is_finite() && g > 0.0);
            }
        }
        for col in 0..6 {
            assert!(map.threshold_factor(col) > 0.0);
            assert!(map.latch_offset(col).is_finite());
        }
        // Soft variation alone injects no hard defects.
        assert_eq!(map.injected_count(), 0);
    }

    #[test]
    fn json_round_trip_exact() {
        let mut m = FaultModel::stuck(0.15).unwrap();
        m.spread_sigma = 0.25;
        m.dwn_threshold_sigma = 0.08;
        m.latch_offset_sigma = 2e-7;
        m.open_row_rate = 0.05;
        m.short_row_rate = 0.05;
        m.open_col_rate = 0.05;
        m.short_col_rate = 0.05;
        let map = FaultMap::sample(&m, 12, 7, 0x51EED).unwrap();
        let text = map.to_json_string();
        spinamm_telemetry::json::validate(&text).expect("fault map JSON must be valid");
        let back = FaultMap::from_json_str(&text).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        let map = FaultMap::pristine(3, 3, 0).unwrap();
        let good = map.to_json_string();
        assert!(FaultMap::from_json_str("{").is_err());
        assert!(FaultMap::from_json_str("null").is_err());
        assert!(FaultMap::from_json_str(&good.replace("\"rows\":3", "\"rows\":0")).is_err());
        assert!(
            FaultMap::from_json_str(&good.replace("\"open_rows\":[]", "\"open_rows\":[9]"))
                .is_err()
        );
        assert!(FaultMap::from_json_str(&good.replace(
            "\"stuck\":[]",
            "\"stuck\":[{\"row\":0,\"col\":0,\"kind\":\"mid\"}]"
        ))
        .is_err());
        assert!(
            FaultMap::from_json_str(&good.replace("\"gains\":[]", "\"gains\":[1.0,2.0]")).is_err()
        );
    }

    #[test]
    fn zero_dimension_maps_are_rejected() {
        assert!(FaultMap::pristine(0, 4, 0).is_err());
        assert!(FaultMap::pristine(4, 0, 0).is_err());
    }
}
