//! Minimal fixed-width table formatting for experiment output.

use spinamm_telemetry::json::JsonValue;
use std::fmt::Write as _;

/// A simple printable table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// The row is normalized to exactly one cell per header — short rows
    /// are padded with empty cells, long rows are trimmed — so no data can
    /// silently vanish at render time. A mismatched width is a caller bug
    /// and panics in debug builds.
    pub fn row(&mut self, cells: &[String]) {
        debug_assert_eq!(
            cells.len(),
            self.headers.len(),
            "table '{}': row has {} cells for {} columns",
            self.title,
            cells.len(),
            self.headers.len()
        );
        let mut row = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate().take(cols) {
                widths[k] = widths[k].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (k, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[k]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (k, cell) in row.iter().enumerate().take(cols) {
                let _ = write!(line, "{:<w$}  ", cell, w = widths[k]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// The table as a structured JSON value: `{title, columns, rows}` with
    /// every cell carried as its rendered string.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let strings = |items: &[String]| {
            JsonValue::Array(items.iter().map(|s| JsonValue::Str(s.clone())).collect())
        };
        JsonValue::object([
            ("title", JsonValue::Str(self.title.clone())),
            ("columns", strings(&self.headers)),
            (
                "rows",
                JsonValue::Array(self.rows.iter().map(|r| strings(r)).collect()),
            ),
        ])
    }
}

/// Formats a value in engineering notation with a unit.
#[must_use]
pub fn eng(value: f64, unit: &str) -> String {
    if !value.is_finite() {
        // Mirror the JSON writer, which nulls non-finite numbers: a bare
        // `inf`/`NaN` cell would corrupt any table a reader tries to parse.
        return format!("n/a {unit}");
    }
    let (scaled, prefix) = if value == 0.0 {
        (0.0, "")
    } else {
        let exp = value.abs().log10().floor() as i32;
        match exp {
            e if e >= 9 => (value / 1e9, "G"),
            e if e >= 6 => (value / 1e6, "M"),
            e if e >= 3 => (value / 1e3, "k"),
            e if e >= 0 => (value, ""),
            e if e >= -3 => (value * 1e3, "m"),
            e if e >= -6 => (value * 1e6, "µ"),
            e if e >= -9 => (value * 1e9, "n"),
            e if e >= -12 => (value * 1e12, "p"),
            e if e >= -15 => (value * 1e15, "f"),
            _ => (value * 1e18, "a"),
        }
    };
    format!("{scaled:.3} {prefix}{unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        assert!(t.is_empty());
        t.row(&["a".to_string(), "1".to_string()]);
        t.row(&["long-name".to_string(), "2".to_string()]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row has 1 cells for 2 columns")]
    fn short_row_panics_in_debug() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["only-one".to_string()]);
    }

    #[test]
    fn rows_are_normalized_to_header_width() {
        // In release builds (no debug assertions) a short row must pad
        // rather than silently shifting columns, and a long row must trim.
        let mut t = Table::new("demo", &["a", "b"]);
        if cfg!(debug_assertions) {
            t.row(&["x".to_string(), "y".to_string()]);
            assert_eq!(t.rows[0].len(), 2);
        } else {
            t.row(&["x".to_string()]);
            t.row(&["1".to_string(), "2".to_string(), "3".to_string()]);
            assert_eq!(t.rows[0], vec!["x".to_string(), String::new()]);
            assert_eq!(t.rows[1].len(), 2);
        }
    }

    #[test]
    fn eng_nulls_non_finite() {
        assert_eq!(eng(f64::NAN, "W"), "n/a W");
        assert_eq!(eng(f64::INFINITY, "J"), "n/a J");
        assert_eq!(eng(f64::NEG_INFINITY, "J"), "n/a J");
        assert_eq!(eng(0.0, "W"), "0.000 W");
    }

    #[test]
    fn json_round_trips_all_cells() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".to_string(), "1".to_string()]);
        t.row(&["b".to_string(), "2".to_string()]);
        let j = t.to_json().render();
        spinamm_telemetry::json::validate(&j).expect("table JSON must parse");
        assert!(j.contains("\"title\":\"demo\""));
        assert!(j.contains("\"columns\":[\"name\",\"value\"]"));
        assert!(j.contains("[\"b\",\"2\"]"));
    }

    #[test]
    fn engineering_notation() {
        assert_eq!(eng(65e-6, "W"), "65.000 µW");
        assert_eq!(eng(5.5e-3, "W"), "5.500 mW");
        assert_eq!(eng(1.6e-9, "J"), "1.600 nJ");
        assert_eq!(eng(100e6, "Hz"), "100.000 MHz");
        assert_eq!(eng(0.0, "A"), "0.000 A");
        assert_eq!(eng(2e-18, "J"), "2.000 aJ");
        assert_eq!(eng(1.5, "V"), "1.500 V");
    }
}
