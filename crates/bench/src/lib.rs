//! Experiment harness: one function per table/figure of the paper.
//!
//! Everything the `experiments` binary prints, the Criterion benches time
//! and the integration tests check flows through this crate, so the
//! regeneration logic exists exactly once. Each experiment takes a
//! [`Scale`] so tests can run miniature versions of the same code paths the
//! full paper-scale reproduction uses.

pub mod experiments;
pub mod report;
pub mod scale;

pub use experiments::*;
pub use report::Table;
pub use scale::Scale;
