//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments [--quick] [--json <path>] [--trace-out <path>]
//!             [fig3a|fig3b|fig5b|fig5c|fig7a|fig8b|fig9a|fig9b|
//!              fig13a|fig13b|table1|table2|hierarchy|ablations|settling|
//!              drift|write-precision|disturb|noise|yield|engine-scale|
//!              conformance|profile|plan|capacity|serve|lifetime|all]
//! ```
//!
//! Without arguments, runs `all` at full (paper) scale. `--quick` runs the
//! miniature configuration used by the test suite. `--json <path>` also
//! writes every selected study's rows — plus a telemetry snapshot from an
//! instrumented parasitic-fidelity recognition run — as one machine-readable
//! JSON report (see README.md, "Observability"). `--trace-out <path>`
//! additionally persists the `profile` study's Chrome trace-event document
//! (loadable in Perfetto / `chrome://tracing`) to `<path>` and its
//! slow-request exemplars to `<path>.exemplars.json`.

use spinamm_bench::report::{eng, Table};
use spinamm_bench::{experiments, Scale};
use spinamm_telemetry::json::{self, JsonValue};
use std::process::ExitCode;

/// One rendered study: the printable text and its structured twin.
struct Section {
    text: String,
    json: JsonValue,
}

impl Section {
    fn table(t: &Table) -> Self {
        Self {
            text: t.render(),
            json: t.to_json(),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|k| args.get(k + 1))
        .cloned();
    if args.iter().any(|a| a == "--json") && json_path.is_none() {
        eprintln!("--json requires a path argument");
        return ExitCode::FAILURE;
    }
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|k| args.get(k + 1))
        .cloned();
    if args.iter().any(|a| a == "--trace-out") && trace_out.is_none() {
        eprintln!("--trace-out requires a path argument");
        return ExitCode::FAILURE;
    }
    let mut skip_next = false;
    let mut wanted: Vec<&str> = Vec::new();
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--json" || a == "--trace-out" {
            skip_next = true;
        } else if !a.starts_with("--") {
            wanted.push(a.as_str());
        }
    }
    let wanted: Vec<&str> = if wanted.is_empty() {
        vec!["all"]
    } else {
        wanted
    };

    let all = wanted.contains(&"all");
    let run = |name: &str| all || wanted.contains(&name);
    let mut failures = 0;
    let mut studies: Vec<TimedStudy> = Vec::new();

    macro_rules! section {
        ($name:literal, $body:expr) => {
            if run($name) {
                let started = std::time::Instant::now();
                match $body {
                    Ok(section) => {
                        let wall_clock_seconds = started.elapsed().as_secs_f64();
                        println!("{}", section.text);
                        studies.push(TimedStudy {
                            name: $name.to_string(),
                            report: section.json,
                            wall_clock_seconds,
                        });
                    }
                    Err(e) => {
                        eprintln!("{}: FAILED: {e}", $name);
                        failures += 1;
                    }
                }
            }
        };
    }

    section!("table2", render_table2());
    section!("fig3a", render_fig3a(&scale));
    section!("fig3b", render_fig3b(&scale));
    section!("fig5b", render_fig5b());
    section!("fig5c", render_fig5c());
    section!("fig7a", render_fig7a());
    section!("fig8b", render_fig8b());
    section!("fig9a", render_fig9a(&scale));
    section!("fig9b", render_fig9b(&scale));
    section!("fig13a", render_fig13a(&scale));
    section!("fig13b", render_fig13b(&scale));
    section!("table1", render_table1(&scale));
    section!("hierarchy", render_hierarchy(&scale));
    section!("ablations", render_ablations(&scale));
    section!("settling", render_settling());
    section!("drift", render_drift(&scale));
    section!("write-precision", render_write_precision(&scale));
    section!("disturb", render_disturb());
    section!("noise", render_noise(&scale));
    section!("yield", render_yield(&scale));
    section!("engine-scale", render_engine_scale(&scale));
    section!("conformance", render_conformance(&scale));
    section!("profile", render_profile(&scale, trace_out.as_deref()));
    section!("plan", render_plan(&scale));
    section!("capacity", render_capacity(&scale));
    section!("serve", render_serve(&scale));
    section!("lifetime", render_lifetime(&scale));

    if let Some(path) = json_path {
        match write_json_report(&path, &scale, quick, studies) {
            Ok(()) => println!("wrote JSON report to {path}"),
            Err(e) => {
                eprintln!("--json {path}: FAILED: {e}");
                failures += 1;
            }
        }
    }

    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One selected study with its structured report and measured runtime.
struct TimedStudy {
    name: String,
    report: JsonValue,
    wall_clock_seconds: f64,
}

/// Assembles and writes the machine-readable report: every rendered study
/// (with its wall-clock runtime) plus a telemetry snapshot from an
/// instrumented recognition workload.
///
/// Schema history: v1 had `studies[].{name, report}`; v2 adds
/// `studies[].wall_clock_seconds` and the top-level
/// `total_wall_clock_seconds`; v3 adds the `yield` study, whose report
/// carries numeric `rows[]` (fault rates, unmitigated/mitigated accuracy
/// and margin, fault counters) instead of rendered table cells; v4 adds
/// the `engine-scale` study (E14) with numeric `rows[]` over the
/// shards × workers × batch sweep plus its `host_cpus` measurement
/// context; v5 adds the `conformance` study (E15), a flat numeric object
/// (cases, checks, `unwaived_divergences`, `injected_caught`, observed
/// divergence maxima, cross-decomposition agreement rates) from the
/// cross-fidelity differential sweep plus committed-corpus replay; v6 adds
/// the `profile` study (E16) with per-worker latency percentile `rows[]`,
/// a span-aggregate `phases[]` table (self/total wall time per pipeline
/// phase) and the `noop_overhead_ratio` / `traced_overhead_ratio` pair
/// that CI gates tracing cost on; v7 adds the `plan` study (E17) with
/// per-fidelity interpreted-vs-compiled-plan speedup `rows[]` (each
/// carrying the f64 `bit_identical` verdict) plus the flat f32-tier audit
/// fields (`f32_unwaived_divergences`, observed maxima, `f32_speedup`)
/// that CI pins alongside the ≥5× driven-plan speedup floor; v8 adds the
/// `capacity` study (E18) with numeric `rows[]` over the
/// templates × k sweep (throughput, energy per query, the
/// `topk_matches_oracle` / `top1_matches_wta` verdicts and the
/// engine-identity pair CI gates on) and extends the `conformance` report
/// with `flat_tiled_agreement`; v9 adds the `serve` study (E19) with one
/// numeric row per tenant of the serving mix (closed-loop saturation qps,
/// open-loop p50/p99/p999/mean latency measured from scheduled arrivals,
/// per-tenant queue-wait p99, the served/429/503 admission split and the
/// `served_identical` bit-identity verdict CI gates on) plus run context
/// (`host_cpus`, `loader_threads`, `total_queries`, `wall_seconds`); v10
/// adds the `lifetime` study (E20) with one object per
/// drift-corner × maintenance arm (fresh/final threshold-respecting
/// accuracy, refresh counts split by trigger, wear-leveled migrations,
/// refresh-energy overhead relative to recall energy — the quantities
/// `check_lifetime` gates on) and log-spaced `points[]` over the virtual
/// traffic horizon (10⁶ queries quick, 10⁹-equivalent full).
fn write_json_report(
    path: &str,
    scale: &Scale,
    quick: bool,
    studies: Vec<TimedStudy>,
) -> Result<(), Box<dyn std::error::Error>> {
    let snapshot = experiments::telemetry_capture(scale)?;
    let total_wall: f64 = studies.iter().map(|s| s.wall_clock_seconds).sum();
    let document = JsonValue::object([
        ("schema_version", JsonValue::Uint(10)),
        (
            "scale",
            JsonValue::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("total_wall_clock_seconds", JsonValue::Num(total_wall)),
        (
            "studies",
            JsonValue::Array(
                studies
                    .into_iter()
                    .map(|s| {
                        JsonValue::object([
                            ("name", JsonValue::Str(s.name)),
                            ("wall_clock_seconds", JsonValue::Num(s.wall_clock_seconds)),
                            ("report", s.report),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("telemetry", snapshot.to_json_value()),
    ]);
    let rendered = document.render();
    json::validate(&rendered)?;
    std::fs::write(path, rendered)?;
    Ok(())
}

type Rendered = Result<Section, spinamm_core::CoreError>;

fn render_table2() -> Rendered {
    let text = format!(
        "== Table 2: design parameters ==\n{}",
        experiments::table2()
    );
    let json = JsonValue::object([
        (
            "title",
            JsonValue::Str("Table 2: design parameters".to_string()),
        ),
        ("text", JsonValue::Str(experiments::table2())),
    ]);
    Ok(Section { text, json })
}

fn render_fig3a(scale: &Scale) -> Rendered {
    let rows = experiments::fig3a(scale)?;
    let mut t = Table::new(
        "Fig 3a: accuracy vs image down-sizing (5-bit pixels)",
        &["size", "pixels", "ideal", "hardware"],
    );
    for r in rows {
        t.row(&[
            r.label,
            format!("{}", r.parameter as usize),
            format!("{:.3}", r.ideal),
            format!("{:.3}", r.hardware),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_fig3b(scale: &Scale) -> Rendered {
    let rows = experiments::fig3b(scale)?;
    let mut t = Table::new(
        "Fig 3b: accuracy vs WTA resolution (16x8 templates)",
        &["resolution", "ideal", "hardware"],
    );
    for r in rows {
        t.row(&[
            r.label,
            format!("{:.3}", r.ideal),
            format!("{:.3}", r.hardware),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_fig5b() -> Rendered {
    let rows = experiments::fig5b(&[0.5, 0.75, 1.0, 1.5, 2.0])?;
    let mut t = Table::new(
        "Fig 5b: DWM critical current vs device scaling",
        &["scale", "analytic Ic", "simulated Ic"],
    );
    for r in rows {
        t.row(&[
            format!("{:.2}x", r.factor),
            eng(r.analytic, "A"),
            eng(r.simulated, "A"),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_fig5c() -> Rendered {
    let rows = experiments::fig5c(&[1.0, 0.75, 0.5], &[1.5, 2.0, 3.0, 4.0, 6.0, 8.0])?;
    let mut t = Table::new(
        "Fig 5c: switching time vs write current",
        &["scale", "current", "t_switch"],
    );
    for r in rows {
        t.row(&[
            format!("{:.2}x", r.factor),
            eng(r.current, "A"),
            r.time
                .map_or_else(|| "no switch".to_string(), |t| eng(t, "s")),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_fig7a() -> Rendered {
    let study = experiments::fig7a(61);
    let mut t = Table::new(
        "Fig 7a: DWN transfer characteristic (hysteresis, Eb = 20 kT)",
        &["leg", "current", "output", "P(switch, thermal)"],
    );
    // Print a decimated view: every 6th point of each leg.
    let half = study.hysteresis.len() / 2;
    for (k, p) in study.hysteresis.iter().enumerate().step_by(6) {
        let leg = if k < half { "up" } else { "down" };
        let thermal = study
            .thermal
            .iter()
            .min_by(|a, b| {
                (a.0 - p.current.0.abs())
                    .abs()
                    .total_cmp(&(b.0 - p.current.0.abs()).abs())
            })
            .map_or(0.0, |x| x.1);
        t.row(&[
            leg.to_string(),
            eng(p.current.0, "A"),
            format!("{:+.0}", p.output),
            format!("{thermal:.3}"),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_fig8b() -> Rendered {
    let curves = experiments::fig8b(&[100.0, 10.0, 2.0, 0.5])?;
    let mut t = Table::new(
        "Fig 8b: DTCS-DAC non-linearity vs row load G_TS",
        &[
            "G_TS / G_T(max)",
            "INL (frac of FS)",
            "I(code 8)",
            "I(code 16)",
            "I(code 31)",
        ],
    );
    for c in curves {
        let at = |code: u32| {
            c.transfer
                .iter()
                .find(|(k, _)| *k == code)
                .map_or(0.0, |(_, i)| *i)
        };
        t.row(&[
            format!("{:.1}", c.load_ratio),
            format!("{:.4}", c.inl),
            eng(at(8), "A"),
            eng(at(16), "A"),
            eng(at(31), "A"),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_fig9a(scale: &Scale) -> Rendered {
    let points = experiments::fig9a(scale, &[0.05, 0.2, 1.0, 5.0, 20.0])?;
    let mut t = Table::new(
        "Fig 9a: detection margin vs memristor conductance window",
        &["window scale (xR)", "R range", "margin (LSB)"],
    );
    for p in points {
        t.row(&[
            format!("{:.2}", p.parameter),
            format!(
                "{} - {}",
                eng(1e3 * p.parameter, "Ω"),
                eng(32e3 * p.parameter, "Ω")
            ),
            format!("{:.2}", p.margin),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_fig9b(scale: &Scale) -> Rendered {
    let points = experiments::fig9b(scale, &[60.0, 30.0, 15.0, 8.0, 4.0])?;
    let mut t = Table::new(
        "Fig 9b: detection margin vs crossbar bias ΔV",
        &["ΔV", "margin (LSB)"],
    );
    for p in points {
        t.row(&[eng(p.parameter, "V"), format!("{:.2}", p.margin)]);
    }
    Ok(Section::table(&t))
}

fn render_fig13a(scale: &Scale) -> Rendered {
    let rows = experiments::fig13a(scale, &[0.25, 0.5, 1.0, 1.5, 2.0])?;
    let mut t = Table::new(
        "Fig 13a: proposed-design power vs DWN threshold",
        &["I_th", "static", "dynamic", "total"],
    );
    for r in rows {
        t.row(&[
            eng(r.threshold, "A"),
            eng(r.static_power, "W"),
            eng(r.dynamic_power, "W"),
            eng(r.total(), "W"),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_fig13b(scale: &Scale) -> Rendered {
    let rows = experiments::fig13b(scale, &[5.0, 10.0, 15.0, 20.0, 25.0])?;
    let mut t = Table::new(
        "Fig 13b: PD-product ratio (MS-CMOS / proposed) vs σVT",
        &["σVT", "ratio [17]", "ratio [18]"],
    );
    for r in rows {
        t.row(&[
            eng(r.sigma_vt, "V"),
            format!("{:.0}", r.ratio_andreou),
            format!("{:.0}", r.ratio_dlugosz),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_table1(scale: &Scale) -> Rendered {
    let rows = experiments::table1(scale, &[5, 4, 3])?;
    let mut t = Table::new(
        "Table 1: power / frequency / energy comparison",
        &[
            "bits",
            "spin-CMOS",
            "[18]",
            "[17]",
            "digital",
            "E ratio [18]",
            "E ratio [17]",
            "E ratio digital",
        ],
    );
    for r in rows {
        t.row(&[
            format!("{}-bit", r.bits),
            eng(r.spin_power, "W"),
            eng(r.dlugosz_power, "W"),
            eng(r.andreou_power, "W"),
            eng(r.digital_power, "W"),
            format!("{:.0}", r.energy_ratios[0]),
            format!("{:.0}", r.energy_ratios[1]),
            format!("{:.0}", r.energy_ratios[2]),
        ]);
    }
    let mut section = Section::table(&t);
    section.text.push_str(&format!(
        "frequencies: spin-CMOS {} | MS-CMOS {} | digital {}\n",
        eng(experiments::SPIN_FREQUENCY, "Hz"),
        eng(experiments::ANALOG_FREQUENCY, "Hz"),
        eng(experiments::DIGITAL_FREQUENCY, "Hz"),
    ));
    if let JsonValue::Object(pairs) = &mut section.json {
        pairs.push((
            "frequencies_hz".to_string(),
            JsonValue::object([
                ("spin_cmos", JsonValue::Num(experiments::SPIN_FREQUENCY)),
                ("ms_cmos", JsonValue::Num(experiments::ANALOG_FREQUENCY)),
                ("digital", JsonValue::Num(experiments::DIGITAL_FREQUENCY)),
            ]),
        ));
    }
    Ok(section)
}

fn render_ablations(scale: &Scale) -> Rendered {
    let rows = experiments::ablation_study(scale)?;
    let mut t = Table::new(
        "Ablations: G_TS equalization and gain calibration",
        &["variant", "accuracy", "margin (LSB)", "tracker agreement"],
    );
    for r in rows {
        t.row(&[
            r.variant,
            format!("{:.3}", r.accuracy),
            format!("{:.2}", r.margin),
            format!("{:.2}", r.tracker_agreement),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_settling() -> Rendered {
    let rows = experiments::settling_study()?;
    let mut t = Table::new(
        "Crossbar RC settling vs the 10 ns SAR cycle",
        &["analysis", "time", "within cycle"],
    );
    for r in rows {
        t.row(&[
            r.label,
            eng(r.time, "s"),
            if r.within_cycle { "yes" } else { "NO" }.to_string(),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_drift(scale: &Scale) -> Rendered {
    let rows = experiments::drift_study(scale, &[1.0, 1e4, 1e6, 1e8])?;
    let mut t = Table::new(
        "Retention: accuracy vs template age (aggressive Ag-Si corner)",
        &["age", "accuracy", "after refresh"],
    );
    for r in rows {
        t.row(&[
            eng(r.age, "s"),
            format!("{:.3}", r.accuracy),
            format!("{:.3}", r.refreshed_accuracy),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_write_precision(scale: &Scale) -> Rendered {
    let rows = experiments::write_precision_study(scale, &[0.003, 0.01, 0.03, 0.1, 0.3])?;
    let mut t = Table::new(
        "Write-precision trade-off (paper §2: why 3 %)",
        &["tolerance", "accuracy", "mean pulses/cell"],
    );
    for r in rows {
        t.row(&[
            format!("{:.1} %", r.tolerance * 100.0),
            format!("{:.3}", r.accuracy),
            format!("{:.1}", r.mean_pulses),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_noise(scale: &Scale) -> Rendered {
    let rows = experiments::noise_robustness_study(scale, &[1, 4, 8, 12, 16])?;
    let mut t = Table::new(
        "Input-noise robustness (norm-equalized random workload)",
        &["jitter magnitude (levels)", "ideal", "hardware"],
    );
    for r in rows {
        t.row(&[
            format!("±{}", r.magnitude),
            format!("{:.3}", r.ideal),
            format!("{:.3}", r.hardware),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_disturb() -> Rendered {
    let rows = experiments::disturb_study(16, 10)?;
    let mut t = Table::new(
        "Programming disturb under V/2 biasing (16x10 array)",
        &[
            "scheme",
            "half-select pulses/cell",
            "max error",
            "corrupted cells",
        ],
    );
    for r in rows {
        t.row(&[
            r.label,
            format!("{:.0}", r.exposure),
            format!("{:.4}", r.max_error),
            format!("{}", r.corrupted_cells),
        ]);
    }
    Ok(Section::table(&t))
}

fn render_yield(scale: &Scale) -> Rendered {
    let rows = experiments::yield_study(scale)?;
    let mut t = Table::new(
        "Yield: accuracy vs stuck-cell rate (unmitigated vs spares+masking)",
        &[
            "stuck rate",
            "accuracy (raw)",
            "accuracy (mitigated)",
            "margin raw (LSB)",
            "margin mit. (LSB)",
            "remapped",
            "masked",
            "unrecoverable",
        ],
    );
    for r in &rows {
        t.row(&[
            format!("{:.0} %", r.fault_rate * 100.0),
            format!("{:.3}", r.unmitigated_accuracy),
            format!("{:.3}", r.mitigated_accuracy),
            format!("{:.2}", r.unmitigated_margin),
            format!("{:.2}", r.mitigated_margin),
            format!("{}", r.remapped),
            format!("{}", r.masked),
            format!("{}", r.unrecoverable),
        ]);
    }
    // The JSON twin keeps numbers numeric so the CI smoke test (and any
    // downstream tooling) can assert on them without parsing table cells.
    let json = JsonValue::object([
        (
            "title",
            JsonValue::Str(
                "Yield: accuracy vs stuck-cell rate (unmitigated vs spares+masking)".to_string(),
            ),
        ),
        (
            "rows",
            JsonValue::Array(
                rows.iter()
                    .map(|r| {
                        JsonValue::object([
                            ("fault_rate", JsonValue::Num(r.fault_rate)),
                            (
                                "unmitigated_accuracy",
                                JsonValue::Num(r.unmitigated_accuracy),
                            ),
                            ("mitigated_accuracy", JsonValue::Num(r.mitigated_accuracy)),
                            ("unmitigated_margin", JsonValue::Num(r.unmitigated_margin)),
                            ("mitigated_margin", JsonValue::Num(r.mitigated_margin)),
                            ("spare_columns", JsonValue::Uint(r.spare_columns as u64)),
                            ("remapped", JsonValue::Uint(r.remapped)),
                            ("masked", JsonValue::Uint(r.masked)),
                            ("unrecoverable", JsonValue::Uint(r.unrecoverable)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Ok(Section {
        text: t.render(),
        json,
    })
}

fn render_engine_scale(scale: &Scale) -> Rendered {
    let study = experiments::engine_scale_study(scale)?;
    let mut t = Table::new(
        "E14: engine scaling (shards x workers x batch, parasitic fidelity)",
        &[
            "shards",
            "workers",
            "batch",
            "queries",
            "wall",
            "throughput",
            "speedup vs 1w",
            "bit-identical",
        ],
    );
    for r in &study.rows {
        t.row(&[
            format!("{}", r.shards),
            format!("{}", r.workers),
            format!("{}", r.batch),
            format!("{}", r.queries),
            eng(r.wall_seconds, "s"),
            format!("{:.1} q/s", r.throughput_qps),
            format!("{:.2}x", r.speedup_vs_1worker),
            if r.bit_identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let mut section = Section::table(&t);
    section
        .text
        .push_str(&format!("host cpus: {}\n", study.host_cpus));
    // The JSON twin keeps numbers numeric (and carries host_cpus) so the
    // CI gate can assert bit-identity without parsing table cells, and so
    // timing columns are interpretable on any measuring host.
    section.json = JsonValue::object([
        (
            "title",
            JsonValue::Str(
                "E14: engine scaling (shards x workers x batch, parasitic fidelity)".to_string(),
            ),
        ),
        ("host_cpus", JsonValue::Uint(study.host_cpus as u64)),
        (
            "rows",
            JsonValue::Array(
                study
                    .rows
                    .iter()
                    .map(|r| {
                        JsonValue::object([
                            ("shards", JsonValue::Uint(r.shards as u64)),
                            ("workers", JsonValue::Uint(r.workers as u64)),
                            ("batch", JsonValue::Uint(r.batch as u64)),
                            ("queries", JsonValue::Uint(r.queries as u64)),
                            ("wall_seconds", JsonValue::Num(r.wall_seconds)),
                            ("throughput_qps", JsonValue::Num(r.throughput_qps)),
                            ("speedup_vs_1worker", JsonValue::Num(r.speedup_vs_1worker)),
                            ("bit_identical", JsonValue::Bool(r.bit_identical)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Ok(section)
}

/// Directory fresh divergence repros are persisted to (uploaded by CI as
/// a failure artifact).
const FRESH_REPRO_DIR: &str = "conformance-repros";

fn render_conformance(scale: &Scale) -> Rendered {
    let study = experiments::conformance_study(scale)?;

    // Persist any fresh shrunk repros so a failing CI run leaves behind
    // committable, replayable evidence.
    if !study.fresh_repros.is_empty() {
        if std::fs::create_dir_all(FRESH_REPRO_DIR).is_ok() {
            for (k, (check, json_text)) in study.fresh_repros.iter().enumerate() {
                let _ = std::fs::write(format!("{FRESH_REPRO_DIR}/{k:02}-{check}.json"), json_text);
            }
        }
        eprintln!(
            "conformance: {} fresh divergence repro(s) written to {FRESH_REPRO_DIR}/",
            study.fresh_repros.len()
        );
    }

    let mut t = Table::new(
        "E15: cross-fidelity conformance (differential oracle + corpus replay)",
        &["metric", "value"],
    );
    t.row(&["fresh cases".to_string(), format!("{}", study.cases)]);
    t.row(&["ledger checks".to_string(), format!("{}", study.checks)]);
    t.row(&[
        "unwaived divergences".to_string(),
        format!("{}", study.unwaived_divergences),
    ]);
    t.row(&[
        "injected divergence caught".to_string(),
        if study.injected_caught { "yes" } else { "NO" }.to_string(),
    ]);
    t.row(&[
        "corpus repros replayed".to_string(),
        format!("{}", study.corpus_repros_replayed),
    ]);
    t.row(&[
        "observed ideal<->driven |dDOM| (LSB)".to_string(),
        format!("{}", study.observed_ideal_driven_dom_lsb),
    ]);
    t.row(&[
        "observed driven<->parasitic |dDOM| (LSB)".to_string(),
        format!("{}", study.observed_driven_parasitic_dom_lsb),
    ]);
    t.row(&[
        "observed permutation |dDOM| (LSB)".to_string(),
        format!("{}", study.observed_permutation_dom_lsb),
    ]);
    t.row(&[
        "flat<->partitioned agreement".to_string(),
        format!("{:.3}", study.flat_partitioned_agreement),
    ]);
    t.row(&[
        "flat<->hierarchical agreement".to_string(),
        format!("{:.3}", study.flat_hierarchical_agreement),
    ]);
    t.row(&[
        "flat<->tiled agreement".to_string(),
        format!("{:.3}", study.flat_tiled_agreement),
    ]);
    let mut section = Section::table(&t);
    // The JSON twin is a flat numeric object (no `rows`): the CI gate
    // asserts on these fields directly, and the agreement rates stay out
    // of the accuracy-cell comparison by construction.
    section.json = JsonValue::object([
        (
            "title",
            JsonValue::Str(
                "E15: cross-fidelity conformance (differential oracle + corpus replay)".to_string(),
            ),
        ),
        ("cases", JsonValue::Uint(study.cases)),
        ("checks", JsonValue::Uint(study.checks)),
        (
            "unwaived_divergences",
            JsonValue::Uint(study.unwaived_divergences),
        ),
        ("injected_caught", JsonValue::Bool(study.injected_caught)),
        (
            "corpus_repros_replayed",
            JsonValue::Uint(study.corpus_repros_replayed),
        ),
        (
            "observed_ideal_driven_dom_lsb",
            JsonValue::Uint(u64::from(study.observed_ideal_driven_dom_lsb)),
        ),
        (
            "observed_driven_parasitic_dom_lsb",
            JsonValue::Uint(u64::from(study.observed_driven_parasitic_dom_lsb)),
        ),
        (
            "observed_permutation_dom_lsb",
            JsonValue::Uint(u64::from(study.observed_permutation_dom_lsb)),
        ),
        (
            "flat_partitioned_agreement",
            JsonValue::Num(study.flat_partitioned_agreement),
        ),
        (
            "flat_hierarchical_agreement",
            JsonValue::Num(study.flat_hierarchical_agreement),
        ),
        (
            "flat_tiled_agreement",
            JsonValue::Num(study.flat_tiled_agreement),
        ),
    ]);
    Ok(section)
}

fn render_profile(scale: &Scale, trace_out: Option<&str>) -> Rendered {
    let study = experiments::profile_study(scale)?;

    if let Some(path) = trace_out {
        let persist = std::fs::write(path, &study.chrome_trace_json)
            .and_then(|()| std::fs::write(format!("{path}.exemplars.json"), &study.exemplars_json));
        match persist {
            Ok(()) => println!("wrote Chrome trace to {path} (+ {path}.exemplars.json)"),
            Err(e) => eprintln!("--trace-out {path}: {e}"),
        }
    }

    let mut t = Table::new(
        "E16: recall-pipeline profile (engine, parasitic fidelity, sample rate 1.0)",
        &[
            "workers",
            "queries",
            "throughput",
            "p50",
            "p90",
            "p99",
            "p99.9",
            "max",
            "queue-wait p99",
            "bit-identical",
        ],
    );
    for r in &study.rows {
        t.row(&[
            format!("{}", r.workers),
            format!("{}", r.queries),
            format!("{:.1} q/s", r.throughput_qps),
            eng(r.p50_us * 1e-6, "s"),
            eng(r.p90_us * 1e-6, "s"),
            eng(r.p99_us * 1e-6, "s"),
            eng(r.p999_us * 1e-6, "s"),
            eng(r.max_us * 1e-6, "s"),
            eng(r.queue_wait_p99_us * 1e-6, "s"),
            if r.bit_identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let mut section = Section::table(&t);

    let mut phases = Table::new(
        "E16 phases: wall time per pipeline phase (widest run, self vs total)",
        &["phase", "count", "total", "self"],
    );
    for p in &study.phases {
        phases.row(&[
            p.name.clone(),
            format!("{}", p.count),
            eng(p.total_us * 1e-6, "s"),
            eng(p.self_us * 1e-6, "s"),
        ]);
    }
    section.text.push('\n');
    section.text.push_str(&phases.render());
    section.text.push_str(&format!(
        "tracing overhead (sequential, min-of-N): disabled {:.3}x | sampling {:.3}x | host cpus {}\n",
        study.noop_overhead_ratio, study.traced_overhead_ratio, study.host_cpus,
    ));

    // The JSON twin keeps numbers numeric so the CI gate can assert on
    // p99 latency and the overhead ratios without parsing table cells.
    section.json = JsonValue::object([
        (
            "title",
            JsonValue::Str(
                "E16: recall-pipeline profile (engine, parasitic fidelity, sample rate 1.0)"
                    .to_string(),
            ),
        ),
        ("host_cpus", JsonValue::Uint(study.host_cpus as u64)),
        (
            "noop_overhead_ratio",
            JsonValue::Num(study.noop_overhead_ratio),
        ),
        (
            "traced_overhead_ratio",
            JsonValue::Num(study.traced_overhead_ratio),
        ),
        (
            "rows",
            JsonValue::Array(
                study
                    .rows
                    .iter()
                    .map(|r| {
                        JsonValue::object([
                            ("workers", JsonValue::Uint(r.workers as u64)),
                            ("queries", JsonValue::Uint(r.queries as u64)),
                            ("wall_seconds", JsonValue::Num(r.wall_seconds)),
                            ("throughput_qps", JsonValue::Num(r.throughput_qps)),
                            ("p50_us", JsonValue::Num(r.p50_us)),
                            ("p90_us", JsonValue::Num(r.p90_us)),
                            ("p99_us", JsonValue::Num(r.p99_us)),
                            ("p999_us", JsonValue::Num(r.p999_us)),
                            ("max_us", JsonValue::Num(r.max_us)),
                            ("queue_wait_p99_us", JsonValue::Num(r.queue_wait_p99_us)),
                            ("sampled", JsonValue::Uint(r.sampled)),
                            ("bit_identical", JsonValue::Bool(r.bit_identical)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "phases",
            JsonValue::Array(
                study
                    .phases
                    .iter()
                    .map(|p| {
                        JsonValue::object([
                            ("name", JsonValue::Str(p.name.clone())),
                            ("count", JsonValue::Uint(p.count)),
                            ("total_us", JsonValue::Num(p.total_us)),
                            ("self_us", JsonValue::Num(p.self_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Ok(section)
}

fn render_plan(scale: &Scale) -> Rendered {
    let study = experiments::plan_study(scale)?;
    let mut t = Table::new(
        "E17: compiled recall plans (128x40, interpreted vs plan, interleaved min-of-N)",
        &[
            "fidelity",
            "queries",
            "interpreted",
            "plan",
            "speedup",
            "bit-identical",
        ],
    );
    for r in &study.rows {
        t.row(&[
            r.fidelity.to_string(),
            format!("{}", r.queries),
            eng(r.interpreted_seconds, "s"),
            eng(r.plan_seconds, "s"),
            format!("{:.1}x", r.speedup),
            if r.bit_identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let mut section = Section::table(&t);
    section.text.push_str(&format!(
        "f32 tier (driven): {} queries, {} unwaived divergences, max |dDOM| {} LSB, \
         max current drift {:.2e}, {:.2}x over f64 plan | host cpus {}\n",
        study.f32_queries,
        study.f32_unwaived_divergences,
        study.f32_max_dom_lsb,
        study.f32_max_current_rel,
        study.f32_speedup,
        study.host_cpus,
    ));

    // The JSON twin keeps numbers numeric so the CI gate can pin the
    // driven-plan speedup floor, the f64 bit-identity verdicts, and the
    // f32 divergence count without parsing table cells.
    section.json = JsonValue::object([
        (
            "title",
            JsonValue::Str(
                "E17: compiled recall plans (128x40, interpreted vs plan, interleaved min-of-N)"
                    .to_string(),
            ),
        ),
        ("host_cpus", JsonValue::Uint(study.host_cpus as u64)),
        ("f32_queries", JsonValue::Uint(study.f32_queries)),
        (
            "f32_unwaived_divergences",
            JsonValue::Uint(study.f32_unwaived_divergences),
        ),
        (
            "f32_max_dom_lsb",
            JsonValue::Uint(u64::from(study.f32_max_dom_lsb)),
        ),
        (
            "f32_max_current_rel",
            JsonValue::Num(study.f32_max_current_rel),
        ),
        ("f32_speedup", JsonValue::Num(study.f32_speedup)),
        (
            "rows",
            JsonValue::Array(
                study
                    .rows
                    .iter()
                    .map(|r| {
                        JsonValue::object([
                            ("fidelity", JsonValue::Str(r.fidelity.to_string())),
                            ("queries", JsonValue::Uint(r.queries as u64)),
                            ("interpreted_seconds", JsonValue::Num(r.interpreted_seconds)),
                            ("plan_seconds", JsonValue::Num(r.plan_seconds)),
                            ("speedup", JsonValue::Num(r.speedup)),
                            ("bit_identical", JsonValue::Bool(r.bit_identical)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Ok(section)
}

fn render_capacity(scale: &Scale) -> Rendered {
    let study = experiments::capacity_study(scale)?;
    let mut t = Table::new(
        "E18: tiled capacity (templates x k, top-k ranked recall)",
        &[
            "templates",
            "k",
            "tiles",
            "compiled",
            "queries",
            "throughput",
            "energy/query",
            "topk==oracle",
            "top1==wta",
            "engine",
        ],
    );
    for r in &study.rows {
        t.row(&[
            format!("{}", r.templates),
            format!("{}", r.k),
            format!("{}", r.tiles),
            format!("{}", r.compiled_tiles),
            format!("{}", r.queries),
            format!("{:.1} q/s", r.throughput_qps),
            eng(r.energy_per_query_j, "J"),
            if r.topk_matches_oracle { "yes" } else { "NO" }.to_string(),
            if r.top1_matches_wta { "yes" } else { "NO" }.to_string(),
            if !r.engine_checked {
                "skipped"
            } else if r.engine_identical {
                "identical"
            } else {
                "DIVERGED"
            }
            .to_string(),
        ]);
    }
    let mut section = Section::table(&t);
    section.text.push_str(&format!(
        "tile capacity: {} | host cpus: {}\n",
        study.tile_capacity, study.host_cpus
    ));
    // The JSON twin keeps numbers numeric so the CI capacity gate can
    // assert the oracle/WTA/engine verdicts and positive throughput at
    // every template count without parsing table cells.
    section.json = JsonValue::object([
        (
            "title",
            JsonValue::Str("E18: tiled capacity (templates x k, top-k ranked recall)".to_string()),
        ),
        ("host_cpus", JsonValue::Uint(study.host_cpus as u64)),
        ("tile_capacity", JsonValue::Uint(study.tile_capacity as u64)),
        (
            "rows",
            JsonValue::Array(
                study
                    .rows
                    .iter()
                    .map(|r| {
                        JsonValue::object([
                            ("templates", JsonValue::Uint(r.templates as u64)),
                            ("k", JsonValue::Uint(r.k as u64)),
                            ("tiles", JsonValue::Uint(r.tiles as u64)),
                            ("compiled_tiles", JsonValue::Uint(r.compiled_tiles as u64)),
                            ("queries", JsonValue::Uint(r.queries as u64)),
                            ("wall_seconds", JsonValue::Num(r.wall_seconds)),
                            ("throughput_qps", JsonValue::Num(r.throughput_qps)),
                            ("energy_per_query_j", JsonValue::Num(r.energy_per_query_j)),
                            (
                                "topk_matches_oracle",
                                JsonValue::Bool(r.topk_matches_oracle),
                            ),
                            ("top1_matches_wta", JsonValue::Bool(r.top1_matches_wta)),
                            ("engine_checked", JsonValue::Bool(r.engine_checked)),
                            ("engine_identical", JsonValue::Bool(r.engine_identical)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Ok(section)
}

fn render_serve(scale: &Scale) -> Rendered {
    let study = experiments::serve_study(scale)?;
    let mut t = Table::new(
        "E19: multi-tenant serving (open-loop load replay)",
        &[
            "tenant",
            "kind",
            "quota",
            "saturation",
            "offered",
            "served",
            "429",
            "503",
            "p50",
            "p99",
            "p999",
            "qwait p99",
            "identical",
        ],
    );
    for r in &study.rows {
        t.row(&[
            r.tenant.clone(),
            r.kind.clone(),
            if r.quota_qps == 0.0 {
                "unlimited".to_string()
            } else {
                format!("{:.0} q/s", r.quota_qps)
            },
            format!("{:.0} q/s", r.saturation_qps),
            format!("{} @ {:.0} q/s", r.offered, r.offered_qps),
            format!("{}", r.served),
            format!("{}", r.rejected_over_quota),
            format!("{}", r.rejected_saturated),
            format!("{:.1} us", r.p50_us),
            format!("{:.1} us", r.p99_us),
            format!("{:.1} us", r.p999_us),
            format!("{:.1} us", r.queue_wait_p99_us),
            if r.served_identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let mut section = Section::table(&t);
    section.text.push_str(&format!(
        "loader threads: {} | total queries: {} | wall: {:.1}s | host cpus: {}\n",
        study.loader_threads, study.total_queries, study.wall_seconds, study.host_cpus
    ));
    // Numeric JSON twin so check_serve can gate on the admission split,
    // percentile ordering and the bit-identity verdicts without parsing
    // table cells.
    section.json = JsonValue::object([
        (
            "title",
            JsonValue::Str("E19: multi-tenant serving (open-loop load replay)".to_string()),
        ),
        ("host_cpus", JsonValue::Uint(study.host_cpus as u64)),
        (
            "loader_threads",
            JsonValue::Uint(study.loader_threads as u64),
        ),
        ("total_queries", JsonValue::Uint(study.total_queries)),
        ("wall_seconds", JsonValue::Num(study.wall_seconds)),
        (
            "rows",
            JsonValue::Array(
                study
                    .rows
                    .iter()
                    .map(|r| {
                        JsonValue::object([
                            ("tenant", JsonValue::Str(r.tenant.clone())),
                            ("kind", JsonValue::Str(r.kind.clone())),
                            ("quota_qps", JsonValue::Num(r.quota_qps)),
                            ("saturation_qps", JsonValue::Num(r.saturation_qps)),
                            ("offered_qps", JsonValue::Num(r.offered_qps)),
                            ("offered", JsonValue::Uint(r.offered)),
                            ("served", JsonValue::Uint(r.served)),
                            (
                                "rejected_over_quota",
                                JsonValue::Uint(r.rejected_over_quota),
                            ),
                            ("rejected_saturated", JsonValue::Uint(r.rejected_saturated)),
                            ("p50_us", JsonValue::Num(r.p50_us)),
                            ("p99_us", JsonValue::Num(r.p99_us)),
                            ("p999_us", JsonValue::Num(r.p999_us)),
                            ("mean_us", JsonValue::Num(r.mean_us)),
                            ("queue_wait_p99_us", JsonValue::Num(r.queue_wait_p99_us)),
                            ("mean_energy_j", JsonValue::Num(r.mean_energy_j)),
                            ("served_identical", JsonValue::Bool(r.served_identical)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Ok(section)
}

fn render_lifetime(scale: &Scale) -> Rendered {
    let study = experiments::lifetime_study(scale)?;
    let mut t = Table::new(
        "E20: lifetime maintenance (virtual-time traffic horizon)",
        &[
            "corner",
            "maintained",
            "fresh",
            "final",
            "refreshes",
            "margin",
            "scheduled",
            "migrations",
            "pulses",
            "refresh energy",
            "overhead",
        ],
    );
    for a in &study.arms {
        let last = a.points.last().expect("non-empty");
        t.row(&[
            a.corner.clone(),
            if a.maintained { "yes" } else { "no" }.to_string(),
            format!("{:.3}", a.fresh_accuracy),
            format!("{:.3}", a.final_accuracy),
            format!("{}", a.refreshes),
            format!("{}", a.margin_refreshes),
            format!("{}", a.scheduled_refreshes),
            format!("{}", a.migrations),
            format!("{}", last.refresh_pulses),
            eng(last.refresh_energy_j, "J"),
            format!("{:.1} %", a.refresh_overhead * 100.0),
        ]);
    }
    let mut section = Section::table(&t);
    section.text.push_str(&format!(
        "horizon: {} queries at {} per query | dom threshold: {} | stuck rate: {:.0} %\n",
        eng(study.horizon_queries, "").trim(),
        eng(study.query_period_s, "s"),
        study.dom_threshold,
        study.fault_rate * 100.0
    ));
    // Numeric JSON twin so check_lifetime can gate on the accuracy-hold /
    // degradation / overhead invariants without parsing table cells.
    section.json = JsonValue::object([
        (
            "title",
            JsonValue::Str("E20: lifetime maintenance (virtual-time traffic horizon)".to_string()),
        ),
        ("query_period_s", JsonValue::Num(study.query_period_s)),
        ("horizon_queries", JsonValue::Num(study.horizon_queries)),
        (
            "dom_threshold",
            JsonValue::Uint(u64::from(study.dom_threshold)),
        ),
        ("fault_rate", JsonValue::Num(study.fault_rate)),
        (
            "arms",
            JsonValue::Array(
                study
                    .arms
                    .iter()
                    .map(|a| {
                        JsonValue::object([
                            ("corner", JsonValue::Str(a.corner.clone())),
                            ("maintained", JsonValue::Bool(a.maintained)),
                            ("fresh_accuracy", JsonValue::Num(a.fresh_accuracy)),
                            ("final_accuracy", JsonValue::Num(a.final_accuracy)),
                            (
                                "recall_energy_per_query_j",
                                JsonValue::Num(a.recall_energy_per_query_j),
                            ),
                            ("refresh_overhead", JsonValue::Num(a.refresh_overhead)),
                            ("checks", JsonValue::Uint(a.checks)),
                            ("refreshes", JsonValue::Uint(a.refreshes)),
                            ("margin_refreshes", JsonValue::Uint(a.margin_refreshes)),
                            (
                                "scheduled_refreshes",
                                JsonValue::Uint(a.scheduled_refreshes),
                            ),
                            ("migrations", JsonValue::Uint(a.migrations)),
                            (
                                "points",
                                JsonValue::Array(
                                    a.points
                                        .iter()
                                        .map(|p| {
                                            JsonValue::object([
                                                ("queries", JsonValue::Num(p.queries)),
                                                (
                                                    "virtual_seconds",
                                                    JsonValue::Num(p.virtual_seconds),
                                                ),
                                                ("accuracy", JsonValue::Num(p.accuracy)),
                                                ("refreshes", JsonValue::Uint(p.refreshes)),
                                                (
                                                    "refresh_pulses",
                                                    JsonValue::Uint(p.refresh_pulses),
                                                ),
                                                (
                                                    "refresh_energy_j",
                                                    JsonValue::Num(p.refresh_energy_j),
                                                ),
                                                ("worn_cells", JsonValue::Uint(p.worn_cells)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Ok(section)
}

fn render_hierarchy(scale: &Scale) -> Rendered {
    let rows = experiments::hierarchy_study(scale, &[1, 2, 4, 8])?;
    let mut t = Table::new(
        "Extension (paper §5): hierarchical / clustered AMM",
        &["clusters", "energy per recognition", "accuracy"],
    );
    for r in rows {
        t.row(&[
            format!("{}", r.clusters),
            eng(r.energy, "J"),
            format!("{:.3}", r.accuracy),
        ]);
    }
    Ok(Section::table(&t))
}
