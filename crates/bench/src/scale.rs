//! Experiment sizing: paper-scale vs miniature (test) runs.

/// How large to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Individuals in the face dataset (paper: 40).
    pub individuals: usize,
    /// Images per individual (paper: 10).
    pub samples_per_individual: usize,
    /// Test queries for workload-based studies.
    pub queries: usize,
    /// Probe inputs for margin studies.
    pub margin_probes: usize,
    /// Monte-Carlo trials for stochastic curves.
    pub trials: usize,
}

impl Scale {
    /// The paper's full configuration: 40 × 10 faces, 400 test images.
    #[must_use]
    pub fn full() -> Self {
        Self {
            individuals: 40,
            samples_per_individual: 10,
            queries: 400,
            margin_probes: 8,
            trials: 200,
        }
    }

    /// A miniature configuration for fast tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            individuals: 8,
            samples_per_individual: 4,
            queries: 32,
            margin_probes: 3,
            trials: 20,
        }
    }

    /// Total test images (`individuals × samples`).
    #[must_use]
    pub fn test_images(&self) -> usize {
        self.individuals * self.samples_per_individual
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper() {
        let s = Scale::full();
        assert_eq!(s.individuals, 40);
        assert_eq!(s.test_images(), 400);
        assert_eq!(Scale::default(), s);
    }

    #[test]
    fn quick_is_smaller() {
        let q = Scale::quick();
        assert!(q.test_images() < Scale::full().test_images());
    }
}
