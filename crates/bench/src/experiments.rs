//! One function per table/figure of the paper's evaluation.
//!
//! See `DESIGN.md` (experiment index) for the mapping between these
//! functions, the paper's figures, and the modules that implement each
//! piece. All functions are deterministic for a given [`Scale`].

use crate::scale::Scale;
use spinamm_circuit::units::{Amps, Seconds, Volts};
use spinamm_cmos::{AnalogWtaModel, DigitalMacAsic, DtcsDac, WtaStyle};
use spinamm_core::amm::{AmmConfig, AssociativeMemoryModule};
use spinamm_core::margin::{self, MarginPoint};
use spinamm_core::params::DesignParams;
use spinamm_core::recall;
use spinamm_core::CoreError;
use spinamm_data::dataset::{DatasetConfig, FaceDataset};
use spinamm_data::image::Resolution;
use spinamm_spin::dynamics::DwDynamics;
use spinamm_spin::geometry::DwGeometry;
use spinamm_spin::neuron::{DomainWallNeuron, NeuronConfig, TransferPoint};
use spinamm_spin::thermal::ThermalModel;

/// Builds the face dataset for a scale.
///
/// # Errors
///
/// Propagates dataset generation errors.
pub fn face_dataset(scale: &Scale) -> Result<FaceDataset, CoreError> {
    Ok(FaceDataset::generate(&DatasetConfig {
        individuals: scale.individuals,
        samples_per_individual: scale.samples_per_individual,
        ..DatasetConfig::default()
    })?)
}

// ---------------------------------------------------------------------------
// Fig. 3 — accuracy vs down-sizing and vs WTA resolution
// ---------------------------------------------------------------------------

/// One row of the Fig. 3 accuracy studies.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Human-readable sweep label (e.g. `16x8` or `5-bit`).
    pub label: String,
    /// The swept quantity as a number (pixel count, or bits).
    pub parameter: f64,
    /// Ideal (infinite-precision software) accuracy.
    pub ideal: f64,
    /// Hardware (AMM) accuracy.
    pub hardware: f64,
}

/// Fig. 3a: classification accuracy vs image down-sizing, at 5-bit pixels.
///
/// # Errors
///
/// Propagates dataset/AMM errors.
pub fn fig3a(scale: &Scale) -> Result<Vec<AccuracyRow>, CoreError> {
    let data = face_dataset(scale)?;
    let resolutions: &[(usize, usize)] = if scale.individuals >= 20 {
        &[(32, 24), (16, 12), (16, 8), (8, 4), (4, 2), (2, 1)]
    } else {
        &[(16, 8), (8, 4), (2, 1)]
    };
    let mut rows = Vec::new();
    for &(w, h) in resolutions {
        let target = Resolution::new(w, h)?;
        let templates = data.templates(target, 5)?;
        let tests = data.test_vectors(target, 5)?;
        let ideal = recall::ideal_accuracy(&templates, &tests)?.accuracy();
        let mut amm = AssociativeMemoryModule::build(&templates, &AmmConfig::default())?;
        let hardware = recall::evaluate_accuracy(&mut amm, &tests)?.accuracy();
        rows.push(AccuracyRow {
            label: format!("{w}x{h}"),
            parameter: (w * h) as f64,
            ideal,
            hardware,
        });
    }
    Ok(rows)
}

/// Fig. 3b: classification accuracy vs WTA resolution at the paper's 16×8
/// operating point.
///
/// # Errors
///
/// Propagates dataset/AMM errors.
pub fn fig3b(scale: &Scale) -> Result<Vec<AccuracyRow>, CoreError> {
    let data = face_dataset(scale)?;
    let target = Resolution::template();
    let templates = data.templates(target, 5)?;
    let tests = data.test_vectors(target, 5)?;
    let ideal = recall::ideal_accuracy(&templates, &tests)?.accuracy();
    let bits_sweep: &[u32] = if scale.individuals >= 20 {
        &[2, 3, 4, 5, 6, 7]
    } else {
        &[3, 5]
    };
    let mut rows = Vec::new();
    for &bits in bits_sweep {
        let mut cfg = AmmConfig::default();
        cfg.params.comparator_bits = bits;
        let mut amm = AssociativeMemoryModule::build(&templates, &cfg)?;
        let hardware = recall::evaluate_accuracy(&mut amm, &tests)?.accuracy();
        rows.push(AccuracyRow {
            label: format!("{bits}-bit"),
            parameter: f64::from(bits),
            ideal,
            hardware,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Fig. 5 — DWM scaling
// ---------------------------------------------------------------------------

/// One row of the Fig. 5b threshold-scaling study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdRow {
    /// Uniform geometric scale factor relative to the 3×20×60 nm³ device.
    pub factor: f64,
    /// Analytic (pinned-equilibrium) threshold current, A.
    pub analytic: f64,
    /// Numerically bisected threshold from the 1-D dynamics, A.
    pub simulated: f64,
}

/// Fig. 5b: critical switching current vs device scaling.
///
/// # Errors
///
/// Propagates dynamics calibration errors.
pub fn fig5b(factors: &[f64]) -> Result<Vec<ThresholdRow>, CoreError> {
    let reference = DwDynamics::paper_reference();
    factors
        .iter()
        .map(|&factor| {
            let d = DwDynamics {
                geometry: DwGeometry::REFERENCE.scaled(factor)?,
                ..reference
            };
            Ok(ThresholdRow {
                factor,
                analytic: d.analytic_threshold().0,
                simulated: d.critical_current()?.0,
            })
        })
        .collect()
}

/// One row of the Fig. 5c switching-time study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingRow {
    /// Geometry scale factor.
    pub factor: f64,
    /// Drive current, A.
    pub current: f64,
    /// Switching time, s (`None` below threshold / horizon).
    pub time: Option<f64>,
}

/// Fig. 5c: switching time vs write current for several device sizes.
///
/// # Errors
///
/// Propagates geometry errors.
pub fn fig5c(factors: &[f64], currents_ua: &[f64]) -> Result<Vec<SwitchingRow>, CoreError> {
    let reference = DwDynamics::paper_reference();
    let mut rows = Vec::new();
    for &factor in factors {
        let d = DwDynamics {
            geometry: DwGeometry::REFERENCE.scaled(factor)?,
            ..reference
        };
        for &iua in currents_ua {
            rows.push(SwitchingRow {
                factor,
                current: iua * 1e-6,
                time: d.switching_time(Amps(iua * 1e-6)).map(|t| t.0),
            });
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Fig. 7a — DWN transfer characteristic
// ---------------------------------------------------------------------------

/// Fig. 7a: the deterministic hysteretic transfer curve plus the
/// thermally smeared switching probability (Eb = 20 kT).
#[derive(Debug, Clone, PartialEq)]
pub struct TransferStudy {
    /// Swept deterministic transfer curve (up then down leg).
    pub hysteresis: Vec<TransferPoint>,
    /// `(current, switching probability)` for the thermal model at a 10 ns
    /// pulse (rising direction from the Down state).
    pub thermal: Vec<(f64, f64)>,
}

/// Runs the Fig. 7a study.
#[must_use]
pub fn fig7a(points: usize) -> TransferStudy {
    let config = NeuronConfig::paper();
    let mut neuron = DomainWallNeuron::new(config);
    let hysteresis = neuron.transfer_curve(Amps(3e-6), points, Seconds(10e-9));
    let thermal_model = ThermalModel::PAPER;
    let thermal = (0..points)
        .map(|k| {
            let i = 3e-6 * k as f64 / (points - 1) as f64;
            (
                i,
                thermal_model.switching_probability(Amps(i), config.threshold, Seconds(10e-9)),
            )
        })
        .collect();
    TransferStudy {
        hysteresis,
        thermal,
    }
}

// ---------------------------------------------------------------------------
// Fig. 8b — DTCS non-linearity
// ---------------------------------------------------------------------------

/// One DAC transfer curve at a given load ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct DacCurve {
    /// Load conductance as a multiple of the DAC's full-scale conductance.
    pub load_ratio: f64,
    /// End-point integral non-linearity (fraction of full scale).
    pub inl: f64,
    /// `(code, current)` transfer points.
    pub transfer: Vec<(u32, f64)>,
}

/// Fig. 8b: DTCS-DAC transfer into progressively heavier loads.
///
/// # Errors
///
/// Propagates DAC design errors.
pub fn fig8b(load_ratios: &[f64]) -> Result<Vec<DacCurve>, CoreError> {
    let dac = DtcsDac::paper_input();
    let g_full = dac.ideal_conductance((1 << dac.bits) - 1)?;
    load_ratios
        .iter()
        .map(|&ratio| {
            let load = spinamm_circuit::units::Siemens(g_full.0 * ratio);
            Ok(DacCurve {
                load_ratio: ratio,
                inl: dac.current_inl(load),
                transfer: dac
                    .transfer_curve(load)
                    .into_iter()
                    .map(|(c, i)| (c, i.0))
                    .collect(),
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 9 — detection margins
// ---------------------------------------------------------------------------

/// Builds the margin-study inputs: face templates and probe vectors.
/// Templates plus labelled probe inputs for the margin studies.
type MarginWorkload = (Vec<Vec<u32>>, Vec<(usize, Vec<u32>)>);

fn margin_workload(scale: &Scale) -> Result<MarginWorkload, CoreError> {
    let data = face_dataset(scale)?;
    let target = Resolution::template();
    let templates = data.templates(target, 5)?;
    let tests = data.test_vectors(target, 5)?;
    // Spread the probes across individuals (one image per person).
    let step = scale.samples_per_individual;
    let probes: Vec<(usize, Vec<u32>)> = tests
        .into_iter()
        .step_by(step)
        .take(scale.margin_probes)
        .collect();
    Ok((templates, probes))
}

/// Fig. 9a: detection margin vs memristor conductance window (full
/// parasitic netlist solve).
///
/// # Errors
///
/// Propagates build/solve errors.
pub fn fig9a(scale: &Scale, window_scales: &[f64]) -> Result<Vec<MarginPoint>, CoreError> {
    let (templates, probes) = margin_workload(scale)?;
    margin::margin_vs_conductance_window(&templates, &probes, window_scales, &AmmConfig::default())
}

/// Fig. 9b: detection margin vs ΔV.
///
/// # Errors
///
/// Propagates build/solve errors.
pub fn fig9b(scale: &Scale, delta_vs_mv: &[f64]) -> Result<Vec<MarginPoint>, CoreError> {
    let (templates, probes) = margin_workload(scale)?;
    let dvs: Vec<Volts> = delta_vs_mv.iter().map(|&mv| Volts(mv * 1e-3)).collect();
    margin::margin_vs_delta_v(&templates, &probes, &dvs, &AmmConfig::default())
}

// ---------------------------------------------------------------------------
// Fig. 13 — power decomposition and variation sensitivity
// ---------------------------------------------------------------------------

/// One row of the Fig. 13a power study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerRow {
    /// DWN threshold, A.
    pub threshold: f64,
    /// Static power (RCM + SAR DAC rails), W.
    pub static_power: f64,
    /// Dynamic power (DWN, latch, digital), W.
    pub dynamic_power: f64,
}

impl PowerRow {
    /// Total power.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.static_power + self.dynamic_power
    }
}

/// Fig. 13a: power of the proposed design vs DWN threshold, decomposed into
/// static and dynamic components.
///
/// # Errors
///
/// Propagates dataset/AMM errors.
pub fn fig13a(scale: &Scale, thresholds_ua: &[f64]) -> Result<Vec<PowerRow>, CoreError> {
    let data = face_dataset(scale)?;
    let target = Resolution::template();
    let templates = data.templates(target, 5)?;
    let probe = data.test_vectors(target, 5)?.swap_remove(0).1;
    thresholds_ua
        .iter()
        .map(|&ua| {
            let mut cfg = AmmConfig::default();
            cfg.params.dwn_threshold = Amps(ua * 1e-6);
            let mut amm = AssociativeMemoryModule::build(&templates, &cfg)?;
            let report = amm.power_report(&probe)?;
            Ok(PowerRow {
                threshold: ua * 1e-6,
                static_power: report.static_power.0,
                dynamic_power: report.dynamic_power.0,
            })
        })
        .collect()
}

/// One row of the Fig. 13b variation study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationRow {
    /// σ_VT of the minimum device, V.
    pub sigma_vt: f64,
    /// Power–delay product ratio MS-CMOS \[17\] / proposed.
    pub ratio_andreou: f64,
    /// Power–delay product ratio MS-CMOS \[18\] / proposed.
    pub ratio_dlugosz: f64,
}

/// Fig. 13b: PD-product ratio of the MS-CMOS designs over the proposed
/// design as transistor variations grow (4 % = 4–5-bit WTA resolution, as
/// in the paper's plot).
///
/// In the proposed WTA "the impact of transistor-variations in the
/// DTCS-DAC is limited to just a single step", so its PD product is taken
/// variation-independent; the MS-CMOS designs pay the quadratic
/// area-for-matching cost.
///
/// # Errors
///
/// Propagates dataset/AMM/model errors.
pub fn fig13b(scale: &Scale, sigmas_mv: &[f64]) -> Result<Vec<VariationRow>, CoreError> {
    let data = face_dataset(scale)?;
    let target = Resolution::template();
    let templates = data.templates(target, 5)?;
    let probe = data.test_vectors(target, 5)?.swap_remove(0).1;
    let mut cfg = AmmConfig::default();
    cfg.params.comparator_bits = 4; // the paper plots at 4 % WTA resolution
    let mut amm = AssociativeMemoryModule::build(&templates, &cfg)?;
    let report = amm.power_report(&probe)?;
    let proposed_pd = report.total_power().0 * report.latency.0;

    sigmas_mv
        .iter()
        .map(|&mv| {
            let sigma = Volts(mv * 1e-3);
            let a =
                AnalogWtaModel::new(WtaStyle::Andreou17, templates.len())?.with_sigma_vt(sigma)?;
            let d =
                AnalogWtaModel::new(WtaStyle::Dlugosz18, templates.len())?.with_sigma_vt(sigma)?;
            Ok(VariationRow {
                sigma_vt: sigma.0,
                ratio_andreou: a.power_delay_product(4).0 / proposed_pd,
                ratio_dlugosz: d.power_delay_product(4).0 / proposed_pd,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 1 — power / frequency / energy comparison
// ---------------------------------------------------------------------------

/// One resolution row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// WTA resolution in bits.
    pub bits: u32,
    /// Proposed spin-CMOS module power, W.
    pub spin_power: f64,
    /// Długosz \[18\] power, W.
    pub dlugosz_power: f64,
    /// Andreou \[17\] power, W.
    pub andreou_power: f64,
    /// 45 nm digital ASIC power, W.
    pub digital_power: f64,
    /// Energy per recognition normalized to the proposed design
    /// (`spin = 1`): `[18]`, `[17]`, digital.
    pub energy_ratios: [f64; 3],
}

/// Operating frequencies of Table 1 (recognition rates).
pub const SPIN_FREQUENCY: f64 = 100e6;
/// MS-CMOS WTA rate of Table 1.
pub const ANALOG_FREQUENCY: f64 = 50e6;
/// Digital ASIC rate of Table 1.
pub const DIGITAL_FREQUENCY: f64 = 2.5e6;

/// Reproduces Table 1 at the given resolutions (paper: 5, 4, 3 bits).
///
/// The spin-CMOS column is *measured* from the simulated module (power of
/// a representative recognition, energy at the pipelined 100 MHz input
/// rate); the MS-CMOS and digital columns come from the calibrated baseline
/// models.
///
/// # Errors
///
/// Propagates dataset/AMM/model errors.
pub fn table1(scale: &Scale, bits_list: &[u32]) -> Result<Vec<Table1Row>, CoreError> {
    let data = face_dataset(scale)?;
    let target = Resolution::template();
    let templates = data.templates(target, 5)?;
    let tests = data.test_vectors(target, 5)?;
    let probes: Vec<&Vec<u32>> = tests.iter().map(|(_, v)| v).take(8).collect();

    bits_list
        .iter()
        .map(|&bits| {
            let mut cfg = AmmConfig::default();
            cfg.params.comparator_bits = bits;
            let mut amm = AssociativeMemoryModule::build(&templates, &cfg)?;
            // Average over several representative inputs, accounting the
            // pipelined operation the paper's 100 MHz Frequency row
            // implies: static rails burn per 10 ns slot, dynamic switching
            // energy is paid in full per recognition.
            let rate = spinamm_circuit::units::Hertz(SPIN_FREQUENCY);
            let mut power = 0.0;
            let mut energy = 0.0;
            for p in &probes {
                let report = amm.power_report(p)?;
                power += report.pipelined_power(rate).0;
                energy += report.pipelined_energy(rate).0;
            }
            let spin_power = power / probes.len() as f64;
            let spin_energy = energy / probes.len() as f64;

            let dlugosz = AnalogWtaModel::new(WtaStyle::Dlugosz18, templates.len())?;
            let andreou = AnalogWtaModel::new(WtaStyle::Andreou17, templates.len())?;
            let digital = DigitalMacAsic::paper(bits)?;
            let dlugosz_power = dlugosz.power(bits).0;
            let andreou_power = andreou.power(bits).0;
            let digital_power = digital.power().0;

            Ok(Table1Row {
                bits,
                spin_power,
                dlugosz_power,
                andreou_power,
                digital_power,
                energy_ratios: [
                    (dlugosz_power / ANALOG_FREQUENCY) / spin_energy,
                    (andreou_power / ANALOG_FREQUENCY) / spin_energy,
                    (digital_power / DIGITAL_FREQUENCY) / spin_energy,
                ],
            })
        })
        .collect()
}

/// Table 2: the canonical design parameters, rendered.
#[must_use]
pub fn table2() -> String {
    DesignParams::PAPER.to_string()
}

// ---------------------------------------------------------------------------
// Extensions (paper §5)
// ---------------------------------------------------------------------------

/// Result of the hierarchical-extension study: energy per recognition of
/// flat vs clustered organisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyRow {
    /// Cluster count (1 = flat).
    pub clusters: usize,
    /// Mean recognition energy, J.
    pub energy: f64,
    /// Recognition accuracy on the probe set.
    pub accuracy: f64,
}

/// Compares flat and hierarchical organisations on the face workload.
///
/// # Errors
///
/// Propagates dataset/AMM errors.
pub fn hierarchy_study(
    scale: &Scale,
    cluster_counts: &[usize],
) -> Result<Vec<HierarchyRow>, CoreError> {
    let data = face_dataset(scale)?;
    let target = Resolution::template();
    let templates = data.templates(target, 5)?;
    let tests = data.test_vectors(target, 5)?;
    let probes: Vec<&(usize, Vec<u32>)> = tests.iter().take(scale.queries.min(40)).collect();

    let mut rows = Vec::new();
    for &k in cluster_counts {
        let (energy, accuracy) = if k <= 1 {
            let mut amm = AssociativeMemoryModule::build(&templates, &AmmConfig::default())?;
            let mut e = 0.0;
            let mut correct = 0;
            for (label, input) in &probes {
                let r = amm.recall(input)?;
                e += r.energy.total().0;
                if r.raw_winner == *label {
                    correct += 1;
                }
            }
            (
                e / probes.len() as f64,
                correct as f64 / probes.len() as f64,
            )
        } else {
            let mut h = spinamm_core::hierarchy::HierarchicalAmm::build(
                &templates,
                k,
                &AmmConfig::default(),
            )?;
            let mut e = 0.0;
            let mut correct = 0;
            for (label, input) in &probes {
                let r = h.recall(input)?;
                e += r.energy.total().0;
                if r.winner == *label {
                    correct += 1;
                }
            }
            (
                e / probes.len() as f64,
                correct as f64 / probes.len() as f64,
            )
        };
        rows.push(HierarchyRow {
            clusters: k.max(1),
            energy,
            accuracy,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Ablations — the design choices DESIGN.md calls out
// ---------------------------------------------------------------------------

/// One ablation variant's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Recognition accuracy on the probe set.
    pub accuracy: f64,
    /// Mean signed margin, LSB units.
    pub margin: f64,
    /// Fraction of probes where the hardware tracker singled out the same
    /// winner as the digital scan.
    pub tracker_agreement: f64,
}

/// Ablation study over the face workload: baseline vs no-G_TS-equalization
/// vs no-gain-calibration.
///
/// # Errors
///
/// Propagates dataset/AMM errors.
pub fn ablation_study(scale: &Scale) -> Result<Vec<AblationRow>, CoreError> {
    let data = face_dataset(scale)?;
    let target = Resolution::template();
    let templates = data.templates(target, 5)?;
    let tests = data.test_vectors(target, 5)?;
    let probes: Vec<&(usize, Vec<u32>)> = tests.iter().take(scale.queries.min(100)).collect();

    let variants: [(&str, AmmConfig); 3] = [
        ("baseline", AmmConfig::default()),
        (
            "no G_TS equalization",
            AmmConfig {
                equalize_rows: false,
                ..AmmConfig::default()
            },
        ),
        (
            "no gain calibration",
            AmmConfig {
                gain_calibration: false,
                ..AmmConfig::default()
            },
        ),
    ];

    variants
        .iter()
        .map(|(name, cfg)| {
            let mut amm = AssociativeMemoryModule::build(&templates, cfg)?;
            let lsb = amm.lsb_current();
            let mut correct = 0usize;
            let mut margin = 0.0;
            let mut agree = 0usize;
            for (label, input) in &probes {
                let r = amm.recall(input)?;
                if r.raw_winner == *label {
                    correct += 1;
                }
                margin +=
                    spinamm_core::margin::labelled_margin_lsb(&r.column_currents, *label, lsb);
                if r.tracked_winner == Some(r.raw_winner) {
                    agree += 1;
                }
            }
            let n = probes.len() as f64;
            Ok(AblationRow {
                variant: (*name).to_string(),
                accuracy: correct as f64 / n,
                margin: margin / n,
                tracker_agreement: agree as f64 / n,
            })
        })
        .collect()
}

/// One row of the write-precision study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WritePrecisionRow {
    /// Write tolerance (relative band).
    pub tolerance: f64,
    /// Recognition accuracy.
    pub accuracy: f64,
    /// Mean programming pulses per cell (the energy-cost proxy the paper
    /// cites when justifying 3 % over 0.3 %).
    pub mean_pulses: f64,
}

/// Write-precision ablation: recognition accuracy and programming cost vs
/// memristor write tolerance. The paper picks 3 % ("equivalent to 5-bits")
/// noting that tighter precision raises write energy steeply — this study
/// shows both sides of that trade.
///
/// # Errors
///
/// Propagates dataset/AMM errors.
pub fn write_precision_study(
    scale: &Scale,
    tolerances: &[f64],
) -> Result<Vec<WritePrecisionRow>, CoreError> {
    use rand::SeedableRng;
    use spinamm_memristor::{DeviceLimits, LevelMap, Memristor, WriteScheme};

    let data = face_dataset(scale)?;
    let target = Resolution::template();
    let templates = data.templates(target, 5)?;
    let tests = data.test_vectors(target, 5)?;
    let probes: Vec<&(usize, Vec<u32>)> = tests.iter().take(scale.queries.min(60)).collect();

    tolerances
        .iter()
        .map(|&tol| {
            let mut cfg = AmmConfig::default();
            cfg.params.write_tolerance = tol;
            let mut amm = AssociativeMemoryModule::build(&templates, &cfg)?;
            let mut correct = 0usize;
            for (label, input) in &probes {
                if amm.recall(input)?.raw_winner == *label {
                    correct += 1;
                }
            }
            // Programming cost, measured on a representative cell sweep.
            let scheme = WriteScheme::new(tol)?;
            let map = LevelMap::new(DeviceLimits::PAPER, 5)?;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x3117);
            let mut pulses = 0u32;
            let trials = 64u32;
            for k in 0..trials {
                let mut cell = Memristor::new(DeviceLimits::PAPER);
                let level = k % 32;
                pulses += cell
                    .program(map.conductance(level)?, &scheme, &mut rng)?
                    .pulses;
            }
            Ok(WritePrecisionRow {
                tolerance: tol,
                accuracy: correct as f64 / probes.len() as f64,
                mean_pulses: f64::from(pulses) / f64::from(trials),
            })
        })
        .collect()
}

/// One row of the settling study.
#[derive(Debug, Clone, PartialEq)]
pub struct SettlingRow {
    /// Description of the analysis point.
    pub label: String,
    /// Settling (or Elmore) time, seconds.
    pub time: f64,
    /// Whether it fits inside the 10 ns SAR cycle.
    pub within_cycle: bool,
}

/// RC settling study of the crossbar wiring: a transient solve of a
/// medium array plus Elmore extrapolation to the paper's 128×40 size —
/// quantifying the timing budget behind Table 2's 100 MHz row.
///
/// # Errors
///
/// Propagates build/solve errors.
pub fn settling_study() -> Result<Vec<SettlingRow>, CoreError> {
    use spinamm_circuit::units::{Ohms, Seconds, Siemens};
    use spinamm_crossbar::{CrossbarArray, CrossbarGeometry, RowDrive, SettlingStudy};
    use spinamm_memristor::DeviceLimits;

    let cycle = 10e-9;
    let study = SettlingStudy::new(CrossbarGeometry::PAPER);
    let mut rows = Vec::new();

    // Transient verification at a medium size (dense-solvable).
    let size = (12usize, 6usize);
    let mut array =
        CrossbarArray::new(size.0, size.1, DeviceLimits::PAPER).map_err(CoreError::Crossbar)?;
    for i in 0..size.0 {
        for j in 0..size.1 {
            let g = DeviceLimits::PAPER.g_min().0
                + ((i * 7 + j * 3) % 32) as f64 / 31.0
                    * (DeviceLimits::PAPER.g_max().0 - DeviceLimits::PAPER.g_min().0);
            array
                .set_conductance(i, j, Siemens(g))
                .map_err(CoreError::Crossbar)?;
        }
    }
    array.equalize_rows(None).map_err(CoreError::Crossbar)?;
    let drives = vec![
        RowDrive::SourceConductance {
            g: Siemens(4e-4),
            supply: spinamm_circuit::units::Volts(0.030),
        };
        size.0
    ];
    let report = study
        .transient(&array, &drives, Seconds(200e-12), 400)
        .map_err(CoreError::Crossbar)?;
    let t = report.max_settling.map_or(f64::NAN, |t| t.0);
    rows.push(SettlingRow {
        label: format!("transient, {}x{} array (0.1 % band)", size.0, size.1),
        time: t,
        within_cycle: report.settles_within(Seconds(cycle)),
    });

    // Elmore extrapolations.
    for (cells, label) in [
        (40usize, "row bar, 40 cells"),
        (128, "column bar, 128 cells"),
    ] {
        let tau = study.elmore_estimate(cells, Ohms(3_000.0)).0;
        rows.push(SettlingRow {
            label: format!("Elmore 10τ, {label} (paper scale)"),
            time: 10.0 * tau,
            within_cycle: 10.0 * tau <= cycle,
        });
    }
    Ok(rows)
}

/// One row of the drift (retention) study.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRow {
    /// Storage age before evaluation, seconds.
    pub age: f64,
    /// Accuracy after aging.
    pub accuracy: f64,
    /// Accuracy after a reprogramming refresh.
    pub refreshed_accuracy: f64,
}

/// Retention study: recognition accuracy vs template age under an
/// aggressive Ag-Si drift corner, with and without a reprogramming
/// refresh — quantifying the paper's implicit "non-volatile storage"
/// assumption.
///
/// # Errors
///
/// Propagates dataset/AMM errors.
pub fn drift_study(scale: &Scale, ages: &[f64]) -> Result<Vec<DriftRow>, CoreError> {
    use rand::SeedableRng;
    use spinamm_circuit::units::Seconds;
    use spinamm_memristor::DriftModel;

    let data = face_dataset(scale)?;
    let target = Resolution::template();
    let templates = data.templates(target, 5)?;
    let tests = data.test_vectors(target, 5)?;
    let probes: Vec<&(usize, Vec<u32>)> = tests.iter().take(scale.queries.min(60)).collect();
    let model = DriftModel::AGGRESSIVE;

    let accuracy_of = |amm: &mut AssociativeMemoryModule| -> Result<f64, CoreError> {
        let mut correct = 0usize;
        for (label, input) in &probes {
            if amm.recall(input)?.raw_winner == *label {
                correct += 1;
            }
        }
        Ok(correct as f64 / probes.len() as f64)
    };

    ages.iter()
        .map(|&age| {
            // Aged module: build, age the array in place, re-measure.
            let mut amm = AssociativeMemoryModule::build(&templates, &AmmConfig::default())?;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xd21f7 ^ age.to_bits());
            amm.age_array(Seconds(age), &model, &mut rng)?;
            let accuracy = accuracy_of(&mut amm)?;
            // Refresh = rebuild (reprogram every cell).
            let mut fresh = AssociativeMemoryModule::build(&templates, &AmmConfig::default())?;
            let refreshed_accuracy = accuracy_of(&mut fresh)?;
            Ok(DriftRow {
                age,
                accuracy,
                refreshed_accuracy,
            })
        })
        .collect()
}

/// One row of the programming-disturb study.
#[derive(Debug, Clone, PartialEq)]
pub struct DisturbStudyRow {
    /// Scheme / margin label.
    pub label: String,
    /// Half-select pulses per stored cell.
    pub exposure: f64,
    /// Worst-case relative conductance error after programming.
    pub max_error: f64,
    /// Cells pushed outside the 3 % write band.
    pub corrupted_cells: usize,
}

/// Half-select disturb study: programs a crossbar under V/2 biasing with a
/// safe margin (V_w/2 < V_th), a violated margin, and 1T1R isolation — the
/// quantified version of the crossbar-write-scheme claim the paper takes
/// from refs [1-2].
///
/// # Errors
///
/// Propagates crossbar errors.
pub fn disturb_study(rows: usize, cols: usize) -> Result<Vec<DisturbStudyRow>, CoreError> {
    use spinamm_crossbar::{ArrayProgrammer, BiasScheme, CrossbarArray};
    use spinamm_memristor::{DeviceLimits, LevelMap};

    let map = LevelMap::new(DeviceLimits::PAPER, 5)?;
    let targets: Vec<u32> = (0..rows * cols).map(|k| (k * 11 % 32) as u32).collect();
    let variants = [
        (
            "V/2, safe margin (Vw/2 < Vth)",
            ArrayProgrammer::safe(BiasScheme::HalfVoltage),
        ),
        (
            "V/2, violated margin (Vw/2 > Vth)",
            ArrayProgrammer::unsafe_margin(BiasScheme::HalfVoltage),
        ),
        ("1T1R isolated", ArrayProgrammer::safe(BiasScheme::Isolated)),
    ];
    variants
        .iter()
        .map(|(label, programmer)| {
            let mut array =
                CrossbarArray::new(rows, cols, DeviceLimits::PAPER).map_err(CoreError::Crossbar)?;
            let report = programmer
                .program(&mut array, &targets, &map, 0.03)
                .map_err(CoreError::Crossbar)?;
            Ok(DisturbStudyRow {
                label: (*label).to_string(),
                exposure: report.half_select_pulses as f64 / (rows * cols) as f64,
                max_error: report.max_error,
                corrupted_cells: report.cells_out_of_tolerance,
            })
        })
        .collect()
}

/// One row of the input-noise robustness study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseRow {
    /// Perturbation magnitude in levels (every element jittered).
    pub magnitude: u32,
    /// Ideal (software) accuracy.
    pub ideal: f64,
    /// Hardware accuracy.
    pub hardware: f64,
}

/// Input-noise robustness: recognition accuracy vs query perturbation
/// magnitude on a norm-equalized random workload — the generalization axis
/// the paper's "training accuracy" protocol does not probe. Hardware
/// degrades before software because quantization and analog noise eat the
/// shrinking margins first.
///
/// # Errors
///
/// Propagates workload/AMM errors.
pub fn noise_robustness_study(
    scale: &Scale,
    magnitudes: &[u32],
) -> Result<Vec<NoiseRow>, CoreError> {
    use spinamm_data::workload::{PatternWorkload, WorkloadConfig};

    magnitudes
        .iter()
        .map(|&magnitude| {
            let w = PatternWorkload::generate(&WorkloadConfig {
                pattern_count: 20,
                vector_len: 96,
                bits: 5,
                query_count: scale.queries.clamp(60, 80),
                query_noise: 1.0,
                noise_magnitude: magnitude.max(1),
                similarity: 0.85,
                seed: 0x401e,
            })?;
            let ideal = recall::ideal_accuracy(&w.patterns, &w.queries)?.accuracy();
            let mut amm = AssociativeMemoryModule::build(&w.patterns, &AmmConfig::default())?;
            let hardware = recall::evaluate_accuracy(&mut amm, &w.queries)?.accuracy();
            Ok(NoiseRow {
                magnitude,
                ideal,
                hardware,
            })
        })
        .collect()
}

/// One point of the yield study: a stuck-cell rate with and without the
/// graceful-degradation pass (spare-column remapping + masking).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldRow {
    /// Total stuck-cell rate (split evenly between LRS and HRS pins).
    pub fault_rate: f64,
    /// Accuracy with no mitigation (no spares; faults land where they land).
    pub unmitigated_accuracy: f64,
    /// Accuracy with spares provisioned and the degradation pass applied.
    pub mitigated_accuracy: f64,
    /// Mean labelled detection margin (LSB), unmitigated.
    pub unmitigated_margin: f64,
    /// Mean labelled detection margin (LSB), mitigated.
    pub mitigated_margin: f64,
    /// Spare columns provisioned for the mitigated module.
    pub spare_columns: usize,
    /// Templates remapped to spares (mitigated module).
    pub remapped: u64,
    /// Columns masked out of the WTA (mitigated module).
    pub masked: u64,
    /// Cells that never verified within the retry budget (mitigated).
    pub unrecoverable: u64,
}

/// Yield study: recognition accuracy and margin vs stuck-cell rate at the
/// paper's 16×8 operating point, unmitigated vs mitigated (spare-column
/// remapping + column masking, see [`spinamm_core::degrade`]). The rate-0
/// unmitigated point is bit-identical to the [`fig3a`] 16×8 row — injecting
/// a pristine map changes nothing — which the CI smoke test asserts.
///
/// # Errors
///
/// Propagates dataset/AMM/fault-model errors.
pub fn yield_study(scale: &Scale) -> Result<Vec<YieldRow>, CoreError> {
    use spinamm_core::degrade::{DegradationPolicy, FaultReport};
    use spinamm_faults::{FaultMap, FaultModel};

    let data = face_dataset(scale)?;
    let target = Resolution::template();
    let templates = data.templates(target, 5)?;
    let tests = data.test_vectors(target, 5)?;
    let rows = templates[0].len();
    let cols = templates.len();
    // A quarter extra columns: enough pool depth that the min-predicted-
    // error pick beats the typical faulty column.
    let spares = cols.div_ceil(4);
    let policy = DegradationPolicy::default();
    let queries: Vec<&Vec<u32>> = tests.iter().map(|(_, v)| v).collect();

    let run = |spare_columns: usize, map: FaultMap| -> Result<(f64, f64, FaultReport), CoreError> {
        let cfg = AmmConfig {
            spare_columns,
            ..AmmConfig::default()
        };
        let mut amm = AssociativeMemoryModule::build(&templates, &cfg)?;
        let report = amm.inject_faults(map, &policy)?;
        let lsb = amm.lsb_current();
        let results = amm.recall_batch(&queries)?;
        let mut correct = 0usize;
        let mut margin = 0.0;
        for (r, (label, _)) in results.iter().zip(&tests) {
            if r.raw_winner == *label {
                correct += 1;
            }
            // The labelled column may have moved to a spare.
            margin += spinamm_core::margin::labelled_margin_lsb(
                &r.column_currents,
                amm.template_columns()[*label],
                lsb,
            );
        }
        let n = results.len() as f64;
        Ok((correct as f64 / n, margin / n, report))
    };

    [0.0, 0.01, 0.05, 0.10]
        .iter()
        .enumerate()
        .map(|(k, &rate)| {
            let model = FaultModel::stuck(rate)?;
            let seed = 0x51EED + k as u64;
            let (una, unm, _) = run(0, FaultMap::sample(&model, rows, cols, seed)?)?;
            let (mit, mim, rep) =
                run(spares, FaultMap::sample(&model, rows, cols + spares, seed)?)?;
            Ok(YieldRow {
                fault_rate: rate,
                unmitigated_accuracy: una,
                mitigated_accuracy: mit,
                unmitigated_margin: unm,
                mitigated_margin: mim,
                spare_columns: spares,
                remapped: rep.remapped,
                masked: rep.masked,
                unrecoverable: rep.unrecoverable,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E14 — engine scale study (shards × workers × batch)
// ---------------------------------------------------------------------------

/// One cell of the engine scale sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineScaleRow {
    /// RCM banks the rows are partitioned across.
    pub shards: usize,
    /// Engine worker threads running the RNG-free evaluation phase.
    pub workers: usize,
    /// Submission window: queries in flight before waiting (also the
    /// engine's queue capacity).
    pub batch: usize,
    /// Queries served.
    pub queries: usize,
    /// Wall time for the whole submission/wait loop.
    pub wall_seconds: f64,
    /// Served queries per second.
    pub throughput_qps: f64,
    /// Throughput relative to the 1-worker cell of the same
    /// (shards, batch) group. On a single-CPU host this hovers near 1;
    /// worker scaling manifests with real cores.
    pub speedup_vs_1worker: f64,
    /// Whether every engine response was bit-identical to a sequential
    /// recall of the same deployment in submission order. This is the
    /// invariant CI gates on; the timing columns are informational.
    pub bit_identical: bool,
}

/// The engine scale study: rows plus the host parallelism they were
/// measured on (timing columns are meaningless without it).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineScaleStudy {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_cpus: usize,
    /// One row per (shards, workers, batch) cell.
    pub rows: Vec<EngineScaleRow>,
}

/// E14: serves a parasitic-fidelity workload through the sharded recall
/// engine across a shards × workers × batch sweep, checking every cell's
/// responses bit-for-bit against sequential recall.
///
/// # Errors
///
/// Propagates workload/AMM/engine errors.
pub fn engine_scale_study(scale: &Scale) -> Result<EngineScaleStudy, CoreError> {
    use spinamm_core::amm::Fidelity;
    use spinamm_core::partition::PartitionedAmm;
    use spinamm_data::workload::{PatternWorkload, WorkloadConfig};
    use spinamm_engine::{Deployment, EngineConfig, EngineError, EngineResponse, RecallEngine};

    let w = PatternWorkload::generate(&WorkloadConfig {
        pattern_count: 6,
        vector_len: 16,
        bits: 5,
        query_count: scale.queries.clamp(8, 24),
        query_noise: 0.25,
        noise_magnitude: 1,
        similarity: 0.3,
        seed: 0x0e14,
    })?;
    let cfg = AmmConfig {
        fidelity: Fidelity::Parasitic,
        ..AmmConfig::default()
    };
    let inputs: Vec<Vec<u32>> = w.queries.iter().map(|(_, q)| q.clone()).collect();

    // The deep sweep only adds cells, never changes shared ones, so quick
    // rows stay comparable against full-scale baselines.
    let deep = scale.queries >= 100;
    let shard_counts: &[usize] = if deep { &[1, 2, 4] } else { &[1, 2] };
    let worker_counts: &[usize] = &[1, 2, 4];
    let batches: &[usize] = if deep { &[1, 8] } else { &[8] };

    let engine_err = |e: EngineError| match e {
        EngineError::Core(c) => c,
        EngineError::QueueFull | EngineError::ShutDown => CoreError::InvalidParameter {
            what: "engine rejected a blocking submission",
        },
    };

    let mut rows = Vec::new();
    for &shards in shard_counts {
        let base = PartitionedAmm::build(&w.patterns, shards, &cfg)?;
        let mut reference = base.clone();
        let expected: Vec<_> = inputs
            .iter()
            .map(|q| reference.recall(q))
            .collect::<Result<_, _>>()?;
        for &batch in batches {
            let mut one_worker_qps = None;
            for &workers in worker_counts {
                let engine = RecallEngine::new(
                    Deployment::Partitioned(base.clone()),
                    &EngineConfig::builder()
                        .workers(workers)
                        .queue_capacity(batch)
                        .use_plans(false)
                        .build(),
                );
                let started = std::time::Instant::now();
                let mut responses = Vec::with_capacity(inputs.len());
                for window in inputs.chunks(batch) {
                    responses.extend(engine.recall_many(window).map_err(engine_err)?);
                }
                let wall_seconds = started.elapsed().as_secs_f64().max(f64::EPSILON);
                engine.shutdown();
                let bit_identical = responses.len() == expected.len()
                    && responses
                        .iter()
                        .zip(&expected)
                        .all(|(r, e)| matches!(r, EngineResponse::Partitioned(p) if p == e));
                let throughput_qps = inputs.len() as f64 / wall_seconds;
                let baseline = *one_worker_qps.get_or_insert(throughput_qps);
                rows.push(EngineScaleRow {
                    shards,
                    workers,
                    batch,
                    queries: inputs.len(),
                    wall_seconds,
                    throughput_qps,
                    speedup_vs_1worker: throughput_qps / baseline,
                    bit_identical,
                });
            }
        }
    }
    Ok(EngineScaleStudy {
        host_cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        rows,
    })
}

/// Runs a representative instrumented recognition workload — parasitic
/// fidelity so every layer fires (programming pulses, crossbar solves, SAR
/// cycles, WTA transitions, hardware/ideal mismatch events) — and returns
/// the captured telemetry.
///
/// The workload is deliberately small even at paper [`Scale`] (parasitic
/// nodal solves dominate wall time); `scale` only bounds the query count.
///
/// # Errors
///
/// Propagates workload/AMM errors.
pub fn telemetry_capture(scale: &Scale) -> Result<spinamm_telemetry::TelemetrySnapshot, CoreError> {
    use spinamm_data::workload::{PatternWorkload, WorkloadConfig};

    let w = PatternWorkload::generate(&WorkloadConfig {
        pattern_count: 8,
        vector_len: 32,
        bits: 5,
        query_count: scale.queries.clamp(8, 24),
        query_noise: 0.3,
        noise_magnitude: 2,
        similarity: 0.5,
        seed: 0x7e1e,
    })?;
    let cfg = AmmConfig {
        fidelity: spinamm_core::amm::Fidelity::Parasitic,
        ..AmmConfig::default()
    };
    let recorder = spinamm_telemetry::MemoryRecorder::default();
    let req = spinamm_core::RecallRequest::recorded(&recorder);
    let mut amm = AssociativeMemoryModule::build_request(&w.patterns, &cfg, &req)?;
    recall::evaluate_accuracy_with(&mut amm, &w.queries, Some(&w.patterns), &recorder)?;
    Ok(recorder.snapshot())
}

// ---------------------------------------------------------------------------
// E15 — cross-fidelity conformance sweep
// ---------------------------------------------------------------------------

/// The conformance study: a fresh seeded corpus sweep through every
/// fidelity and recall path, plus a replay of the committed divergence
/// corpus (see `conformance/corpus/` at the repository root).
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceStudy {
    /// Fresh seeded cases run through the differential oracle.
    pub cases: u64,
    /// Individual ledger checks evaluated across the sweep.
    pub checks: u64,
    /// Ledger violations with no waiver: fresh per-case divergences,
    /// aggregate agreement-floor violations, clean baselines that
    /// replayed dirty, and committed perturbed repros the oracle failed
    /// to re-catch (a detector regression). CI gates on this being zero.
    pub unwaived_divergences: u64,
    /// Whether every committed intentionally-perturbed repro still
    /// triggered the oracle on replay.
    pub injected_caught: bool,
    /// Committed corpus files replayed.
    pub corpus_repros_replayed: u64,
    /// Max |ΔDOM| observed between ideal and driven fidelity (budget:
    /// [`spinamm_conformance::ToleranceLedger::DEFAULT`]).
    pub observed_ideal_driven_dom_lsb: u32,
    /// Max |ΔDOM| observed between driven and parasitic fidelity.
    pub observed_driven_parasitic_dom_lsb: u32,
    /// Max |ΔDOM| observed across the metamorphic permutation check.
    pub observed_permutation_dom_lsb: u32,
    /// Flat↔partitioned winner agreement across the unfaulted sweep.
    pub flat_partitioned_agreement: f64,
    /// Flat↔hierarchical winner agreement across the unfaulted sweep.
    pub flat_hierarchical_agreement: f64,
    /// Flat↔tiled winner agreement across the unfaulted sweep (the pool's
    /// k=1 match mapped back to its build ordinal).
    pub flat_tiled_agreement: f64,
    /// Shrunk JSON repros for any fresh divergence, named by originating
    /// check; the experiments binary persists these under
    /// `conformance-repros/` so CI can upload them as a failure artifact.
    pub fresh_repros: Vec<(String, String)>,
}

/// Maps a harness failure onto the bench error type (divergences are
/// findings in the study, never errors).
fn conformance_err(e: spinamm_conformance::ConformanceError) -> CoreError {
    use spinamm_conformance::ConformanceError as E;
    use spinamm_engine::EngineError;
    match e {
        E::Core(c) => c,
        E::Engine(EngineError::Core(c)) => c,
        E::Engine(_) => CoreError::InvalidParameter {
            what: "conformance engine path rejected a submission",
        },
        E::InvalidParameter { what } => CoreError::InvalidParameter { what },
        E::Repro(_) => CoreError::InvalidParameter {
            what: "committed conformance repro failed to parse",
        },
    }
}

/// E15: runs the cross-fidelity conformance sweep. Quick scale samples 40
/// fresh cases; full scale samples 240 (the acceptance floor is 200). Both
/// replay the committed corpus: clean baselines must stay clean and
/// perturbed repros must still be caught.
///
/// # Errors
///
/// Propagates harness failures (an unrunnable case, a missing corpus
/// directory); ledger violations are reported, not raised.
pub fn conformance_study(scale: &Scale) -> Result<ConformanceStudy, CoreError> {
    use spinamm_conformance::{
        repro_from_json, repro_to_json, run_case, run_corpus, shrink_case, CorpusConfig,
        ToleranceLedger,
    };

    let ledger = ToleranceLedger::DEFAULT;
    let recorder = spinamm_telemetry::NoopRecorder;
    let cases = if scale.queries >= 100 { 240 } else { 40 };
    let corpus = run_corpus(
        &CorpusConfig {
            cases,
            base_seed: 0x0e15,
        },
        &ledger,
        &recorder,
    )
    .map_err(conformance_err)?;

    let mut unwaived = corpus.unwaived_divergences();
    let mut checks = corpus.checks;

    // Shrink fresh divergences to minimal repros (bounded: each shrink
    // re-runs the oracle dozens of times).
    let mut fresh_repros = Vec::new();
    for divergent in corpus.divergent.iter().take(4) {
        let (spec, divergences) = match shrink_case(&divergent.spec, &ledger) {
            Ok(s) => (s.spec, s.outcome.divergences),
            Err(_) => (divergent.spec.clone(), divergent.divergences.clone()),
        };
        let check = divergences
            .first()
            .map_or("unknown", |d| d.check.as_str())
            .replace('.', "-");
        fresh_repros.push((check, repro_to_json(&spec, &divergences)));
    }

    // Replay the committed corpus.
    let corpus_dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../conformance/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&corpus_dir)
        .map_err(|_| CoreError::InvalidParameter {
            what: "conformance/corpus directory not found (run from the repository)",
        })?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    let mut replayed = 0u64;
    let mut perturbed_seen = 0u64;
    let mut injected_caught = true;
    for path in entries {
        let text = std::fs::read_to_string(&path).map_err(|_| CoreError::InvalidParameter {
            what: "unreadable conformance repro",
        })?;
        let (spec, recorded) = repro_from_json(&text).map_err(conformance_err)?;
        let outcome = run_case(&spec, &ledger, &recorder).map_err(conformance_err)?;
        replayed += 1;
        checks += outcome.checks;
        if recorded.is_empty() {
            // Clean baseline: any violation on replay is unwaived.
            unwaived += outcome.divergences.len() as u64;
        } else {
            perturbed_seen += 1;
            let recaught = recorded
                .iter()
                .all(|want| outcome.divergences.iter().any(|d| d.check == want.check));
            if !recaught {
                // Detector regression: the oracle lost a committed catch.
                injected_caught = false;
                unwaived += 1;
            }
        }
    }
    if perturbed_seen == 0 {
        injected_caught = false;
        unwaived += 1;
    }

    Ok(ConformanceStudy {
        cases: corpus.cases,
        checks,
        unwaived_divergences: unwaived,
        injected_caught,
        corpus_repros_replayed: replayed,
        observed_ideal_driven_dom_lsb: corpus.observed.ideal_driven_dom_lsb,
        observed_driven_parasitic_dom_lsb: corpus.observed.driven_parasitic_dom_lsb,
        observed_permutation_dom_lsb: corpus.observed.permutation_dom_lsb,
        flat_partitioned_agreement: corpus.flat_partitioned.rate(),
        flat_hierarchical_agreement: corpus.flat_hierarchical.rate(),
        flat_tiled_agreement: corpus.flat_tiled.rate(),
        fresh_repros,
    })
}

// ---------------------------------------------------------------------------
// E16 — recall-pipeline profiling study (tracing + latency percentiles)
// ---------------------------------------------------------------------------

/// One row of the span-aggregate flamegraph table: wall time attributed to
/// a pipeline phase across every sampled request of the profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilePhaseRow {
    /// Phase (span or request-kind) name, e.g. `evaluate` or `queue_wait`.
    pub name: String,
    /// Completed spans aggregated into the row.
    pub count: u64,
    /// Total wall time including children, in microseconds.
    pub total_us: f64,
    /// Wall time with direct children subtracted, in microseconds.
    pub self_us: f64,
}

/// One cell of the profiling sweep: the engine serving the open-loop
/// workload at a fixed worker count, every request sampled.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Engine worker threads.
    pub workers: usize,
    /// Requests served (the seeded query list cycled `passes` times).
    pub queries: usize,
    /// Wall time for the whole submission/wait loop.
    pub wall_seconds: f64,
    /// Served requests per second.
    pub throughput_qps: f64,
    /// End-to-end latency percentiles from the tracer's log-bucketed
    /// histogram (≤ 3.2 % bucket error), in microseconds.
    pub p50_us: f64,
    /// 90th percentile latency, µs.
    pub p90_us: f64,
    /// 99th percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th percentile latency, µs.
    pub p999_us: f64,
    /// Worst observed latency, µs.
    pub max_us: f64,
    /// 99th-percentile queue wait from the recorder histogram, µs.
    pub queue_wait_p99_us: f64,
    /// Sampled traces completed (sample rate 1.0 → equals `queries`).
    pub sampled: u64,
    /// Whether every traced response was bit-identical to a sequential
    /// recall in submission order — the invariant CI gates on.
    pub bit_identical: bool,
}

/// The E16 profiling study: the worker sweep, the phase table from the
/// widest run, the tracing-overhead ratios, and exportable trace JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileStudy {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_cpus: usize,
    /// One row per engine worker count.
    pub rows: Vec<ProfileRow>,
    /// Span-aggregate flamegraph table from the widest-worker run,
    /// slowest total first.
    pub phases: Vec<ProfilePhaseRow>,
    /// min-of-N sequential wall time with a *disabled* tracer attached,
    /// relative to no tracer at all. The production default must be free:
    /// CI gates this at ≤ 1.02 (with a small absolute-delta escape for
    /// sub-microsecond jitter).
    pub noop_overhead_ratio: f64,
    /// The same ratio with a sample-everything tracer — the profiling
    /// configuration. Informational: bounded but not gated as tightly.
    pub traced_overhead_ratio: f64,
    /// Chrome trace-event JSON (Perfetto-loadable) from the widest run.
    pub chrome_trace_json: String,
    /// Slow-request exemplar ring (top-N by latency) as JSON.
    pub exemplars_json: String,
}

/// E16: profiles the recall pipeline end to end. A seeded open-loop
/// workload is served through the sharded engine at worker counts
/// {1, 2, 4} with a sample-everything tracer attached; every run is
/// checked bit-for-bit against sequential recall. A separate interleaved
/// min-of-N comparison measures what attaching a tracer costs a
/// sequential caller (disabled and sampling configurations).
///
/// # Errors
///
/// Propagates workload/AMM/engine errors.
pub fn profile_study(scale: &Scale) -> Result<ProfileStudy, CoreError> {
    use spinamm_core::amm::Fidelity;
    use spinamm_core::partition::PartitionedAmm;
    use spinamm_core::RecallRequest;
    use spinamm_data::workload::{PatternWorkload, WorkloadConfig};
    use spinamm_engine::{Deployment, EngineConfig, EngineError, EngineResponse, RecallEngine};
    use spinamm_trace::{TraceConfig, Tracer};

    let w = PatternWorkload::generate(&WorkloadConfig {
        pattern_count: 6,
        vector_len: 16,
        bits: 5,
        query_count: scale.queries.clamp(8, 24),
        query_noise: 0.25,
        noise_magnitude: 1,
        similarity: 0.3,
        seed: 0x0e16,
    })?;
    let cfg = AmmConfig {
        fidelity: Fidelity::Parasitic,
        ..AmmConfig::default()
    };
    // Open-loop arrival list: the seeded queries cycled so the latency
    // histogram has enough mass for a meaningful p99.
    let passes = if scale.queries >= 100 { 6 } else { 2 };
    let inputs: Vec<Vec<u32>> = w
        .queries
        .iter()
        .map(|(_, q)| q.clone())
        .cycle()
        .take(w.queries.len() * passes)
        .collect();

    let engine_err = |e: EngineError| match e {
        EngineError::Core(c) => c,
        EngineError::QueueFull | EngineError::ShutDown => CoreError::InvalidParameter {
            what: "engine rejected a blocking submission",
        },
    };

    let base = PartitionedAmm::build(&w.patterns, 2, &cfg)?;
    let mut reference = base.clone();
    let expected: Vec<_> = inputs
        .iter()
        .map(|q| reference.recall(q))
        .collect::<Result<_, _>>()?;

    let mut rows = Vec::new();
    let mut widest: Option<std::sync::Arc<Tracer>> = None;
    for &workers in &[1usize, 2, 4] {
        let tracer = std::sync::Arc::new(Tracer::new(&TraceConfig {
            sample_rate: 1.0,
            seed: 0x0e16,
            trace_capacity: inputs.len().max(64),
            ..TraceConfig::default()
        }));
        let recorder = std::sync::Arc::new(spinamm_telemetry::MemoryRecorder::default());
        let engine = RecallEngine::with_observability(
            Deployment::Partitioned(base.clone()),
            &EngineConfig::builder()
                .workers(workers)
                .queue_capacity(8)
                .use_plans(false)
                .build(),
            recorder.clone(),
            Some(std::sync::Arc::clone(&tracer)),
        );
        let started = std::time::Instant::now();
        let mut responses = Vec::with_capacity(inputs.len());
        for window in inputs.chunks(8) {
            responses.extend(engine.recall_many(window).map_err(engine_err)?);
        }
        let wall_seconds = started.elapsed().as_secs_f64().max(f64::EPSILON);
        engine.shutdown();
        let bit_identical = responses.len() == expected.len()
            && responses
                .iter()
                .zip(&expected)
                .all(|(r, e)| matches!(r, EngineResponse::Partitioned(p) if p == e));
        let latency = tracer.latency();
        let snap = recorder.snapshot();
        let queue_wait_p99_us = snap.percentile("engine.queue_wait_ns", 0.99) / 1e3;
        rows.push(ProfileRow {
            workers,
            queries: inputs.len(),
            wall_seconds,
            throughput_qps: inputs.len() as f64 / wall_seconds,
            p50_us: latency.p50() / 1e3,
            p90_us: latency.p90() / 1e3,
            p99_us: latency.p99() / 1e3,
            p999_us: latency.p999() / 1e3,
            max_us: latency.max_ns() / 1e3,
            queue_wait_p99_us,
            sampled: tracer.sampled_count(),
            bit_identical,
        });
        widest = Some(tracer);
    }
    let widest = widest.expect("at least one worker count profiled");
    let phases = widest
        .phase_rows()
        .into_iter()
        .map(|r| ProfilePhaseRow {
            name: r.name.to_string(),
            count: r.count,
            total_us: r.total_ns as f64 / 1e3,
            self_us: r.self_ns as f64 / 1e3,
        })
        .collect();

    // Tracing overhead, sequentially: interleaved min-of-N passes over the
    // same queries with (a) no tracer, (b) a disabled tracer (production
    // default), (c) a sample-everything tracer. Separate module instances
    // keep each variant's solver cache warm for itself; min-of-N rejects
    // scheduler noise. Interleaving keeps slow ambient drift (thermal,
    // frequency scaling) from biasing one variant.
    let trials = if scale.queries >= 100 { 5 } else { 3 };
    let mut plain = AssociativeMemoryModule::build(&w.patterns, &cfg)?;
    let mut with_noop = AssociativeMemoryModule::build(&w.patterns, &cfg)?;
    let mut with_sampling = AssociativeMemoryModule::build(&w.patterns, &cfg)?;
    let noop = Tracer::disabled();
    let sampling = Tracer::new(&TraceConfig {
        trace_capacity: 64,
        ..TraceConfig::default()
    });
    let queries: Vec<&Vec<u32>> = w.queries.iter().map(|(_, q)| q).collect();
    // Warm every variant once (factorization + warm-start state).
    for q in &queries {
        plain.recall(q)?;
        with_noop.recall(q)?;
        with_sampling.recall(q)?;
    }
    let mut best = [f64::INFINITY; 3];
    for _ in 0..trials {
        let t0 = std::time::Instant::now();
        for q in &queries {
            plain.recall(q)?;
        }
        best[0] = best[0].min(t0.elapsed().as_secs_f64());

        let req = RecallRequest::DEFAULT.with_tracer(&noop);
        let t0 = std::time::Instant::now();
        for q in &queries {
            with_noop.recall_request(q, &req)?;
        }
        best[1] = best[1].min(t0.elapsed().as_secs_f64());

        let req = RecallRequest::DEFAULT.with_tracer(&sampling);
        let t0 = std::time::Instant::now();
        for q in &queries {
            with_sampling.recall_request(q, &req)?;
        }
        best[2] = best[2].min(t0.elapsed().as_secs_f64());
    }
    let floor = best[0].max(f64::EPSILON);

    Ok(ProfileStudy {
        host_cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        rows,
        phases,
        noop_overhead_ratio: best[1] / floor,
        traced_overhead_ratio: best[2] / floor,
        chrome_trace_json: widest.chrome_trace_json().render(),
        exemplars_json: widest.exemplars_json().render(),
    })
}

// ---------------------------------------------------------------------------
// E17 — compiled recall plans (speedup vs interpreted + f32 tier audit)
// ---------------------------------------------------------------------------

/// One fidelity's interpreted-vs-plan timing comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRow {
    /// Fidelity the deployment was lowered from.
    pub fidelity: &'static str,
    /// Queries per timed pass.
    pub queries: usize,
    /// Best interpreted pass (interleaved min-of-N seconds).
    pub interpreted_seconds: f64,
    /// Best compiled-plan pass (interleaved min-of-N seconds).
    pub plan_seconds: f64,
    /// `interpreted_seconds / plan_seconds`.
    pub speedup: f64,
    /// Whether every plan execution reproduced interpreted recall bit for
    /// bit (the f64 contract; CI gates on this, not the timings).
    pub bit_identical: bool,
}

/// The compiled-plan study: per-fidelity speedups at the paper-headline
/// 128×40 geometry plus the f32 fast-tier divergence audit against the
/// tolerance ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStudy {
    /// Host parallelism the timings were measured on.
    pub host_cpus: usize,
    /// One row per fidelity, f64 plans.
    pub rows: Vec<PlanRow>,
    /// Queries audited through the f32 tier.
    pub f32_queries: u64,
    /// f32-tier results outside the `plan_f32_*` ledger budgets (dom,
    /// non-near-tie winner flips, or column-current drift). CI pins 0.
    pub f32_unwaived_divergences: u64,
    /// Max |ΔDOM| observed between the f64 and f32 tiers.
    pub f32_max_dom_lsb: u32,
    /// Max relative column-current error observed between the tiers.
    pub f32_max_current_rel: f64,
    /// f64-plan-vs-f32-plan wall ratio on the driven deployment.
    pub f32_speedup: f64,
}

/// The winner's code margin over the best other column.
fn code_margin(codes: &[u32], winner: usize) -> u32 {
    codes
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != winner)
        .map(|(_, &c)| c)
        .max()
        .map_or_else(|| codes[winner], |r| codes[winner].saturating_sub(r))
}

/// E17: compiles each fidelity's 128×40 deployment into a [`spinamm_core::plan::RecallPlan`]
/// and measures interpreted vs plan execution interleaved (each round times
/// both sides back to back; each keeps its best round), verifying f64
/// bit-identity on the way. The f32 fast tier is then audited query by
/// query against the [`spinamm_conformance::ToleranceLedger`] budgets.
///
/// # Errors
///
/// Propagates AMM build / compile / recall errors.
pub fn plan_study(scale: &Scale) -> Result<PlanStudy, CoreError> {
    use spinamm_conformance::ToleranceLedger;
    use spinamm_core::amm::Fidelity;
    use spinamm_core::plan::{PlanOptions, PlanPrecision};
    use std::hint::black_box;
    use std::time::Instant;

    const ROWS: usize = 128;
    const COLS: usize = 40;
    let patterns: Vec<Vec<u32>> = (0..COLS)
        .map(|j| (0..ROWS).map(|i| ((i * 5 + j * 3) % 32) as u32).collect())
        .collect();
    let query_count = scale.queries.clamp(4, 16);
    let inputs: Vec<Vec<u32>> = (0..query_count)
        .map(|q| (0..ROWS).map(|i| ((i * 7 + q * 11) % 32) as u32).collect())
        .collect();
    let rounds = if scale.queries >= 100 { 5 } else { 3 };

    let mut rows = Vec::new();
    for (fidelity, name) in [
        (Fidelity::Ideal, "ideal"),
        (Fidelity::Driven, "driven"),
        (Fidelity::Parasitic, "parasitic"),
    ] {
        let cfg = AmmConfig {
            fidelity,
            ..AmmConfig::default()
        };
        let mut interp = AssociativeMemoryModule::build(&patterns, &cfg)?;
        let source = AssociativeMemoryModule::build(&patterns, &cfg)?;
        let mut plan = source.compile_plan(PlanOptions::default())?;
        // Bit-identity pass (doubles as session/plan warm-up).
        let mut bit_identical = true;
        for q in &inputs {
            if interp.recall(q)? != plan.execute(q)? {
                bit_identical = false;
            }
        }
        let mut best_interp = f64::MAX;
        let mut best_plan = f64::MAX;
        for _ in 0..rounds {
            let t0 = Instant::now();
            for q in &inputs {
                black_box(interp.recall(q)?);
            }
            best_interp = best_interp.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            for q in &inputs {
                black_box(plan.execute(q)?);
            }
            best_plan = best_plan.min(t0.elapsed().as_secs_f64());
        }
        let plan_floor = best_plan.max(f64::EPSILON);
        rows.push(PlanRow {
            fidelity: name,
            queries: inputs.len(),
            interpreted_seconds: best_interp,
            plan_seconds: best_plan,
            speedup: best_interp / plan_floor,
            bit_identical,
        });
    }

    // f32 fast-tier audit on the driven deployment, against the ledger.
    let ledger = ToleranceLedger::DEFAULT;
    let cfg = AmmConfig {
        fidelity: Fidelity::Driven,
        ..AmmConfig::default()
    };
    let source = AssociativeMemoryModule::build(&patterns, &cfg)?;
    let mut f64_plan = source.compile_plan(PlanOptions::default())?;
    let mut f32_plan = source.compile_plan(PlanOptions {
        precision: PlanPrecision::F32,
    })?;
    let mut unwaived = 0u64;
    let mut max_dom = 0u32;
    let mut max_rel = 0.0f64;
    for q in &inputs {
        let want = f64_plan.execute(q)?;
        let got = f32_plan.execute(q)?;
        let delta = got.dom.abs_diff(want.dom);
        max_dom = max_dom.max(delta);
        if delta > ledger.plan_f32_dom_lsb {
            unwaived += 1;
        }
        if got.raw_winner != want.raw_winner
            && (code_margin(&got.codes, got.raw_winner) > ledger.tie_margin_lsb
                || code_margin(&want.codes, want.raw_winner) > ledger.tie_margin_lsb)
        {
            unwaived += 1;
        }
        for (fast_i, ref_i) in got.column_currents.iter().zip(&want.column_currents) {
            let rel = (fast_i.0 - ref_i.0).abs() / ref_i.0.abs().max(1e-12);
            max_rel = max_rel.max(rel);
            if rel > ledger.plan_f32_current_rel {
                unwaived += 1;
            }
        }
    }
    let mut best_f64 = f64::MAX;
    let mut best_f32 = f64::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for q in &inputs {
            black_box(f64_plan.execute(q)?);
        }
        best_f64 = best_f64.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for q in &inputs {
            black_box(f32_plan.execute(q)?);
        }
        best_f32 = best_f32.min(t0.elapsed().as_secs_f64());
    }

    Ok(PlanStudy {
        host_cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        rows,
        f32_queries: inputs.len() as u64,
        f32_unwaived_divergences: unwaived,
        f32_max_dom_lsb: max_dom,
        f32_max_current_rel: max_rel,
        f32_speedup: best_f64 / best_f32.max(f64::EPSILON),
    })
}

// ---------------------------------------------------------------------------
// E18 — tiled capacity study (qps and energy/query vs stored templates)
// ---------------------------------------------------------------------------

/// One cell of the capacity sweep: a template count served at one ranking
/// depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityRow {
    /// Templates stored across the pool.
    pub templates: usize,
    /// Ranking depth requested from each recall.
    pub k: usize,
    /// Crossbar tiles the templates shard into.
    pub tiles: usize,
    /// Tiles whose evaluation phase runs a compiled plan.
    pub compiled_tiles: usize,
    /// Queries served in the timed pass.
    pub queries: usize,
    /// Wall time of the timed batch pass.
    pub wall_seconds: f64,
    /// Served queries per second.
    pub throughput_qps: f64,
    /// Mean recall energy across the timed queries, J (summed over every
    /// tile the query touched).
    pub energy_per_query_j: f64,
    /// Whether every recall's ranked matches equalled an independent full
    /// argsort of the concatenated per-tile codes, truncated to `k`. CI
    /// gates on this.
    pub topk_matches_oracle: bool,
    /// Whether every recall's first match reproduced the legacy
    /// single-winner rule (`argmax_lowest_index` over the concatenation,
    /// DOM = the winner's own code). CI gates on this.
    pub top1_matches_wta: bool,
    /// Whether the engine comparison ran for this cell (skipped above 10⁴
    /// templates — cloning the pool dominates the signal there).
    pub engine_checked: bool,
    /// Whether every engine response was bit-identical to a sequential
    /// recall of a pool clone in submission order. Meaningful only when
    /// `engine_checked`; CI gates on it there.
    pub engine_identical: bool,
}

/// The E18 capacity study: the sweep plus its measurement context.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityStudy {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_cpus: usize,
    /// Template slots per tile (uniform across the sweep).
    pub tile_capacity: usize,
    /// One row per (templates, k) cell.
    pub rows: Vec<CapacityRow>,
}

/// An independent ranking oracle: full argsort of the concatenated codes
/// by `(code desc, global column asc)`, truncated to `k`. Deliberately
/// not [`spinamm_core::capacity::top_k_merge`] — the study cross-checks
/// the merge tree against a reimplementation.
fn capacity_oracle(scores: &[u32], k: usize) -> Vec<(usize, u32)> {
    let mut all: Vec<(usize, u32)> = scores.iter().copied().enumerate().collect();
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// E18: shards 10³/10⁴ (full scale adds 10⁵) random templates across a
/// tiled capacity pool and serves a noisy query batch at ranking depths
/// k ∈ {1, 5, 10}, measuring throughput and energy per query and checking
/// every ranked result against a full argsort oracle and the legacy
/// single-winner rule. At the two smaller counts each cell is also served
/// through the recall engine and compared bit-for-bit against sequential
/// recall of a pool clone.
///
/// # Errors
///
/// Propagates workload/pool/engine errors.
pub fn capacity_study(scale: &Scale) -> Result<CapacityStudy, CoreError> {
    use spinamm_core::capacity::TiledAmm;
    use spinamm_core::wta::argmax_lowest_index;
    use spinamm_data::workload::{PatternWorkload, WorkloadConfig};
    use spinamm_engine::{Deployment, EngineConfig, EngineError, EngineResponse, RecallEngine};

    const TILE_CAPACITY: usize = 128;
    const ENGINE_CHECK_LIMIT: usize = 10_000;
    let template_counts: &[usize] = if scale.queries >= 100 {
        &[1_000, 10_000, 100_000]
    } else {
        &[1_000, 10_000]
    };
    let depths: &[usize] = &[1, 5, 10];

    let engine_err = |e: EngineError| match e {
        EngineError::Core(c) => c,
        EngineError::QueueFull | EngineError::ShutDown => CoreError::InvalidParameter {
            what: "engine rejected a blocking submission",
        },
    };

    let mut rows = Vec::new();
    for &templates in template_counts {
        let w = PatternWorkload::generate(&WorkloadConfig {
            pattern_count: templates,
            vector_len: 64,
            bits: 5,
            query_count: if templates > ENGINE_CHECK_LIMIT {
                4
            } else {
                scale.queries.clamp(4, 12)
            },
            query_noise: 0.3,
            noise_magnitude: 2,
            similarity: 0.0,
            seed: 0x0e18 ^ templates as u64,
        })?;
        let inputs: Vec<Vec<u32>> = w.queries.iter().map(|(_, q)| q.clone()).collect();
        let mut pool = TiledAmm::build(&w.patterns, TILE_CAPACITY, &AmmConfig::default())?;
        for &k in depths {
            pool.set_top_k(k)?;

            // Engine bit-identity at the counts where a pool clone is
            // cheap relative to the recall work.
            let engine_checked = templates <= ENGINE_CHECK_LIMIT;
            let mut engine_identical = false;
            if engine_checked {
                let mut reference = pool.clone();
                let expected: Vec<_> = inputs
                    .iter()
                    .map(|q| reference.recall(q))
                    .collect::<Result<_, _>>()?;
                let engine = RecallEngine::new(
                    Deployment::Tiled(pool.clone()),
                    &EngineConfig::builder()
                        .workers(2)
                        .queue_capacity(4)
                        .use_plans(false)
                        .build(),
                );
                let mut responses = Vec::with_capacity(inputs.len());
                for window in inputs.chunks(4) {
                    responses.extend(engine.recall_many(window).map_err(engine_err)?);
                }
                engine.shutdown();
                engine_identical = responses.len() == expected.len()
                    && responses
                        .iter()
                        .zip(&expected)
                        .all(|(r, e)| matches!(r, EngineResponse::Tiled(t) if t == e));
            }

            // Timed batch pass on the pool itself, with ranking checks on
            // every result.
            let started = std::time::Instant::now();
            let results =
                pool.recall_batch_request(&inputs, &spinamm_core::RecallRequest::DEFAULT)?;
            let wall_seconds = started.elapsed().as_secs_f64().max(f64::EPSILON);
            let mut topk_matches_oracle = true;
            let mut top1_matches_wta = true;
            let mut energy = 0.0;
            for r in &results {
                energy += r.energy.total().0;
                let ranked: Vec<(usize, u32)> = r
                    .matches
                    .iter()
                    .map(|m| (m.global_column, m.score))
                    .collect();
                if ranked != capacity_oracle(&r.scores, ranked.len()) {
                    topk_matches_oracle = false;
                }
                match argmax_lowest_index(&r.scores) {
                    Some(legacy)
                        if r.matches.first().map(|m| m.global_column) == Some(legacy)
                            && r.dom == r.scores[legacy] => {}
                    _ => top1_matches_wta = false,
                }
            }

            rows.push(CapacityRow {
                templates,
                k,
                tiles: pool.tile_count(),
                compiled_tiles: pool.compiled_tiles(),
                queries: inputs.len(),
                wall_seconds,
                throughput_qps: inputs.len() as f64 / wall_seconds,
                energy_per_query_j: energy / results.len().max(1) as f64,
                topk_matches_oracle,
                top1_matches_wta,
                engine_checked,
                engine_identical,
            });
        }
    }
    Ok(CapacityStudy {
        host_cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        tile_capacity: TILE_CAPACITY,
        rows,
    })
}

/// One tenant of the E19 serving study: its mix position, measured
/// saturation, open-loop latency percentiles and admission accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeTenantRow {
    /// Registry name of the tenant.
    pub tenant: String,
    /// Deployment organization ("flat"/"partitioned"/"hierarchical"/"tiled").
    pub kind: String,
    /// Provisioned admission quota, queries per second (0 = unlimited).
    pub quota_qps: f64,
    /// Closed-loop served throughput with loaders firing back-to-back.
    pub saturation_qps: f64,
    /// Open-loop scheduled arrival rate driven in the latency phase.
    pub offered_qps: f64,
    /// Queries scheduled in the open-loop phase.
    pub offered: u64,
    /// Queries served with a 200-class response in the open-loop phase.
    pub served: u64,
    /// Queries rejected by the tenant's token bucket (429).
    pub rejected_over_quota: u64,
    /// Queries rejected by the global gate or engine queue (503).
    pub rejected_saturated: u64,
    /// Open-loop latency percentiles, µs, measured from each query's
    /// *scheduled* arrival (coordinated-omission corrected).
    pub p50_us: f64,
    /// 99th percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th percentile latency, µs.
    pub p999_us: f64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// p99 of the tenant's own `engine.queue_wait_ns` histogram, µs —
    /// per-tenant queue-wait attribution from its dedicated recorder.
    pub queue_wait_p99_us: f64,
    /// Mean recognition energy across served queries, J.
    pub mean_energy_j: f64,
    /// Whether a sequential prefix served through the service tier was
    /// bit-identical to direct engine submission of the same spec. CI
    /// gates on this.
    pub served_identical: bool,
}

/// The E19 load-replay study: the tenant mix plus run-level context.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStudy {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_cpus: usize,
    /// Closed/open-loop loader threads per tenant.
    pub loader_threads: usize,
    /// Queries driven across every phase and tenant.
    pub total_queries: u64,
    /// Wall time of the whole study.
    pub wall_seconds: f64,
    /// One row per tenant in the mix.
    pub rows: Vec<ServeTenantRow>,
}

/// E19: seeded open-loop load replay through the full serving tier.
///
/// Builds a three-tenant mix on one [`spinamm_server::RecallService`] —
/// `bulk` (flat, unlimited), `ranked` (tiled top-k, unlimited) and
/// `throttled` (flat behind a token bucket provisioned at a quarter of
/// the measured flat saturation) — then, per tenant:
///
/// 1. proves a sequential served prefix bit-identical to direct engine
///    submission of the same spec (`served_identical`);
/// 2. measures closed-loop saturation with loaders firing back-to-back;
/// 3. replays a seeded open-loop schedule at half the saturation rate,
///    measuring every latency from the query's *scheduled* arrival so
///    queueing delay is charged, not hidden (coordinated omission).
///
/// Full scale drives ≥10⁶ queries; quick keeps the same shape at a few
/// thousand. Latencies and rates vary with the host, so CI gates only on
/// invariants: accounting, percentile ordering, positive saturation, the
/// admission split and the bit-identity verdicts.
///
/// # Errors
///
/// Propagates workload, registry-build and serving errors.
pub fn serve_study(scale: &Scale) -> Result<ServeStudy, CoreError> {
    use spinamm_data::workload::{PatternWorkload, WorkloadConfig};
    use spinamm_engine::{EngineConfig, RecallEngine};
    use spinamm_server::api::{ApiRecallRequest, ApiRecallResponse};
    use spinamm_server::registry::{DeploymentSpec, ModuleRegistry, TenantOptions};
    use spinamm_server::service::{RecallService, ServeError, ServerConfig};
    use spinamm_trace::LatencyHistogram;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    const LOADER_THREADS: usize = 4;
    const CONFORMANCE_PREFIX: usize = 8;
    let full = scale.queries >= 100;
    // Per tenant, per phase. Full: 3 tenants × 2 phases × 180k ≥ 10⁶.
    let phase_queries: u64 = if full { 180_000 } else { 250 };

    let tenant_err = |what: &'static str| CoreError::InvalidParameter { what };

    // Distinct query pools per tenant so the mix isn't three copies of
    // one workload.
    let workload = |seed: u64, patterns: usize| {
        PatternWorkload::generate(&WorkloadConfig {
            pattern_count: patterns,
            vector_len: 16,
            bits: 5,
            query_count: 64,
            query_noise: 0.3,
            noise_magnitude: 2,
            similarity: 0.0,
            seed,
        })
    };
    let flat_w = workload(0x0e19_0001, 8)?;
    let ranked_w = workload(0x0e19_0002, 48)?;
    let throttled_w = workload(0x0e19_0003, 8)?;

    let flat_spec = |w: &PatternWorkload| DeploymentSpec::Flat {
        patterns: w.patterns.clone(),
        config: AmmConfig::default(),
    };
    let engine = EngineConfig::builder()
        .workers(2)
        .queue_capacity(32)
        .build();
    let started = Instant::now();
    let registry = Arc::new(ModuleRegistry::new());
    let service = Arc::new(RecallService::new(
        Arc::clone(&registry),
        &ServerConfig::builder().global_concurrency(256).build(),
    ));
    let total_queries = AtomicU64::new(0);

    // Sequential served prefix vs direct engine submission, run before
    // any other traffic touches the tenant (recalls advance the module
    // RNG, so the comparison must be the tenant's first traffic).
    let conformance_prefix = |name: &str,
                              spec: &DeploymentSpec,
                              queries: &[(usize, Vec<u32>)]|
     -> Result<bool, CoreError> {
        let reference = spec.build(&spinamm_telemetry::MemoryRecorder::default())?;
        let direct = RecallEngine::new(reference, &engine);
        let mut identical = true;
        for (_, q) in queries.iter().cycle().take(CONFORMANCE_PREFIX) {
            let served = service
                .handle(&ApiRecallRequest {
                    tenant: name.to_owned(),
                    input: q.clone(),
                })
                .map_err(|_| tenant_err("serve study conformance prefix rejected"))?;
            let response = direct
                .submit(q)
                .and_then(|t| t.wait())
                .map_err(|_| tenant_err("serve study direct submission failed"))?;
            let want = ApiRecallResponse::from_engine(name, &response);
            if served != want || served.energy_j.to_bits() != want.energy_j.to_bits() {
                identical = false;
            }
        }
        total_queries.fetch_add(CONFORMANCE_PREFIX as u64, Ordering::Relaxed);
        Ok(identical)
    };

    // Closed loop: loaders fire back-to-back; saturation = served / wall.
    let closed_loop = |name: &str, queries: &[(usize, Vec<u32>)]| -> (f64, u64) {
        let served = AtomicU64::new(0);
        let wall = Instant::now();
        std::thread::scope(|s| {
            for t in 0..LOADER_THREADS {
                let served = &served;
                let service = &service;
                s.spawn(move || {
                    let mut i = t;
                    for _ in 0..phase_queries / LOADER_THREADS as u64 {
                        let (_, q) = &queries[i % queries.len()];
                        if service
                            .handle(&ApiRecallRequest {
                                tenant: name.to_owned(),
                                input: q.clone(),
                            })
                            .is_ok()
                        {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        i += LOADER_THREADS;
                    }
                });
            }
        });
        let wall = wall.elapsed().as_secs_f64().max(f64::EPSILON);
        let fired = (phase_queries / LOADER_THREADS as u64) * LOADER_THREADS as u64;
        total_queries.fetch_add(fired, Ordering::Relaxed);
        (served.load(Ordering::Relaxed) as f64 / wall, fired)
    };

    // Open loop: seeded arrival schedule at `rate`; latency is measured
    // from the scheduled arrival, so time spent queued behind a slow
    // server is charged to the percentiles.
    struct OpenLoopOutcome {
        served: u64,
        rejected_over_quota: u64,
        rejected_saturated: u64,
        energy_sum: f64,
        histogram: LatencyHistogram,
        offered: u64,
    }
    let open_loop = |name: &str, queries: &[(usize, Vec<u32>)], rate: f64| -> OpenLoopOutcome {
        let offered = phase_queries / LOADER_THREADS as u64 * LOADER_THREADS as u64;
        let served = AtomicU64::new(0);
        let over_quota = AtomicU64::new(0);
        let saturated = AtomicU64::new(0);
        let energy = Mutex::new(0.0f64);
        let histogram = Mutex::new(LatencyHistogram::new());
        let anchor = Instant::now();
        std::thread::scope(|s| {
            for t in 0..LOADER_THREADS {
                let (served, over_quota, saturated) = (&served, &over_quota, &saturated);
                let (energy, histogram) = (&energy, &histogram);
                let service = &service;
                s.spawn(move || {
                    let mut local = LatencyHistogram::new();
                    let mut local_energy = 0.0f64;
                    let mut i = t as u64;
                    while i < offered {
                        let arrival_ns = (i as f64 / rate * 1e9) as u64;
                        loop {
                            let now = anchor.elapsed().as_nanos() as u64;
                            if now >= arrival_ns {
                                break;
                            }
                            let ahead = arrival_ns - now;
                            if ahead > 3_000_000 {
                                std::thread::sleep(Duration::from_nanos(ahead - 2_000_000));
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                        let (_, q) = &queries[(i as usize) % queries.len()];
                        let outcome = service.handle(&ApiRecallRequest {
                            tenant: name.to_owned(),
                            input: q.clone(),
                        });
                        let done_ns = anchor.elapsed().as_nanos() as u64;
                        match outcome {
                            Ok(response) => {
                                served.fetch_add(1, Ordering::Relaxed);
                                local_energy += response.energy_j;
                                local.record(done_ns.saturating_sub(arrival_ns));
                            }
                            Err(ServeError::OverQuota { .. }) => {
                                over_quota.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                saturated.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        i += LOADER_THREADS as u64;
                    }
                    let mut merged = histogram.lock().expect("histogram lock");
                    merged.merge(&local);
                    *energy.lock().expect("energy lock") += local_energy;
                });
            }
        });
        total_queries.fetch_add(offered, Ordering::Relaxed);
        let energy_sum = *energy.lock().expect("energy lock");
        let histogram = histogram.into_inner().expect("histogram lock");
        OpenLoopOutcome {
            served: served.load(Ordering::Relaxed),
            rejected_over_quota: over_quota.load(Ordering::Relaxed),
            rejected_saturated: saturated.load(Ordering::Relaxed),
            energy_sum,
            histogram,
            offered,
        }
    };

    let mut rows = Vec::new();
    let mut run_tenant = |name: &str,
                          spec: DeploymentSpec,
                          quota: Option<(f64, f64)>,
                          queries: &[(usize, Vec<u32>)],
                          rate_hint: Option<f64>|
     -> Result<f64, CoreError> {
        let tenant = registry
            .register(name, &spec, &TenantOptions { quota, engine })
            .map_err(|_| tenant_err("serve study tenant registration failed"))?;
        let served_identical = conformance_prefix(name, &spec, queries)?;
        let (saturation_qps, _) = closed_loop(name, queries);
        // Half the measured (or hinted) saturation keeps the open loop
        // stable while still exercising real queueing.
        let rate = (rate_hint.unwrap_or(saturation_qps) * 0.5).max(50.0);
        let outcome = open_loop(name, queries, rate);
        let snapshot = tenant.recorder().snapshot();
        rows.push(ServeTenantRow {
            tenant: name.to_owned(),
            kind: tenant.kind().as_str().to_owned(),
            quota_qps: quota.map_or(0.0, |(qps, _)| qps),
            saturation_qps,
            offered_qps: rate,
            offered: outcome.offered,
            served: outcome.served,
            rejected_over_quota: outcome.rejected_over_quota,
            rejected_saturated: outcome.rejected_saturated,
            p50_us: outcome.histogram.percentile(0.50) / 1e3,
            p99_us: outcome.histogram.percentile(0.99) / 1e3,
            p999_us: outcome.histogram.percentile(0.999) / 1e3,
            mean_us: outcome.histogram.mean_ns() / 1e3,
            queue_wait_p99_us: snapshot.percentile("engine.queue_wait_ns", 0.99) / 1e3,
            mean_energy_j: outcome.energy_sum / outcome.served.max(1) as f64,
            served_identical,
        });
        Ok(saturation_qps)
    };

    let flat_saturation = run_tenant("bulk", flat_spec(&flat_w), None, &flat_w.queries, None)?;
    run_tenant(
        "ranked",
        DeploymentSpec::Tiled {
            patterns: ranked_w.patterns.clone(),
            tile_capacity: 16,
            top_k: 5,
            config: AmmConfig::default(),
        },
        None,
        &ranked_w.queries,
        None,
    )?;
    // Provisioned at a quarter of flat saturation and offered at half:
    // roughly half its open-loop schedule must see typed 429s.
    run_tenant(
        "throttled",
        flat_spec(&throttled_w),
        Some(((flat_saturation * 0.25).max(25.0), 8.0)),
        &throttled_w.queries,
        Some(flat_saturation),
    )?;

    Ok(ServeStudy {
        host_cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        loader_threads: LOADER_THREADS,
        total_queries: total_queries.load(Ordering::Relaxed),
        wall_seconds: started.elapsed().as_secs_f64(),
        rows,
    })
}

/// One checkpoint of one lifetime arm.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimePoint {
    /// Virtual queries served so far.
    pub queries: f64,
    /// Virtual seconds elapsed.
    pub virtual_seconds: f64,
    /// Threshold-respecting recognition accuracy (accepted winners only;
    /// the paper's §4B DOM discard rule is the quantity drift erodes).
    pub accuracy: f64,
    /// Cumulative template refreshes.
    pub refreshes: u64,
    /// Cumulative refresh write pulses.
    pub refresh_pulses: u64,
    /// Cumulative refresh write energy, joules.
    pub refresh_energy_j: f64,
    /// Cumulative endurance conversions.
    pub worn_cells: u64,
}

/// One arm (drift corner × maintenance policy) of the lifetime study.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeArm {
    /// Drift corner label (`typical` / `aggressive`).
    pub corner: String,
    /// Whether the maintenance scheduler intervenes.
    pub maintained: bool,
    /// Accuracy at virtual time zero (faults injected, no drift).
    pub fresh_accuracy: f64,
    /// Accuracy at the final checkpoint.
    pub final_accuracy: f64,
    /// Mean recall energy per query, joules (fresh-state probes).
    pub recall_energy_per_query_j: f64,
    /// Refresh write energy over the horizon ÷ recall energy over the
    /// horizon — the maintenance tax CI bounds at 10 %.
    pub refresh_overhead: f64,
    /// Maintenance checks run.
    pub checks: u64,
    /// Total template refreshes (margin- plus schedule-triggered).
    pub refreshes: u64,
    /// Margin-triggered refreshes.
    pub margin_refreshes: u64,
    /// Wall-clock-scheduled refreshes.
    pub scheduled_refreshes: u64,
    /// Wear-leveled migrations.
    pub migrations: u64,
    /// Log-spaced checkpoints.
    pub points: Vec<LifetimePoint>,
}

/// The lifetime study (E20).
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeStudy {
    /// Virtual seconds one query represents.
    pub query_period_s: f64,
    /// Queries in the simulated horizon.
    pub horizon_queries: f64,
    /// DOM acceptance threshold the probes recall under.
    pub dom_threshold: u32,
    /// Stuck-cell rate of the manufacturing fault map (E13 distribution).
    pub fault_rate: f64,
    /// The four arms: {typical, aggressive} × {maintained, unmaintained}.
    pub arms: Vec<LifetimeArm>,
}

/// Lifetime study (E20): recognition accuracy, energy and refresh
/// overhead over a long virtual-time traffic horizon (10⁶ queries quick,
/// 10⁹-equivalent full), with and without the `spinamm-lifetime`
/// maintenance scheduler, under the E13 manufacturing-fault distribution
/// at the TYPICAL and AGGRESSIVE drift corners.
///
/// Uniform median drift rescales every column together, so *ranking*
/// survives long after absolute DOM margins collapse — the probes
/// therefore recall under the paper's DOM acceptance threshold, where
/// unmaintained drift turns stored patterns into rejections.
///
/// # Errors
///
/// Propagates dataset/AMM/scheduler errors.
pub fn lifetime_study(scale: &Scale) -> Result<LifetimeStudy, CoreError> {
    use spinamm_core::degrade::DegradationPolicy;
    use spinamm_faults::{FaultMap, FaultModel};
    use spinamm_lifetime::{LifetimeError, MaintenanceConfig, MaintenanceScheduler};
    use spinamm_memristor::DriftModel;

    /// Virtual seconds of wall time one query represents (200 q/s per
    /// module — a conservative duty cycle for an always-on recognizer).
    const QUERY_PERIOD: f64 = 0.005;
    /// E13 stuck-cell rate.
    const FAULT_RATE: f64 = 0.01;
    /// DOM acceptance threshold: two LSBs of headroom under the fresh
    /// worst-case matching DOM at template resolution.
    const DOM_THRESHOLD: u32 = 24;
    /// Endurance budget for the maintained arms: refreshes spend ~1.5e5
    /// pulses per cell over the full horizon, well inside a 10⁶-cycle
    /// RRAM part — the counter stays live without manufacturing wear-out.
    const MAX_CYCLES: u64 = 1_000_000;

    let full = scale.queries >= 100;
    let checkpoints: &[f64] = if full {
        &[1e6, 1e7, 1e8, 1e9]
    } else {
        &[1e4, 1e5, 1e6]
    };
    let horizon_queries = *checkpoints.last().expect("non-empty");

    let lifetime_err = |e: LifetimeError| match e {
        LifetimeError::Core(c) => c,
        _ => CoreError::InvalidParameter {
            what: "lifetime scheduler failure",
        },
    };

    let data = face_dataset(scale)?;
    let target = Resolution::template();
    let templates = data.templates(target, 5)?;
    let tests = data.test_vectors(target, 5)?;
    // Accuracy probes: enough that a single near-tie recall flipping on
    // ±1 ADC code (the 5-bit DOM quantization makes argmax ties common)
    // moves the estimate by well under the 2-point acceptance band.
    let probes: Vec<&(usize, Vec<u32>)> = tests.iter().take(scale.queries.min(200)).collect();
    let rows = templates[0].len();
    let config = AmmConfig {
        dom_threshold: DOM_THRESHOLD,
        spare_columns: 2,
        ..AmmConfig::default()
    };

    let accuracy_of = |amm: &mut AssociativeMemoryModule| -> Result<f64, CoreError> {
        let mut correct = 0usize;
        for (label, input) in &probes {
            if amm.recall(input)?.winner == Some(*label) {
                correct += 1;
            }
        }
        Ok(correct as f64 / probes.len() as f64)
    };

    let mut arms = Vec::new();
    for (corner, model) in [
        ("typical", DriftModel::TYPICAL),
        ("aggressive", DriftModel::AGGRESSIVE),
    ] {
        for maintained in [true, false] {
            let mut amm = AssociativeMemoryModule::build(&templates, &config)?;
            let map = FaultMap::sample(
                &FaultModel::stuck(FAULT_RATE).map_err(CoreError::Faults)?,
                rows,
                amm.array().cols(),
                0xfa11,
            )
            .map_err(CoreError::Faults)?;
            amm.inject_faults(map, &DegradationPolicy::default())?;
            let fresh_accuracy = accuracy_of(&mut amm)?;
            let energy_probes = probes.len().min(8);
            let mut recall_energy = 0.0;
            for (_, input) in probes.iter().take(energy_probes) {
                recall_energy += amm.power_report(input)?.energy.total().0;
            }
            let recall_energy = recall_energy / energy_probes as f64;

            let base = if maintained {
                MaintenanceConfig {
                    max_cycles: Some(MAX_CYCLES),
                    ..MaintenanceConfig::new(model)
                }
            } else {
                MaintenanceConfig::monitor(model)
            };
            // The margin predictor assumes a fully-driven column, which
            // overestimates the DOM a real query loses by roughly the
            // full-scale-current / LSB ratio (~17-25× here). Checks run
            // every 200 virtual seconds; at the aggressive corner the
            // front-loaded log drift erodes ~7 % of conductance per
            // inter-check interval, a predicted ~30-40 LSB against the
            // 25-LSB budget — so every live column refreshes each check
            // while the *actual* matching-DOM loss stays under ~2 LSB of
            // the acceptance headroom. At the typical corner the
            // predicted erosion never reaches the budget and the arms
            // coast on retention alone.
            let mconfig = MaintenanceConfig {
                query_period: Seconds(QUERY_PERIOD),
                check_period: Seconds(200.0),
                margin_budget_lsb: 25.0,
                ..base
            };
            let mut sched = MaintenanceScheduler::new(amm, mconfig).map_err(lifetime_err)?;

            let mut points = Vec::new();
            for &q in checkpoints {
                sched
                    .advance_to(Seconds(q * QUERY_PERIOD))
                    .map_err(lifetime_err)?;
                let accuracy = accuracy_of(sched.module_mut().map_err(lifetime_err)?)?;
                let s = sched.stats();
                points.push(LifetimePoint {
                    queries: q,
                    virtual_seconds: q * QUERY_PERIOD,
                    accuracy,
                    refreshes: s.refreshes,
                    refresh_pulses: s.refresh_pulses,
                    refresh_energy_j: s.refresh_energy.0,
                    worn_cells: s.worn_cells,
                });
            }
            let s = sched.stats();
            arms.push(LifetimeArm {
                corner: corner.to_string(),
                maintained,
                fresh_accuracy,
                final_accuracy: points.last().expect("non-empty").accuracy,
                recall_energy_per_query_j: recall_energy,
                refresh_overhead: s.refresh_energy.0 / (recall_energy * horizon_queries),
                checks: s.checks,
                refreshes: s.refreshes,
                margin_refreshes: s.margin_refreshes,
                scheduled_refreshes: s.scheduled_refreshes,
                migrations: s.migrations,
                points,
            });
        }
    }

    Ok(LifetimeStudy {
        query_period_s: QUERY_PERIOD,
        horizon_queries,
        dom_threshold: DOM_THRESHOLD,
        fault_rate: FAULT_RATE,
        arms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Scale {
        Scale::quick()
    }

    #[test]
    fn fig3a_quick_trends() {
        let rows = fig3a(&quick()).unwrap();
        assert_eq!(rows.len(), 3);
        // Accuracy at 16×8 should beat the 2-pixel degenerate case.
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert!(first.ideal > last.ideal);
        assert!(first.hardware > last.hardware);
        assert!(first.ideal > 0.85, "ideal at 16x8: {}", first.ideal);
    }

    #[test]
    fn fig3b_quick_resolution_trend() {
        let rows = fig3b(&quick()).unwrap();
        assert_eq!(rows.len(), 2);
        // 5-bit hardware tracks ideal; 3-bit loses accuracy.
        let three = &rows[0];
        let five = &rows[1];
        assert!(five.hardware >= three.hardware);
        assert!(five.hardware >= five.ideal - 0.1);
    }

    #[test]
    fn fig5b_threshold_scaling() {
        let rows = fig5b(&[0.5, 1.0]).unwrap();
        assert!((rows[1].analytic - 1e-6).abs() / 1e-6 < 1e-9);
        // Quadratic area scaling.
        assert!((rows[0].analytic / rows[1].analytic - 0.25).abs() < 1e-9);
        for r in &rows {
            assert!((r.simulated - r.analytic).abs() / r.analytic < 0.25);
        }
    }

    #[test]
    fn fig5c_switching_trends() {
        let rows = fig5c(&[1.0], &[0.5, 2.0, 4.0, 8.0]).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows[0].time.is_none(), "below threshold");
        let t2 = rows[1].time.unwrap();
        let t8 = rows[3].time.unwrap();
        assert!(t2 > t8);
    }

    #[test]
    fn fig7a_hysteresis_and_smearing() {
        let study = fig7a(51);
        assert_eq!(study.hysteresis.len(), 102);
        assert_eq!(study.thermal.len(), 51);
        // The thermal curve is monotone and spans (0, 1).
        let first = study.thermal.first().unwrap().1;
        let last = study.thermal.last().unwrap().1;
        assert!(first < 0.01);
        assert!(last > 0.99);
    }

    #[test]
    fn fig8b_inl_grows_with_loading() {
        let curves = fig8b(&[100.0, 2.0, 0.5]).unwrap();
        assert!(curves[0].inl < curves[1].inl);
        assert!(curves[1].inl < curves[2].inl);
        assert_eq!(curves[0].transfer.len(), 32);
    }

    #[test]
    fn table1_quick_shape() {
        let rows = table1(&quick(), &[5, 3]).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // The proposed design wins by orders of magnitude.
            assert!(r.spin_power < 1e-3, "spin power {}", r.spin_power);
            assert!(r.dlugosz_power > 10.0 * r.spin_power);
            assert!(r.energy_ratios.iter().all(|&x| x > 10.0));
            // Digital is the most energy-hungry per op.
            assert!(r.energy_ratios[2] > r.energy_ratios[0]);
        }
    }

    #[test]
    fn table2_lists_parameters() {
        let s = table2();
        assert!(s.contains("16x8"));
        assert!(s.contains("Ic = 1"));
    }

    #[test]
    fn fig13a_static_scales_with_threshold() {
        let rows = fig13a(&quick(), &[0.5, 2.0]).unwrap();
        assert!(rows[1].static_power > 2.0 * rows[0].static_power);
        // Dynamic power stays within a factor ~2 across the sweep.
        let dyn_ratio = rows[1].dynamic_power / rows[0].dynamic_power;
        assert!(dyn_ratio < 2.0, "dynamic ratio {dyn_ratio}");
    }

    #[test]
    fn fig13b_ratio_grows_with_sigma() {
        let rows = fig13b(&quick(), &[5.0, 15.0]).unwrap();
        assert!(rows[1].ratio_andreou > 5.0 * rows[0].ratio_andreou);
        assert!(
            rows[0].ratio_dlugosz > 1.0,
            "MS-CMOS must be worse even at 5 mV"
        );
    }

    #[test]
    fn ablation_study_shows_design_choices_matter() {
        let rows = ablation_study(&quick()).unwrap();
        assert_eq!(rows.len(), 3);
        let baseline = &rows[0];
        let no_gain = &rows[2];
        assert!(baseline.accuracy > 0.5);
        // Without gain calibration the signal uses a fraction of the ADC
        // range: margins (in LSB) collapse and accuracy falls.
        assert!(
            no_gain.margin < 0.5 * baseline.margin,
            "no-gain margin {} vs baseline {}",
            no_gain.margin,
            baseline.margin
        );
        assert!(no_gain.accuracy <= baseline.accuracy);
        // Tracker agreement is high whenever codes are unambiguous.
        assert!(baseline.tracker_agreement > 0.5);
    }

    #[test]
    fn settling_study_fits_the_cycle() {
        let rows = settling_study().unwrap();
        assert!(rows.len() >= 3);
        for r in &rows {
            assert!(
                r.within_cycle,
                "{} takes {} s — outside the 10 ns cycle",
                r.label, r.time
            );
            assert!(r.time > 0.0 && r.time < 10e-9);
        }
    }

    #[test]
    fn noise_robustness_trend() {
        let rows = noise_robustness_study(&quick(), &[1, 24]).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].hardware > 0.8, "light noise: {}", rows[0].hardware);
        assert!(
            rows[1].hardware < rows[0].hardware - 0.05,
            "±24-level jitter must visibly degrade: {} vs {}",
            rows[1].hardware,
            rows[0].hardware
        );
        // Hardware never beats software by more than sampling noise.
        for r in &rows {
            assert!(r.hardware <= r.ideal + 0.1);
        }
    }

    #[test]
    fn disturb_study_shape() {
        let rows = disturb_study(8, 6).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].corrupted_cells, 0, "safe V/2 must not disturb");
        assert!(rows[1].corrupted_cells > 0, "violated margin must corrupt");
        assert_eq!(rows[2].corrupted_cells, 0, "1T1R never disturbs");
        assert!(rows[0].exposure > 0.0 && rows[2].exposure == 0.0);
    }

    #[test]
    fn write_precision_trade_off() {
        let rows = write_precision_study(&quick(), &[0.003, 0.03, 0.3]).unwrap();
        assert_eq!(rows.len(), 3);
        // Tighter tolerance costs more pulses...
        assert!(rows[0].mean_pulses > rows[1].mean_pulses);
        assert!(rows[1].mean_pulses >= rows[2].mean_pulses);
        // ...while very sloppy writes lose accuracy.
        assert!(
            rows[2].accuracy <= rows[1].accuracy,
            "30 % writes {} should not beat 3 % writes {}",
            rows[2].accuracy,
            rows[1].accuracy
        );
    }

    #[test]
    fn drift_study_degrades_then_refreshes() {
        let rows = drift_study(&quick(), &[1.0, 1e8]).unwrap();
        assert_eq!(rows.len(), 2);
        // Fresh-ish templates work; heavily aged ones lose accuracy; a
        // refresh restores it.
        assert!(rows[0].accuracy > 0.5);
        assert!(rows[1].accuracy <= rows[0].accuracy);
        assert!(rows[1].refreshed_accuracy >= rows[1].accuracy);
    }

    #[test]
    fn yield_study_degrades_gracefully() {
        let rows = yield_study(&quick()).unwrap();
        assert_eq!(rows.len(), 4);
        for pair in rows.windows(2) {
            assert!(pair[0].fault_rate < pair[1].fault_rate, "rates monotone");
        }
        for r in &rows {
            for acc in [r.unmitigated_accuracy, r.mitigated_accuracy] {
                assert!((0.0..=1.0).contains(&acc), "accuracy {acc} out of range");
            }
        }
        // Injecting a pristine map is a no-op: the unmitigated zero-fault
        // point reproduces the fig3a 16×8 hardware accuracy exactly.
        let fig = fig3a(&quick()).unwrap();
        assert_eq!(rows[0].unmitigated_accuracy, fig[0].hardware);
        // Graceful degradation: at the 5 % rate, remapping + masking keep
        // at least half of the unmitigated accuracy drop.
        let r5 = &rows[2];
        assert!((r5.fault_rate - 0.05).abs() < 1e-12);
        let unmit_drop = rows[0].unmitigated_accuracy - r5.unmitigated_accuracy;
        let mit_drop = rows[0].mitigated_accuracy - r5.mitigated_accuracy;
        assert!(
            unmit_drop > 0.0,
            "5 % stuck cells must hurt an unprotected module"
        );
        assert!(
            mit_drop <= 0.5 * unmit_drop,
            "mitigated drop {mit_drop} vs unmitigated {unmit_drop}"
        );
        assert!(r5.remapped > 0, "5 % rate should trigger remaps");
    }

    #[test]
    fn engine_scale_study_is_bit_identical_everywhere() {
        let study = engine_scale_study(&quick()).unwrap();
        // quick sweep: shards {1,2} × workers {1,2,4} × batch {8}.
        assert_eq!(study.rows.len(), 6);
        assert!(study.host_cpus >= 1);
        for r in &study.rows {
            assert!(
                r.bit_identical,
                "{}s/{}w/{}b diverged",
                r.shards, r.workers, r.batch
            );
            assert!(r.throughput_qps > 0.0);
            assert!(r.wall_seconds > 0.0);
            assert!(r.speedup_vs_1worker > 0.0);
        }
        // Every (shards, batch) group leads with its own 1-worker baseline.
        for group in study.rows.chunks(3) {
            assert_eq!(group[0].workers, 1);
            assert!((group[0].speedup_vs_1worker - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn profile_study_quick_shape() {
        let study = profile_study(&quick()).unwrap();
        assert_eq!(study.rows.len(), 3);
        assert!(study.host_cpus >= 1);
        for r in &study.rows {
            assert!(r.bit_identical, "{} workers diverged", r.workers);
            assert_eq!(r.sampled, r.queries as u64, "rate-1.0 must sample all");
            assert!(r.throughput_qps > 0.0);
            // Percentiles of a log-bucketed histogram are monotone.
            assert!(r.p50_us > 0.0);
            assert!(r.p50_us <= r.p90_us);
            assert!(r.p90_us <= r.p99_us);
            assert!(r.p99_us <= r.p999_us);
            assert!(r.p999_us <= r.max_us * 1.04, "bucket error bound");
            assert!(r.queue_wait_p99_us >= 0.0);
        }
        // The flamegraph table covers the engine pipeline phases.
        let names: Vec<&str> = study.phases.iter().map(|p| p.name.as_str()).collect();
        for phase in ["engine.recall", "queue_wait", "evaluate", "select"] {
            assert!(names.contains(&phase), "missing {phase}: {names:?}");
        }
        for p in &study.phases {
            assert!(p.self_us <= p.total_us + 1e-9);
            assert!(p.count > 0);
        }
        // Overhead ratios are sane (gating happens in CI against the
        // baseline, with noise guards; here we only require positivity).
        assert!(study.noop_overhead_ratio > 0.0);
        assert!(study.traced_overhead_ratio > 0.0);
        assert!(study.chrome_trace_json.contains("traceEvents"));
        assert!(study.exemplars_json.starts_with('['));
    }

    #[test]
    fn conformance_study_is_clean_at_quick_scale() {
        let study = conformance_study(&quick()).unwrap();
        assert_eq!(study.cases, 40);
        assert_eq!(
            study.unwaived_divergences, 0,
            "fresh repros: {:?}",
            study.fresh_repros
        );
        assert!(
            study.injected_caught,
            "committed perturbed repro not re-caught"
        );
        assert!(study.corpus_repros_replayed >= 2);
        assert!(study.checks > study.cases);
        assert!(study.fresh_repros.is_empty());
        assert!(study.flat_partitioned_agreement >= 0.90);
        assert!(study.flat_hierarchical_agreement >= 0.85);
        assert!(study.flat_tiled_agreement >= 0.90);
    }

    #[test]
    fn capacity_study_quick_shape() {
        let study = capacity_study(&quick()).unwrap();
        // quick sweep: templates {1e3, 1e4} × k {1, 5, 10}.
        assert_eq!(study.rows.len(), 6);
        assert!(study.host_cpus >= 1);
        assert_eq!(study.tile_capacity, 128);
        for r in &study.rows {
            assert!(
                r.topk_matches_oracle,
                "{} templates k={} diverged from the argsort oracle",
                r.templates, r.k
            );
            assert!(
                r.top1_matches_wta,
                "{} templates k={} broke the legacy single-winner rule",
                r.templates, r.k
            );
            assert!(r.engine_checked, "quick counts all fit the engine check");
            assert!(
                r.engine_identical,
                "{} templates k={} engine diverged",
                r.templates, r.k
            );
            assert!(r.throughput_qps > 0.0);
            assert!(r.energy_per_query_j > 0.0);
            assert_eq!(r.tiles, r.templates.div_ceil(study.tile_capacity));
            assert!(r.compiled_tiles <= r.tiles);
        }
    }

    #[test]
    fn serve_study_quick_invariants() {
        let study = serve_study(&quick()).unwrap();
        assert_eq!(study.rows.len(), 3);
        assert!(study.host_cpus >= 1);
        assert!(study.total_queries > 1_000);
        assert!(study.wall_seconds > 0.0);
        for r in &study.rows {
            assert!(r.served_identical, "{}: served != direct engine", r.tenant);
            assert!(r.saturation_qps > 0.0, "{}: no saturation", r.tenant);
            assert!(r.served > 0, "{}: nothing served open-loop", r.tenant);
            assert_eq!(
                r.served + r.rejected_over_quota + r.rejected_saturated,
                r.offered,
                "{}: admission accounting must add up",
                r.tenant
            );
            assert!(
                r.p50_us <= r.p99_us && r.p99_us <= r.p999_us,
                "{}: percentiles out of order",
                r.tenant
            );
            assert!(r.mean_energy_j > 0.0, "{}: no energy", r.tenant);
            if r.quota_qps == 0.0 {
                assert_eq!(r.rejected_over_quota, 0, "{}: spurious 429s", r.tenant);
            } else {
                assert!(r.rejected_over_quota > 0, "{}: quota never bit", r.tenant);
            }
        }
        let kinds: Vec<&str> = study.rows.iter().map(|r| r.kind.as_str()).collect();
        assert!(kinds.contains(&"flat") && kinds.contains(&"tiled"));
    }

    #[test]
    fn plan_study_is_bit_identical_and_in_budget() {
        let study = plan_study(&quick()).unwrap();
        assert_eq!(study.rows.len(), 3);
        for r in &study.rows {
            assert!(
                r.bit_identical,
                "{} plan diverged from interpreted",
                r.fidelity
            );
            assert!(r.plan_seconds > 0.0 && r.interpreted_seconds > 0.0);
        }
        assert_eq!(study.f32_unwaived_divergences, 0);
        assert!(study.f32_queries > 0);
        assert!(study.f32_max_current_rel >= 0.0);
        // Timing thresholds live in ci/regression_gate.py, not here — a
        // loaded test host must not flake the suite. Only sanity-order:
        // the driven plan must not be slower than interpreted.
        let driven = study.rows.iter().find(|r| r.fidelity == "driven").unwrap();
        assert!(driven.speedup > 1.0, "driven speedup {}", driven.speedup);
    }

    #[test]
    fn hierarchy_study_runs() {
        let rows = hierarchy_study(&quick(), &[1, 2]).unwrap();
        assert_eq!(rows.len(), 2);
        // At this miniature scale (8 patterns, 2 clusters) the two-level
        // organisation saves column evaluations but pays a second input
        // conversion; the win materialises at larger pattern counts (see
        // the hierarchy bench). Here we only require the same order.
        assert!(rows[1].energy < 2.0 * rows[0].energy);
        assert!(rows[0].accuracy > 0.5);
        assert!(rows[1].energy > 0.0 && rows[1].accuracy >= 0.0);
    }
}
