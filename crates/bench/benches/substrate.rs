//! Criterion benches for the substrate kernels: the linear solvers, the
//! crossbar evaluations, programming, and the face-image pipeline — the
//! building blocks every experiment rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spinamm_circuit::prelude::*;
use spinamm_circuit::sparse::ConjugateGradient;
use spinamm_crossbar::{CrossbarArray, CrossbarGeometry, ParasiticCrossbar, RowDrive};
use spinamm_data::dataset::{DatasetConfig, FaceDataset};
use spinamm_data::image::Resolution;
use spinamm_memristor::{DeviceLimits, LevelMap, WriteScheme};
use std::hint::black_box;

fn grid_netlist(n: usize) -> Netlist {
    let mut net = Netlist::new();
    let mut ids = Vec::new();
    for r in 0..n {
        for c in 0..n {
            ids.push(net.node(format!("g{r}_{c}")));
        }
    }
    let at = |r: usize, c: usize| ids[r * n + c];
    for r in 0..n {
        for c in 0..n {
            if c + 1 < n {
                net.resistor(at(r, c), at(r, c + 1), Ohms(100.0));
            }
            if r + 1 < n {
                net.resistor(at(r, c), at(r + 1, c), Ohms(100.0));
            }
        }
    }
    net.voltage_source(at(0, 0), Volts(0.03));
    net.resistor(at(n - 1, n - 1), Netlist::GROUND, Ohms(1e3));
    net
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);

    for n in [8usize, 16, 32] {
        let net = grid_netlist(n);
        group.bench_with_input(BenchmarkId::new("grid_solve", n * n), &net, |b, net| {
            b.iter(|| {
                black_box(
                    net.solve_dc_with(SolveMethod::SparseCg(ConjugateGradient::new(1e-10)))
                        .unwrap(),
                )
            });
        });
    }

    // Crossbar evaluations at paper size.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let map = LevelMap::new(DeviceLimits::PAPER, 5).unwrap();
    let scheme = WriteScheme::paper();
    let mut array = CrossbarArray::new(128, 40, DeviceLimits::PAPER).unwrap();
    for j in 0..40 {
        let levels: Vec<u32> = (0..128).map(|i| ((i * 5 + j * 3) % 32) as u32).collect();
        array
            .program_pattern(j, &levels, &map, &scheme, &mut rng)
            .unwrap();
    }
    array.equalize_rows(None).unwrap();
    let drives = vec![
        RowDrive::SourceConductance {
            g: Siemens(3e-4),
            supply: Volts(0.03),
        };
        128
    ];
    group.bench_function("driven_eval_128x40", |b| {
        b.iter(|| black_box(array.driven_column_currents(&drives).unwrap()));
    });
    let pc = ParasiticCrossbar::new(CrossbarGeometry::PAPER);
    group.bench_function("parasitic_eval_128x40", |b| {
        b.iter(|| black_box(pc.evaluate(&array, &drives).unwrap()));
    });

    group.bench_function("program_pattern_128", |b| {
        let levels: Vec<u32> = (0..128).map(|i| (i % 32) as u32).collect();
        b.iter(|| {
            array
                .program_pattern(0, &levels, &map, &scheme, &mut rng)
                .unwrap()
        });
    });

    // Face pipeline: render + reduce one image.
    let data = FaceDataset::generate(&DatasetConfig {
        individuals: 1,
        samples_per_individual: 1,
        ..DatasetConfig::default()
    })
    .unwrap();
    let image = data.image(0, 0).unwrap().clone();
    group.bench_function("face_reduce_128x96_to_16x8", |b| {
        b.iter(|| black_box(FaceDataset::reduce(&image, Resolution::template(), 5).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
