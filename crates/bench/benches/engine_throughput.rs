//! Engine-throughput benchmark: the sharded recall service vs a sequential
//! recall loop over the same partitioned deployment, at one and four
//! workers. Worker scaling is bounded by host parallelism (the study's
//! `host_cpus` context field); the invariant the engine is allowed to claim
//! everywhere is bit-identity, which the determinism suite gates.

use criterion::{criterion_group, criterion_main, Criterion};
use spinamm_core::partition::PartitionedAmm;
use spinamm_core::{AmmConfig, Fidelity};
use spinamm_engine::{Deployment, EngineConfig, RecallEngine};
use std::hint::black_box;

const ROWS: usize = 64;
const COLS: usize = 16;
const SHARDS: usize = 4;
const QUERIES: usize = 8;

fn deployment() -> Deployment {
    let patterns: Vec<Vec<u32>> = (0..COLS)
        .map(|j| (0..ROWS).map(|i| ((i * 5 + j * 3) % 32) as u32).collect())
        .collect();
    let cfg = AmmConfig {
        fidelity: Fidelity::Parasitic,
        ..AmmConfig::default()
    };
    Deployment::Partitioned(PartitionedAmm::build(&patterns, SHARDS, &cfg).unwrap())
}

fn queries() -> Vec<Vec<u32>> {
    (0..QUERIES)
        .map(|q| (0..ROWS).map(|i| ((i * 7 + q * 11) % 32) as u32).collect())
        .collect()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let inputs = queries();
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(5);

    let mut sequential = deployment();
    group.bench_function("sequential_64x16_4shards_8q", |b| {
        b.iter(|| {
            for input in &inputs {
                black_box(sequential.recall(input).unwrap());
            }
        });
    });

    for workers in [1usize, 4] {
        let engine = RecallEngine::new(
            deployment(),
            &EngineConfig::builder()
                .workers(workers)
                .queue_capacity(QUERIES)
                .use_plans(false)
                .build(),
        );
        group.bench_function(format!("engine_{workers}w_64x16_4shards_8q"), |b| {
            b.iter(|| black_box(engine.recall_many(&inputs).unwrap()));
        });
        engine.shutdown();
    }

    // Plan-enabled workers: each worker compiles its deployment clone into
    // a PartitionedPlan at spawn and serves queries through the flat
    // kernel (bit-identical by contract, so only the timing may move).
    for workers in [1usize, 4] {
        let engine = RecallEngine::new(
            deployment(),
            &EngineConfig::builder()
                .workers(workers)
                .queue_capacity(QUERIES)
                .use_plans(true)
                .build(),
        );
        group.bench_function(format!("engine_plan_{workers}w_64x16_4shards_8q"), |b| {
            b.iter(|| black_box(engine.recall_many(&inputs).unwrap()));
        });
        engine.shutdown();
    }

    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
