//! Criterion bench for the Fig. 5 domain-wall scaling studies (E3/E4):
//! times the RK4 transient integrator and the bisected threshold search.

use criterion::{criterion_group, criterion_main, Criterion};
use spinamm_bench::experiments;
use spinamm_circuit::units::Amps;
use spinamm_spin::dynamics::DwDynamics;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);

    let d = DwDynamics::paper_reference();
    group.bench_function("transient_2uA", |b| {
        b.iter(|| black_box(d.simulate(Amps(2e-6))));
    });

    group.bench_function("critical_current_bisection", |b| {
        b.iter(|| black_box(d.critical_current().unwrap()));
    });

    group.bench_function("fig5b_sweep", |b| {
        b.iter(|| experiments::fig5b(black_box(&[0.5, 1.0, 2.0])).unwrap());
    });

    group.bench_function("fig5c_sweep", |b| {
        b.iter(|| experiments::fig5c(black_box(&[1.0, 0.5]), black_box(&[2.0, 4.0, 8.0])).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
