//! Criterion bench for the Fig. 13 power studies (E9/E10).

use criterion::{criterion_group, criterion_main, Criterion};
use spinamm_bench::{experiments, Scale};
use std::hint::black_box;

fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);

    group.bench_function("fig13a_quick", |b| {
        b.iter(|| experiments::fig13a(black_box(&Scale::quick()), &[0.5, 1.0, 2.0]).unwrap());
    });

    group.bench_function("fig13b_quick", |b| {
        b.iter(|| experiments::fig13b(black_box(&Scale::quick()), &[5.0, 15.0, 25.0]).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
