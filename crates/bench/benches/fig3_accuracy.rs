//! Criterion bench for the Fig. 3 accuracy studies (E1/E2 in DESIGN.md):
//! times the full template-build + recognition sweep at miniature scale and
//! the single-recognition kernel at paper scale.

use criterion::{criterion_group, criterion_main, Criterion};
use spinamm_bench::{experiments, Scale};
use spinamm_core::amm::{AmmConfig, AssociativeMemoryModule};
use spinamm_data::image::Resolution;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);

    group.bench_function("fig3a_quick_sweep", |b| {
        b.iter(|| experiments::fig3a(black_box(&Scale::quick())).unwrap());
    });

    group.bench_function("fig3b_quick_sweep", |b| {
        b.iter(|| experiments::fig3b(black_box(&Scale::quick())).unwrap());
    });

    // The per-recognition kernel at the paper's full 128×40 size.
    let data = experiments::face_dataset(&Scale::full()).unwrap();
    let templates = data.templates(Resolution::template(), 5).unwrap();
    let tests = data.test_vectors(Resolution::template(), 5).unwrap();
    let mut amm = AssociativeMemoryModule::build(&templates, &AmmConfig::default()).unwrap();
    group.bench_function("recall_128x40", |b| {
        let mut k = 0;
        b.iter(|| {
            let input = &tests[k % tests.len()].1;
            k += 1;
            black_box(amm.recall(input).unwrap())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
