//! Criterion benches for the extension and ablation machinery: partitioned
//! and hierarchical recall, retention aging, programming disturb, and the
//! RC transient solver.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spinamm_circuit::prelude::*;
use spinamm_core::amm::AmmConfig;
use spinamm_core::hierarchy::HierarchicalAmm;
use spinamm_core::partition::PartitionedAmm;
use spinamm_crossbar::{ArrayProgrammer, BiasScheme, CrossbarArray};
use spinamm_data::workload::{PatternWorkload, WorkloadConfig};
use spinamm_memristor::{DeviceLimits, DriftModel, LevelMap};
use std::hint::black_box;

fn workload() -> PatternWorkload {
    PatternWorkload::generate(&WorkloadConfig {
        pattern_count: 16,
        vector_len: 64,
        bits: 5,
        query_count: 8,
        query_noise: 0.1,
        noise_magnitude: 1,
        similarity: 0.3,
        seed: 5,
    })
    .unwrap()
}

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);

    let w = workload();
    let cfg = AmmConfig::default();

    group.bench_function("partitioned_recall_4seg", |b| {
        let mut p = PartitionedAmm::build(&w.patterns, 4, &cfg).unwrap();
        let mut k = 0;
        b.iter(|| {
            let q = &w.queries[k % w.queries.len()].1;
            k += 1;
            black_box(p.recall(q).unwrap())
        });
    });

    group.bench_function("hierarchical_recall_4cl", |b| {
        let mut h = HierarchicalAmm::build(&w.patterns, 4, &cfg).unwrap();
        let mut k = 0;
        b.iter(|| {
            let q = &w.queries[k % w.queries.len()].1;
            k += 1;
            black_box(h.recall(q).unwrap())
        });
    });

    group.bench_function("array_aging_32x16", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut array = CrossbarArray::new(32, 16, DeviceLimits::PAPER).unwrap();
        array.equalize_rows(None).unwrap();
        b.iter(|| {
            array
                .age(Seconds(1e6), &DriftModel::TYPICAL, &mut rng)
                .unwrap();
        });
    });

    group.bench_function("programming_disturb_8x6", |b| {
        let map = LevelMap::new(DeviceLimits::PAPER, 5).unwrap();
        let targets: Vec<u32> = (0..48).map(|k| (k * 11 % 32) as u32).collect();
        let programmer = ArrayProgrammer::safe(BiasScheme::HalfVoltage);
        b.iter(|| {
            let mut array = CrossbarArray::new(8, 6, DeviceLimits::PAPER).unwrap();
            black_box(
                programmer
                    .program(&mut array, &targets, &map, 0.03)
                    .unwrap(),
            )
        });
    });

    group.bench_function("transient_rc_ladder_400steps", |b| {
        let mut net = Netlist::new();
        let nodes = net.nodes(20);
        net.voltage_source(nodes[0], Volts(0.03));
        for w in nodes.windows(2) {
            net.resistor(w[0], w[1], Ohms(100.0));
            net.capacitor(w[1], Netlist::GROUND, Farads(1e-15));
        }
        let analysis =
            spinamm_circuit::transient::TransientAnalysis::new(Seconds(5e-13), Seconds(2e-10))
                .unwrap();
        b.iter(|| black_box(analysis.run(&net).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
