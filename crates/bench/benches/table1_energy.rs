//! Criterion bench for the Table 1 comparison (E11) and the §5 hierarchy
//! extension: times the whole comparison sweep and the per-recognition
//! energy accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use spinamm_bench::{experiments, Scale};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    group.bench_function("table1_quick", |b| {
        b.iter(|| experiments::table1(black_box(&Scale::quick()), &[5, 3]).unwrap());
    });

    group.bench_function("hierarchy_quick", |b| {
        b.iter(|| experiments::hierarchy_study(black_box(&Scale::quick()), &[1, 2]).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
