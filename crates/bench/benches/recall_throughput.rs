//! Recall-throughput benchmark for the reusable-solver-state work: repeated
//! parasitic evaluations of a paper-scale 128×40 crossbar, cold (netlist
//! rebuilt and refactored per query) vs cached (netlist restamped, with the
//! IC(0) preconditioner and warm starts reused), plus the end-to-end
//! sequential vs batched recall path of the full module.
//!
//! The cached/cold ratio printed at the end is the headline number: the
//! session cache must make repeated parasitic recalls several times faster
//! than rebuilding the network every query.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spinamm_circuit::units::{Siemens, Volts};
use spinamm_core::{
    AmmConfig, AssociativeMemoryModule, Fidelity, PlanOptions, PlanPrecision, RecallRequest,
};
use spinamm_crossbar::{
    CachedParasiticCrossbar, CrossbarArray, CrossbarGeometry, ParasiticCrossbar, RowDrive,
};
use spinamm_memristor::{DeviceLimits, LevelMap, WriteScheme};
use spinamm_trace::{TraceConfig, Tracer};
use std::hint::black_box;
use std::time::Instant;

const ROWS: usize = 128;
const COLS: usize = 40;
const QUERIES: usize = 4;

fn paper_array() -> CrossbarArray {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let map = LevelMap::new(DeviceLimits::PAPER, 5).unwrap();
    let scheme = WriteScheme::paper();
    let mut array = CrossbarArray::new(ROWS, COLS, DeviceLimits::PAPER).unwrap();
    for j in 0..COLS {
        let levels: Vec<u32> = (0..ROWS).map(|i| ((i * 5 + j * 3) % 32) as u32).collect();
        array
            .program_pattern(j, &levels, &map, &scheme, &mut rng)
            .unwrap();
    }
    array.equalize_rows(None).unwrap();
    array
}

/// Distinct DTCS-style drive vectors, one per query, spanning the DAC's
/// conductance range so every query restamps every row.
fn query_drives() -> Vec<Vec<RowDrive>> {
    (0..QUERIES)
        .map(|q| {
            (0..ROWS)
                .map(|i| RowDrive::SourceConductance {
                    g: Siemens(1.0e-4 + ((i * 31 + q * 17) % 97) as f64 * 2.0e-6),
                    supply: Volts(0.03),
                })
                .collect()
        })
        .collect()
}

fn bench_recall_throughput(c: &mut Criterion) {
    let array = paper_array();
    let drives = query_drives();
    let mut group = c.benchmark_group("recall_throughput");
    group.sample_size(5);

    let cold = ParasiticCrossbar::new(CrossbarGeometry::PAPER);
    group.bench_function("cold_parasitic_128x40_4q", |b| {
        b.iter(|| {
            for d in &drives {
                black_box(cold.evaluate(&array, d).unwrap());
            }
        });
    });

    group.bench_function("cached_parasitic_128x40_4q", |b| {
        let mut cached = CachedParasiticCrossbar::new(CrossbarGeometry::PAPER);
        cached.evaluate(&array, &drives[0]).unwrap();
        b.iter(|| {
            for d in &drives {
                black_box(cached.evaluate(&array, d).unwrap());
            }
        });
    });

    // Headline ratio: one timed pass each, cache pre-warmed, same queries.
    let cold_start = Instant::now();
    for d in &drives {
        black_box(cold.evaluate(&array, d).unwrap());
    }
    let cold_time = cold_start.elapsed();
    let mut cached = CachedParasiticCrossbar::new(CrossbarGeometry::PAPER);
    cached.evaluate(&array, &drives[0]).unwrap();
    let cached_start = Instant::now();
    for d in &drives {
        black_box(cached.evaluate(&array, d).unwrap());
    }
    let cached_time = cached_start.elapsed();
    println!(
        "recall_throughput/speedup               cached {:.3?} vs cold {:.3?} -> {:.1}x",
        cached_time,
        cold_time,
        cold_time.as_secs_f64() / cached_time.as_secs_f64().max(1e-12),
    );

    // End-to-end module path: sequential recalls vs one batched call.
    let patterns: Vec<Vec<u32>> = (0..COLS)
        .map(|j| (0..ROWS).map(|i| ((i * 5 + j * 3) % 32) as u32).collect())
        .collect();
    let inputs: Vec<Vec<u32>> = (0..8)
        .map(|q| (0..ROWS).map(|i| ((i * 7 + q * 11) % 32) as u32).collect())
        .collect();
    let cfg = AmmConfig {
        fidelity: Fidelity::Parasitic,
        ..AmmConfig::default()
    };
    let mut amm = AssociativeMemoryModule::build(&patterns, &cfg).unwrap();
    group.bench_function("amm_sequential_128x40_8q", |b| {
        b.iter(|| {
            for input in &inputs {
                black_box(amm.recall(input).unwrap());
            }
        });
    });
    let mut amm = AssociativeMemoryModule::build(&patterns, &cfg).unwrap();
    group.bench_function("amm_batch_128x40_8q", |b| {
        b.iter(|| black_box(amm.recall_batch(&inputs).unwrap()));
    });

    // Compiled recall plans: the same parasitic module lowered once into a
    // flat allocation-free kernel, executed per query.
    let amm = AssociativeMemoryModule::build(&patterns, &cfg).unwrap();
    let mut plan = amm.compile_plan(PlanOptions::default()).unwrap();
    group.bench_function("amm_plan_128x40_8q", |b| {
        b.iter(|| {
            for input in &inputs {
                black_box(plan.execute(input).unwrap());
            }
        });
    });

    // Analytic (driven) fidelity: interpreted vs f64 plan vs the opt-in
    // f32 fast tier, the geometry where the flat correlate dominates.
    let driven_cfg = AmmConfig {
        fidelity: Fidelity::Driven,
        ..AmmConfig::default()
    };
    let mut driven = AssociativeMemoryModule::build(&patterns, &driven_cfg).unwrap();
    group.bench_function("amm_driven_sequential_128x40_8q", |b| {
        b.iter(|| {
            for input in &inputs {
                black_box(driven.recall(input).unwrap());
            }
        });
    });
    let driven = AssociativeMemoryModule::build(&patterns, &driven_cfg).unwrap();
    let mut driven_plan = driven.compile_plan(PlanOptions::default()).unwrap();
    group.bench_function("amm_driven_plan_128x40_8q", |b| {
        b.iter(|| {
            for input in &inputs {
                black_box(driven_plan.execute(input).unwrap());
            }
        });
    });
    let mut driven_plan_f32 = driven
        .compile_plan(PlanOptions {
            precision: PlanPrecision::F32,
        })
        .unwrap();
    group.bench_function("amm_driven_plan_f32_128x40_8q", |b| {
        b.iter(|| {
            for input in &inputs {
                black_box(driven_plan_f32.execute(input).unwrap());
            }
        });
    });

    // Headline plan ratios, measured interleaved min-of-N so the compared
    // passes see the same thermal/scheduling environment: each round times
    // every variant back to back, and each side keeps its best round.
    // `plan_speedup` — interpreted vs compiled plan at driven fidelity,
    // where the flat kernel is the whole query — is the number the
    // regression gate pins ≥ 5×. The parasitic ratio is printed too and
    // honestly hovers near 1×: both sides share the cached Cholesky/CG
    // solve, which dominates that fidelity.
    const ROUNDS: usize = 7;
    let mut interp = AssociativeMemoryModule::build(&patterns, &cfg).unwrap();
    interp.recall(&inputs[0]).unwrap(); // warm the parasitic session
    plan.execute(&inputs[0]).unwrap();
    let mut driven_interp = AssociativeMemoryModule::build(&patterns, &driven_cfg).unwrap();
    let mut best = [f64::MAX; 5];
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        for input in &inputs {
            black_box(interp.recall(input).unwrap());
        }
        best[0] = best[0].min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for input in &inputs {
            black_box(plan.execute(input).unwrap());
        }
        best[1] = best[1].min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for input in &inputs {
            black_box(driven_interp.recall(input).unwrap());
        }
        best[2] = best[2].min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for input in &inputs {
            black_box(driven_plan.execute(input).unwrap());
        }
        best[3] = best[3].min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for input in &inputs {
            black_box(driven_plan_f32.execute(input).unwrap());
        }
        best[4] = best[4].min(t0.elapsed().as_secs_f64());
    }
    println!(
        "recall_throughput/plan_speedup          plan {:.3e}s vs interpreted {:.3e}s (driven) -> {:.1}x",
        best[3],
        best[2],
        best[2] / best[3].max(1e-12),
    );
    println!(
        "recall_throughput/plan_parasitic_speedup plan {:.3e}s vs interpreted {:.3e}s (solve-bound) -> {:.2}x",
        best[1],
        best[0],
        best[0] / best[1].max(1e-12),
    );
    println!(
        "recall_throughput/plan_f32_speedup      f32 {:.3e}s vs f64 plan {:.3e}s -> {:.2}x",
        best[4],
        best[3],
        best[3] / best[4].max(1e-12),
    );

    // Tracing overhead: the same sequential recalls with a disabled tracer
    // (the production default — must be free) and with a sample-everything
    // tracer (the profiling configuration — small bounded cost).
    let noop = Tracer::disabled();
    let mut amm = AssociativeMemoryModule::build(&patterns, &cfg).unwrap();
    group.bench_function("amm_sequential_noop_traced_128x40_8q", |b| {
        let req = RecallRequest::DEFAULT.with_tracer(&noop);
        b.iter(|| {
            for input in &inputs {
                black_box(amm.recall_request(input, &req).unwrap());
            }
        });
    });
    let sampled = Tracer::new(&TraceConfig::default());
    let mut amm = AssociativeMemoryModule::build(&patterns, &cfg).unwrap();
    group.bench_function("amm_sequential_traced_128x40_8q", |b| {
        let req = RecallRequest::DEFAULT.with_tracer(&sampled);
        b.iter(|| {
            for input in &inputs {
                black_box(amm.recall_request(input, &req).unwrap());
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_recall_throughput);
criterion_main!(benches);
