//! Criterion bench for the Fig. 7a transfer-characteristic study (E5):
//! times the behavioural hysteresis sweep and the thermal smearing model.

use criterion::{criterion_group, criterion_main, Criterion};
use spinamm_bench::experiments;
use spinamm_circuit::units::{Amps, Seconds};
use spinamm_spin::thermal::ThermalModel;
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");

    group.bench_function("transfer_study_61pt", |b| {
        b.iter(|| black_box(experiments::fig7a(61)));
    });

    let t = ThermalModel::PAPER;
    group.bench_function("switching_probability", |b| {
        b.iter(|| black_box(t.switching_probability(Amps(0.8e-6), Amps(1e-6), Seconds(10e-9))));
    });

    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
