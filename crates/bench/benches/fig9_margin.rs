//! Criterion bench for the Fig. 9 detection-margin studies (E7/E8): the
//! heaviest experiment (full parasitic netlist solves, ~10⁴ nodes at paper
//! scale), benchmarked at miniature scale plus one full-size solve.

use criterion::{criterion_group, criterion_main, Criterion};
use spinamm_bench::{experiments, Scale};
use spinamm_circuit::units::Volts;
use spinamm_crossbar::{CrossbarArray, CrossbarGeometry, ParasiticCrossbar, RowDrive};
use spinamm_memristor::DeviceLimits;
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);

    group.bench_function("fig9a_quick", |b| {
        b.iter(|| experiments::fig9a(black_box(&Scale::quick()), &[1.0, 5.0]).unwrap());
    });

    group.bench_function("fig9b_quick", |b| {
        b.iter(|| experiments::fig9b(black_box(&Scale::quick()), &[30.0, 8.0]).unwrap());
    });

    // One paper-scale parasitic solve: 128×40 crossbar (10k+ nodes, CG).
    let mut array = CrossbarArray::new(128, 40, DeviceLimits::PAPER).unwrap();
    for i in 0..128 {
        for j in 0..40 {
            let g = DeviceLimits::PAPER.g_min().0
                + ((i * 7 + j * 13) % 32) as f64 / 31.0
                    * (DeviceLimits::PAPER.g_max().0 - DeviceLimits::PAPER.g_min().0);
            array
                .set_conductance(i, j, spinamm_circuit::units::Siemens(g))
                .unwrap();
        }
    }
    array.equalize_rows(None).unwrap();
    let drives = vec![RowDrive::Voltage(Volts(0.0003)); 128];
    let pc = ParasiticCrossbar::new(CrossbarGeometry::PAPER);
    group.bench_function("parasitic_solve_128x40", |b| {
        b.iter(|| black_box(pc.evaluate(&array, &drives).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
