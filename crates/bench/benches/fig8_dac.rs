//! Criterion bench for the Fig. 8b DTCS-DAC non-linearity study (E6).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spinamm_bench::experiments;
use spinamm_circuit::units::Siemens;
use spinamm_cmos::DtcsDac;
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");

    group.bench_function("fig8b_curves", |b| {
        b.iter(|| experiments::fig8b(black_box(&[100.0, 10.0, 2.0, 0.5])).unwrap());
    });

    let dac = DtcsDac::paper_input();
    let load = Siemens(dac.ideal_conductance(31).unwrap().0 * 2.0);
    group.bench_function("inl_one_load", |b| {
        b.iter(|| black_box(dac.current_inl(load)));
    });

    group.bench_function("sample_instance", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| black_box(dac.sample(&mut rng)));
    });

    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
