//! Admission control: per-tenant token buckets layered under a global
//! concurrency cap, both in front of the engine's own `QueueFull`
//! backpressure.
//!
//! The layering gives three distinct rejection modes, each with its own
//! HTTP status:
//!
//! 1. a tenant above its provisioned query rate → **429** (over quota);
//! 2. the whole server at its concurrent-request cap → **503**
//!    (saturated);
//! 3. a tenant's bounded engine queue full → **503** (the engine's
//!    existing backpressure, surfaced as saturation).
//!
//! Buckets are driven by explicit nanosecond timestamps rather than an
//! internal clock, so the admission law is a pure function of the request
//! arrival sequence — what the property tests exercise with virtual time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A token bucket: capacity `burst` tokens, refilled continuously at
/// `rate` tokens per second. Each admitted request spends one token.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket holding `burst` tokens that refills at `rate` tokens per
    /// second. Rates and bursts are clamped below by tiny positive values
    /// so a bucket always eventually admits.
    #[must_use]
    pub fn new(rate: f64, burst: f64) -> Self {
        let rate = if rate.is_finite() && rate > 0.0 {
            rate
        } else {
            f64::MIN_POSITIVE
        };
        let burst = if burst.is_finite() && burst >= 1.0 {
            burst
        } else {
            1.0
        };
        Self {
            rate,
            burst,
            tokens: burst,
            last_ns: 0,
        }
    }

    /// Sustained admission rate, tokens per second.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Bucket capacity, tokens.
    #[must_use]
    pub fn burst(&self) -> f64 {
        self.burst
    }

    /// Spends one token if available at time `now_ns` (nanoseconds on any
    /// monotonic axis; earlier timestamps than the last call refill
    /// nothing). Returns whether the request is admitted.
    pub fn try_admit(&mut self, now_ns: u64) -> bool {
        let elapsed = now_ns.saturating_sub(self.last_ns);
        self.last_ns = self.last_ns.max(now_ns);
        self.tokens = (self.tokens + self.rate * (elapsed as f64) * 1e-9).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Nanoseconds from `now_ns` until a token will be available (0 when
    /// one already is) — the `Retry-After` hint.
    #[must_use]
    pub fn nanos_until_available(&self, now_ns: u64) -> u64 {
        let elapsed = now_ns.saturating_sub(self.last_ns);
        let tokens = (self.tokens + self.rate * (elapsed as f64) * 1e-9).min(self.burst);
        if tokens >= 1.0 {
            return 0;
        }
        let missing = 1.0 - tokens;
        (missing / self.rate * 1e9).ceil() as u64
    }
}

/// A global cap on concurrently served requests. Cheap enough for the
/// hot path: one atomic compare-and-swap per admission.
#[derive(Debug)]
pub struct ConcurrencyGate {
    inflight: Arc<AtomicU64>,
    limit: u64,
}

impl ConcurrencyGate {
    /// A gate admitting at most `limit` concurrent holders (`limit` is
    /// clamped to at least one).
    #[must_use]
    pub fn new(limit: usize) -> Self {
        Self {
            inflight: Arc::new(AtomicU64::new(0)),
            limit: (limit.max(1)) as u64,
        }
    }

    /// Currently held slots.
    #[must_use]
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Acquire)
    }

    /// The configured cap.
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Tries to take a slot; the slot is released when the returned guard
    /// drops.
    #[must_use]
    pub fn try_acquire(&self) -> Option<InflightGuard> {
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if current >= self.limit {
                return None;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(InflightGuard {
                        inflight: Arc::clone(&self.inflight),
                    })
                }
                Err(seen) => current = seen,
            }
        }
    }
}

/// Releases its [`ConcurrencyGate`] slot on drop.
#[derive(Debug)]
pub struct InflightGuard {
    inflight: Arc<AtomicU64>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_spends_burst_then_blocks() {
        let mut b = TokenBucket::new(10.0, 3.0);
        assert!(b.try_admit(0));
        assert!(b.try_admit(0));
        assert!(b.try_admit(0));
        assert!(!b.try_admit(0));
        // One token refills after 100 ms at 10 qps.
        assert!(!b.try_admit(99_000_000));
        assert!(b.try_admit(100_000_000));
        assert!(!b.try_admit(100_000_000));
    }

    #[test]
    fn retry_hint_matches_refill() {
        let mut b = TokenBucket::new(2.0, 1.0);
        assert!(b.try_admit(0));
        let wait = b.nanos_until_available(0);
        assert!(!b.try_admit(wait - 1), "one nanosecond early must reject");
        assert!(b.try_admit(wait));
    }

    #[test]
    fn time_going_backwards_refills_nothing() {
        let mut b = TokenBucket::new(1.0, 1.0);
        assert!(b.try_admit(1_000_000_000));
        assert!(!b.try_admit(0));
        assert!(!b.try_admit(500_000_000));
        assert!(b.try_admit(2_000_000_000));
    }

    #[test]
    fn gate_caps_and_releases() {
        let gate = ConcurrencyGate::new(2);
        let a = gate.try_acquire().unwrap();
        let _b = gate.try_acquire().unwrap();
        assert!(gate.try_acquire().is_none());
        assert_eq!(gate.inflight(), 2);
        drop(a);
        assert!(gate.try_acquire().is_some());
    }
}
