//! The transport-independent service core: admission → engine → wire
//! response.
//!
//! [`RecallService::handle`] is the *only* request path. The HTTP and
//! binary transports decode to an [`ApiRecallRequest`], call `handle`, and
//! encode whatever comes back; the load-replay harness calls `handle`
//! directly. One path means the conformance suite's "served responses are
//! bit-identical to direct engine submission" covers every transport.

use crate::admission::{ConcurrencyGate, InflightGuard};
use crate::api::{ApiRecallRequest, ApiRecallResponse};
use crate::registry::ModuleRegistry;
use spinamm_engine::EngineError;
use spinamm_telemetry::json::JsonValue;
use spinamm_telemetry::{MemoryRecorder, Recorder};
use std::sync::Arc;
use std::time::Instant;

/// Server-level sizing and limits. Construct with
/// [`ServerConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Address the TCP listener binds (`"127.0.0.1:0"` picks a free
    /// port).
    pub bind: String,
    /// Global cap on concurrently served recalls across all tenants;
    /// beyond it requests get 503 without touching any engine.
    pub global_concurrency: usize,
    /// Cap on simultaneously open TCP connections; beyond it new
    /// connections get an immediate 503 and are closed.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            bind: "127.0.0.1:0".to_owned(),
            global_concurrency: 256,
            max_connections: 128,
        }
    }
}

impl ServerConfig {
    /// Starts a builder seeded with [`ServerConfig::default`]:
    ///
    /// ```
    /// use spinamm_server::ServerConfig;
    ///
    /// let config = ServerConfig::builder()
    ///     .bind("127.0.0.1:0")
    ///     .global_concurrency(64)
    ///     .max_connections(32)
    ///     .build();
    /// assert_eq!(config.global_concurrency, 64);
    /// ```
    #[must_use]
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Builder for [`ServerConfig`].
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Listener bind address.
    #[must_use]
    pub fn bind(mut self, addr: impl Into<String>) -> Self {
        self.config.bind = addr.into();
        self
    }

    /// Global concurrent-recall cap.
    #[must_use]
    pub fn global_concurrency(mut self, limit: usize) -> Self {
        self.config.global_concurrency = limit;
        self
    }

    /// Open-connection cap.
    #[must_use]
    pub fn max_connections(mut self, limit: usize) -> Self {
        self.config.max_connections = limit;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

/// A typed service failure; [`ServeError::status`] maps it to HTTP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No tenant registered under the requested name → 404.
    UnknownTenant(String),
    /// The request was malformed or sized wrong for the deployment → 400.
    BadRequest(String),
    /// The tenant's token bucket is empty → 429 with a retry hint.
    OverQuota {
        /// Whole seconds until the bucket refills one token.
        retry_after_secs: u64,
    },
    /// The global concurrency cap is reached → 503.
    Saturated,
    /// The tenant engine's bounded queue is full → 503.
    QueueFull,
    /// The tenant engine stopped (evicted mid-flight) → 503.
    Gone,
}

impl ServeError {
    /// The HTTP status code this failure maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            ServeError::UnknownTenant(_) => 404,
            ServeError::BadRequest(_) => 400,
            ServeError::OverQuota { .. } => 429,
            ServeError::Saturated | ServeError::QueueFull | ServeError::Gone => 503,
        }
    }

    /// Stable machine-readable kind.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::UnknownTenant(_) => "unknown_tenant",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::OverQuota { .. } => "over_quota",
            ServeError::Saturated => "saturated",
            ServeError::QueueFull => "queue_full",
            ServeError::Gone => "gone",
        }
    }

    /// The JSON error body: `{"error":{"status":…,"kind":…,"message":…}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonValue::object([(
            "error",
            JsonValue::object([
                ("status", JsonValue::Uint(u64::from(self.status()))),
                ("kind", JsonValue::Str(self.kind().to_owned())),
                ("message", JsonValue::Str(self.to_string())),
            ]),
        )])
        .render()
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant(name) => write!(f, "no tenant {name:?} is registered"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::OverQuota { retry_after_secs } => {
                write!(f, "tenant over quota, retry after {retry_after_secs}s")
            }
            ServeError::Saturated => write!(f, "server at its concurrency cap"),
            ServeError::QueueFull => write!(f, "tenant queue is full"),
            ServeError::Gone => write!(f, "tenant engine shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The admission-controlled, multi-tenant recall service.
#[derive(Debug)]
pub struct RecallService {
    registry: Arc<ModuleRegistry>,
    gate: ConcurrencyGate,
    recorder: Arc<MemoryRecorder>,
    origin: Instant,
}

impl RecallService {
    /// Wraps `registry` with the admission limits of `config`.
    #[must_use]
    pub fn new(registry: Arc<ModuleRegistry>, config: &ServerConfig) -> Self {
        Self {
            registry,
            gate: ConcurrencyGate::new(config.global_concurrency),
            recorder: Arc::new(MemoryRecorder::default()),
            origin: Instant::now(),
        }
    }

    /// The tenant registry behind the service.
    #[must_use]
    pub fn registry(&self) -> &Arc<ModuleRegistry> {
        &self.registry
    }

    /// Server-level telemetry (`server.*` counters).
    #[must_use]
    pub fn recorder(&self) -> &Arc<MemoryRecorder> {
        &self.recorder
    }

    /// Nanoseconds since service start — the admission clock.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Serves one recall end to end: tenant lookup, quota spend, global
    /// concurrency slot, engine submission, wire projection. Blocks until
    /// the engine answers.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ServeError`]; each maps to one HTTP status via
    /// [`ServeError::status`].
    pub fn handle(&self, request: &ApiRecallRequest) -> Result<ApiRecallResponse, ServeError> {
        self.recorder.counter("server.requests", 1);
        let outcome = self.admit_and_submit(request);
        match &outcome {
            Ok(_) => self.recorder.counter("server.served", 1),
            Err(e) => {
                self.recorder.counter("server.rejected", 1);
                self.recorder
                    .counter(&format!("server.rejected.{}", e.kind()), 1);
            }
        }
        outcome
    }

    fn admit_and_submit(
        &self,
        request: &ApiRecallRequest,
    ) -> Result<ApiRecallResponse, ServeError> {
        let tenant = self
            .registry
            .get(&request.tenant)
            .ok_or_else(|| ServeError::UnknownTenant(request.tenant.clone()))?;
        if request.input.len() != tenant.vector_len() {
            return Err(ServeError::BadRequest(format!(
                "input has {} levels, deployment expects {}",
                request.input.len(),
                tenant.vector_len()
            )));
        }
        let now = self.now_ns();
        if !tenant.try_spend_quota(now) {
            return Err(ServeError::OverQuota {
                retry_after_secs: tenant.quota_retry_after_secs(now).max(1),
            });
        }
        let _slot: InflightGuard = self.gate.try_acquire().ok_or(ServeError::Saturated)?;
        let ticket = tenant
            .engine()
            .try_submit(&request.input)
            .map_err(|e| match e {
                EngineError::QueueFull => ServeError::QueueFull,
                EngineError::ShutDown => ServeError::Gone,
                EngineError::Core(core) => ServeError::BadRequest(core.to_string()),
            })?;
        let response = ticket.wait().map_err(|e| match e {
            EngineError::ShutDown => ServeError::Gone,
            EngineError::QueueFull => ServeError::QueueFull,
            EngineError::Core(core) => ServeError::BadRequest(core.to_string()),
        })?;
        Ok(ApiRecallResponse::from_engine(tenant.name(), &response))
    }

    /// The `/metrics` document: server counters, gate occupancy, and every
    /// tenant's full [`spinamm_telemetry::TelemetrySnapshot`] (counters,
    /// gauges, and the `engine.latency_seconds` / `engine.queue_wait_ns`
    /// histograms with p50…p999) keyed by tenant name.
    #[must_use]
    pub fn metrics_json(&self) -> JsonValue {
        let tenants: Vec<(String, JsonValue)> = self
            .registry
            .tenants()
            .into_iter()
            .map(|tenant| {
                (
                    tenant.name().to_owned(),
                    JsonValue::object([
                        ("kind", JsonValue::Str(tenant.kind().as_str().to_owned())),
                        ("vector_len", JsonValue::Uint(tenant.vector_len() as u64)),
                        ("metrics", tenant.recorder().snapshot().to_json_value()),
                    ]),
                )
            })
            .collect();
        JsonValue::object([
            (
                "server",
                JsonValue::object([
                    ("inflight", JsonValue::Uint(self.gate.inflight())),
                    ("concurrency_limit", JsonValue::Uint(self.gate.limit())),
                    ("metrics", self.recorder.snapshot().to_json_value()),
                ]),
            ),
            ("tenants", JsonValue::Object(tenants)),
        ])
    }
}
