//! The wire vocabulary of the service, re-exported in one place: request
//! and response types plus their two framings.
//!
//! Every request reaches the service as an [`ApiRecallRequest`] and leaves
//! as an [`ApiRecallResponse`], regardless of transport:
//!
//! * **JSON over HTTP/1.1** — `POST /v1/recall` with an
//!   [`ApiRecallRequest::to_json`] body; responses render through
//!   [`ApiRecallResponse::to_json`]. Floats print as shortest-round-trip
//!   decimals, so energy values survive the text encoding bit-exactly.
//! * **Length-prefixed binary** — the hot path. A connection whose first
//!   byte is [`REQUEST_MAGIC`] speaks frames described in
//!   [`ApiRecallRequest::encode_binary`] /
//!   [`ApiRecallResponse::encode_binary`]; floats travel as raw
//!   little-endian IEEE-754 bits.
//!
//! Both framings decode to identical structs — `wire_roundtrip` in the
//! test suite pins that equivalence.

use spinamm_engine::EngineResponse;
use spinamm_telemetry::json::{self, JsonValue};

/// First byte of a binary request frame (no ASCII HTTP method starts with
/// it, which is how the listener sniffs the framing).
pub const REQUEST_MAGIC: u8 = 0xB5;
/// First byte of a binary response frame.
pub const RESPONSE_MAGIC: u8 = 0xB6;
/// Binary framing version.
pub const WIRE_VERSION: u8 = 1;

/// A recall call addressed to one tenant's deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiRecallRequest {
    /// The registry name of the target deployment.
    pub tenant: String,
    /// The query vector, one DAC level per stored row.
    pub input: Vec<u32>,
}

/// Which deployment organization served a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentKind {
    /// Single associative memory module.
    Flat,
    /// Row-partitioned banks with digital score summation.
    Partitioned,
    /// Two-level clustered matching.
    Hierarchical,
    /// Tiled capacity pool with ranked top-k recall.
    Tiled,
}

impl DeploymentKind {
    /// Stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DeploymentKind::Flat => "flat",
            DeploymentKind::Partitioned => "partitioned",
            DeploymentKind::Hierarchical => "hierarchical",
            DeploymentKind::Tiled => "tiled",
        }
    }

    /// Parses a wire name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "flat" => DeploymentKind::Flat,
            "partitioned" => DeploymentKind::Partitioned,
            "hierarchical" => DeploymentKind::Hierarchical,
            "tiled" => DeploymentKind::Tiled,
            _ => return None,
        })
    }

    fn code(self) -> u8 {
        match self {
            DeploymentKind::Flat => 0,
            DeploymentKind::Partitioned => 1,
            DeploymentKind::Hierarchical => 2,
            DeploymentKind::Tiled => 3,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => DeploymentKind::Flat,
            1 => DeploymentKind::Partitioned,
            2 => DeploymentKind::Hierarchical,
            3 => DeploymentKind::Tiled,
            _ => return None,
        })
    }
}

/// One ranked match of a tiled response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApiMatch {
    /// Global column index across the pool.
    pub global_column: u64,
    /// The column's DOM code.
    pub score: u32,
}

/// A served recognition. Built from an [`EngineResponse`] by
/// [`ApiRecallResponse::from_engine`]; the conformance suite pins that a
/// response served over either framing equals the one built directly from
/// a sequential engine submission.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiRecallResponse {
    /// The tenant that served the call.
    pub tenant: String,
    /// The deployment organization that answered.
    pub kind: DeploymentKind,
    /// Winning column / pattern index (raw winner for flat modules, best
    /// global column for tiled pools).
    pub winner: u64,
    /// Whether the winner cleared the deployment's DOM acceptance
    /// threshold (always `true` for organizations without rejection).
    pub accepted: bool,
    /// Degree of match of the winner.
    pub dom: u32,
    /// Ranked top-k matches (tiled pools only; empty otherwise).
    pub matches: Vec<ApiMatch>,
    /// Total recognition energy in joules.
    pub energy_j: f64,
}

/// Errors decoding either framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was malformed.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

fn err(message: impl Into<String>) -> WireError {
    WireError {
        message: message.into(),
    }
}

impl ApiRecallRequest {
    /// Renders the JSON body: `{"tenant":"…","input":[…]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonValue::object([
            ("tenant", JsonValue::Str(self.tenant.clone())),
            (
                "input",
                JsonValue::Array(
                    self.input
                        .iter()
                        .map(|&v| JsonValue::Uint(u64::from(v)))
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Parses a JSON body.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed JSON or missing/ill-typed
    /// fields.
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let doc = json::parse(body).map_err(err)?;
        let tenant = doc
            .get("tenant")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err("missing string field `tenant`"))?
            .to_owned();
        let input = doc
            .get("input")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| err("missing array field `input`"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|u| u32::try_from(u).ok())
                    .ok_or_else(|| err("`input` elements must be u32 levels"))
            })
            .collect::<Result<Vec<u32>, WireError>>()?;
        Ok(Self { tenant, input })
    }

    /// Encodes the length-prefixed binary request frame:
    ///
    /// ```text
    /// 0xB5 0x01 | u32 body_len | u16 tenant_len | tenant utf-8
    ///           | u32 n | n × u32 level
    /// ```
    ///
    /// All integers little-endian; `body_len` counts everything after the
    /// length field.
    #[must_use]
    pub fn encode_binary(&self) -> Vec<u8> {
        let tenant = self.tenant.as_bytes();
        let body_len = 2 + tenant.len() + 4 + 4 * self.input.len();
        let mut out = Vec::with_capacity(6 + body_len);
        out.push(REQUEST_MAGIC);
        out.push(WIRE_VERSION);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.extend_from_slice(
            &u16::try_from(tenant.len())
                .unwrap_or(u16::MAX)
                .to_le_bytes(),
        );
        out.extend_from_slice(tenant);
        out.extend_from_slice(&(self.input.len() as u32).to_le_bytes());
        for &level in &self.input {
            out.extend_from_slice(&level.to_le_bytes());
        }
        out
    }

    /// Decodes a binary request frame produced by
    /// [`ApiRecallRequest::encode_binary`].
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for a bad magic/version, a length prefix not
    /// matching the frame, truncation, or an invalid UTF-8 tenant.
    pub fn decode_binary(frame: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(frame);
        if r.u8()? != REQUEST_MAGIC {
            return Err(err("bad request magic"));
        }
        if r.u8()? != WIRE_VERSION {
            return Err(err("unsupported wire version"));
        }
        let body_len = r.u32()? as usize;
        if frame.len() - r.pos != body_len {
            return Err(err("length prefix does not match frame"));
        }
        let tenant_len = usize::from(r.u16()?);
        let tenant = std::str::from_utf8(r.bytes(tenant_len)?)
            .map_err(|_| err("tenant is not UTF-8"))?
            .to_owned();
        let n = r.u32()? as usize;
        if frame.len().saturating_sub(r.pos) < 4 * n {
            return Err(err("truncated input levels"));
        }
        let mut input = Vec::with_capacity(n);
        for _ in 0..n {
            input.push(r.u32()?);
        }
        r.finish()?;
        Ok(Self { tenant, input })
    }
}

impl ApiRecallResponse {
    /// Projects an engine response into the wire shape. This is the single
    /// conversion both the network handlers and the conformance oracle
    /// use, so "served == direct submission" is checked against the same
    /// mapping.
    #[must_use]
    pub fn from_engine(tenant: &str, response: &EngineResponse) -> Self {
        let (kind, winner, accepted, matches) = match response {
            EngineResponse::Flat(r) => (
                DeploymentKind::Flat,
                r.raw_winner as u64,
                r.winner.is_some(),
                Vec::new(),
            ),
            EngineResponse::Partitioned(r) => (
                DeploymentKind::Partitioned,
                r.winner as u64,
                true,
                Vec::new(),
            ),
            EngineResponse::Hierarchical(r) => (
                DeploymentKind::Hierarchical,
                r.winner as u64,
                true,
                Vec::new(),
            ),
            EngineResponse::Tiled(r) => (
                DeploymentKind::Tiled,
                r.matches.first().map_or(0, |m| m.global_column as u64),
                true,
                r.matches
                    .iter()
                    .map(|m| ApiMatch {
                        global_column: m.global_column as u64,
                        score: m.score,
                    })
                    .collect(),
            ),
        };
        let energy = match response {
            EngineResponse::Flat(r) => r.energy,
            EngineResponse::Partitioned(r) => r.energy,
            EngineResponse::Hierarchical(r) => r.energy,
            EngineResponse::Tiled(r) => r.energy,
        };
        Self {
            tenant: tenant.to_owned(),
            kind,
            winner,
            accepted,
            dom: response.dom(),
            matches,
            energy_j: energy.total().0,
        }
    }

    /// Renders the JSON body.
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonValue::object([
            ("tenant", JsonValue::Str(self.tenant.clone())),
            ("kind", JsonValue::Str(self.kind.as_str().to_owned())),
            ("winner", JsonValue::Uint(self.winner)),
            ("accepted", JsonValue::Bool(self.accepted)),
            ("dom", JsonValue::Uint(u64::from(self.dom))),
            (
                "matches",
                JsonValue::Array(
                    self.matches
                        .iter()
                        .map(|m| {
                            JsonValue::object([
                                ("global_column", JsonValue::Uint(m.global_column)),
                                ("score", JsonValue::Uint(u64::from(m.score))),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("energy_j", JsonValue::Num(self.energy_j)),
        ])
        .render()
    }

    /// Parses a JSON body.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed JSON or missing/ill-typed
    /// fields.
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let doc = json::parse(body).map_err(err)?;
        let field = |name: &str| {
            doc.get(name)
                .ok_or_else(|| err(format!("missing `{name}`")))
        };
        let tenant = field("tenant")?
            .as_str()
            .ok_or_else(|| err("`tenant` must be a string"))?
            .to_owned();
        let kind = field("kind")?
            .as_str()
            .and_then(DeploymentKind::parse)
            .ok_or_else(|| err("unknown `kind`"))?;
        let winner = field("winner")?
            .as_u64()
            .ok_or_else(|| err("`winner` must be u64"))?;
        let accepted = match field("accepted")? {
            JsonValue::Bool(b) => *b,
            _ => return Err(err("`accepted` must be a bool")),
        };
        let dom = field("dom")?
            .as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| err("`dom` must be u32"))?;
        let matches = field("matches")?
            .as_array()
            .ok_or_else(|| err("`matches` must be an array"))?
            .iter()
            .map(|m| {
                let global_column = m
                    .get("global_column")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| err("match missing `global_column`"))?;
                let score = m
                    .get("score")
                    .and_then(JsonValue::as_u64)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| err("match missing `score`"))?;
                Ok(ApiMatch {
                    global_column,
                    score,
                })
            })
            .collect::<Result<Vec<ApiMatch>, WireError>>()?;
        let energy_j = field("energy_j")?
            .as_f64()
            .ok_or_else(|| err("`energy_j` must be a number"))?;
        Ok(Self {
            tenant,
            kind,
            winner,
            accepted,
            dom,
            matches,
            energy_j,
        })
    }

    /// Encodes the binary response body (the payload of a binary response
    /// frame with status 200; the frame header carries magic, version,
    /// status and length):
    ///
    /// ```text
    /// u16 tenant_len | tenant utf-8 | u8 kind | u8 accepted | u64 winner
    /// | u32 dom | f64 energy (raw LE bits) | u32 k | k × (u64 col, u32 score)
    /// ```
    #[must_use]
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.tenant.len() + 12 * self.matches.len());
        let tenant = self.tenant.as_bytes();
        out.extend_from_slice(
            &u16::try_from(tenant.len())
                .unwrap_or(u16::MAX)
                .to_le_bytes(),
        );
        out.extend_from_slice(tenant);
        out.push(self.kind.code());
        out.push(u8::from(self.accepted));
        out.extend_from_slice(&self.winner.to_le_bytes());
        out.extend_from_slice(&self.dom.to_le_bytes());
        out.extend_from_slice(&self.energy_j.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.matches.len() as u32).to_le_bytes());
        for m in &self.matches {
            out.extend_from_slice(&m.global_column.to_le_bytes());
            out.extend_from_slice(&m.score.to_le_bytes());
        }
        out
    }

    /// Decodes the binary response body.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for truncation or invalid fields.
    pub fn decode_binary(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(body);
        let tenant_len = usize::from(r.u16()?);
        let tenant = std::str::from_utf8(r.bytes(tenant_len)?)
            .map_err(|_| err("tenant is not UTF-8"))?
            .to_owned();
        let kind = DeploymentKind::from_code(r.u8()?).ok_or_else(|| err("unknown kind code"))?;
        let accepted = r.u8()? != 0;
        let winner = r.u64()?;
        let dom = r.u32()?;
        let energy_j = f64::from_bits(r.u64()?);
        let k = r.u32()? as usize;
        if body.len().saturating_sub(r.pos) < 12 * k {
            return Err(err("truncated matches"));
        }
        let mut matches = Vec::with_capacity(k);
        for _ in 0..k {
            matches.push(ApiMatch {
                global_column: r.u64()?,
                score: r.u32()?,
            });
        }
        r.finish()?;
        Ok(Self {
            tenant,
            kind,
            winner,
            accepted,
            dom,
            matches,
            energy_j,
        })
    }
}

/// Little-endian cursor over a frame.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| err("truncated frame"))?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("len")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("len")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("len")))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(err("trailing bytes after frame"))
        }
    }
}
