//! `spinamm-serve`: stand up the network tier on a TCP port with an
//! empty registry; tenants are registered at runtime over
//! `POST /v1/tenants`. The README's curl quick-start talks to this
//! binary.
//!
//! Usage: `spinamm-serve [BIND]` (default `127.0.0.1:7171`).

use spinamm_server::registry::ModuleRegistry;
use spinamm_server::service::{RecallService, ServerConfig};
use spinamm_server::SpinServer;
use std::sync::Arc;

fn main() {
    let bind = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7171".to_owned());
    let config = ServerConfig::builder().bind(bind).build();
    let service = Arc::new(RecallService::new(Arc::new(ModuleRegistry::new()), &config));
    let server = match SpinServer::start(service, &config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("spinamm-serve: bind failed: {error}");
            std::process::exit(1);
        }
    };
    println!(
        "spinamm-serve listening on http://{} (binary framing on the same port)",
        server.addr()
    );
    println!(
        "register a tenant:  curl -s -X POST http://{}/v1/tenants -d '{{...}}'",
        server.addr()
    );
    // Serve until the process is killed; the accept loop owns its thread.
    loop {
        std::thread::park();
    }
}
