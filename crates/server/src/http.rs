//! The network front-end: a `std::net` thread-per-connection server
//! speaking HTTP/1.1 + JSON, with a length-prefixed binary framing for the
//! hot path on the same port.
//!
//! The listener sniffs the first byte of every connection:
//! [`crate::api::REQUEST_MAGIC`] (`0xB5`) starts a binary session (no
//! ASCII HTTP method begins with that byte); anything else is parsed as
//! HTTP/1.1. Both paths decode to [`ApiRecallRequest`] and call
//! [`RecallService::handle`].
//!
//! Routes:
//!
//! | method & path          | action                                    |
//! |------------------------|-------------------------------------------|
//! | `POST /v1/recall`      | serve one recall (JSON body)              |
//! | `GET /metrics`         | telemetry document, per tenant + server   |
//! | `GET /healthz`         | liveness probe                            |
//! | `POST /v1/tenants`     | register a tenant from a deployment spec  |
//! | `DELETE /v1/tenants/N` | evict tenant `N`                          |
//!
//! Admission failures surface as typed statuses: 429 (tenant over quota,
//! with `Retry-After`), 503 (global concurrency cap or engine queue
//! full), 404 (unknown tenant), 400 (malformed request).

use crate::api::{ApiRecallRequest, DeploymentKind, REQUEST_MAGIC, RESPONSE_MAGIC, WIRE_VERSION};
use crate::registry::{DeploymentSpec, RegistryError, TenantOptions};
use crate::service::{RecallService, ServeError, ServerConfig};
use spinamm_core::amm::{AmmConfig, Fidelity};
use spinamm_engine::EngineConfig;
use spinamm_telemetry::json::{self, JsonValue};
use spinamm_telemetry::Recorder;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// Largest accepted HTTP header block or binary frame body, bytes.
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Largest accepted request body, bytes.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A running TCP server; dropping it (or calling
/// [`SpinServer::shutdown`]) stops the accept loop.
#[derive(Debug)]
pub struct SpinServer {
    addr: SocketAddr,
    closed: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl SpinServer {
    /// Binds `config.bind` and starts serving `service`.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start(service: Arc<RecallService>, config: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let closed = Arc::new(AtomicBool::new(false));
        let open_connections = Arc::new(AtomicUsize::new(0));
        let max_connections = config.max_connections.max(1);
        let accept_closed = Arc::clone(&closed);
        let accept_thread = thread::Builder::new()
            .name("spinamm-accept".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_closed.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if open_connections.load(Ordering::Acquire) >= max_connections {
                        service.recorder().counter("server.connections_rejected", 1);
                        let _ =
                            write_http(&mut &stream, 503, &ServeError::Saturated.to_json(), &[]);
                        continue;
                    }
                    open_connections.fetch_add(1, Ordering::AcqRel);
                    let service = Arc::clone(&service);
                    let open = Arc::clone(&open_connections);
                    let _ = thread::Builder::new()
                        .name("spinamm-conn".to_owned())
                        .spawn(move || {
                            handle_connection(&service, stream);
                            open.fetch_sub(1, Ordering::AcqRel);
                        });
                }
            })?;
        Ok(Self {
            addr,
            closed,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with `bind: 127.0.0.1:0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop. In-flight
    /// connections finish on their own threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SpinServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(service: &RecallService, mut stream: TcpStream) {
    let mut first = [0u8; 1];
    if stream.read_exact(&mut first).is_err() {
        return;
    }
    if first[0] == REQUEST_MAGIC {
        handle_binary_session(service, stream);
    } else {
        handle_http_session(service, stream, first[0]);
    }
}

// ---------------------------------------------------------------- binary

fn handle_binary_session(service: &RecallService, mut stream: TcpStream) {
    // The first frame's magic byte is already consumed by the sniffer.
    loop {
        let mut header = [0u8; 5];
        if stream.read_exact(&mut header).is_err() {
            return;
        }
        let body_len = u32::from_le_bytes(header[1..5].try_into().expect("len")) as usize;
        if header[0] != WIRE_VERSION || body_len > MAX_BODY_BYTES {
            let body = ServeError::BadRequest("bad binary frame header".to_owned()).to_json();
            let _ = write_binary_frame(&mut stream, 400, body.as_bytes());
            return;
        }
        let mut frame = Vec::with_capacity(6 + body_len);
        frame.push(REQUEST_MAGIC);
        frame.extend_from_slice(&header);
        let start = frame.len();
        frame.resize(start + body_len, 0);
        if stream.read_exact(&mut frame[start..]).is_err() {
            return;
        }
        let outcome = match ApiRecallRequest::decode_binary(&frame) {
            Ok(request) => service.handle(&request),
            Err(e) => Err(ServeError::BadRequest(e.message)),
        };
        service.recorder().counter("server.binary_requests", 1);
        let ok = match outcome {
            Ok(response) => write_binary_frame(&mut stream, 200, &response.encode_binary()).is_ok(),
            Err(e) => write_binary_frame(&mut stream, e.status(), e.to_json().as_bytes()).is_ok(),
        };
        if !ok {
            return;
        }
        // Next frame (if the client keeps the session open).
        let mut magic = [0u8; 1];
        if stream.read_exact(&mut magic).is_err() || magic[0] != REQUEST_MAGIC {
            return;
        }
    }
}

fn write_binary_frame(stream: &mut TcpStream, status: u16, body: &[u8]) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(8 + body.len());
    out.push(RESPONSE_MAGIC);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&status.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    stream.write_all(&out)
}

// ------------------------------------------------------------------ http

struct HttpRequest {
    method: String,
    path: String,
    body: String,
    keep_alive: bool,
}

fn handle_http_session(service: &RecallService, mut stream: TcpStream, first_byte: u8) {
    let mut pending = vec![first_byte];
    loop {
        let Some(request) = read_http_request(&mut stream, std::mem::take(&mut pending)) else {
            return;
        };
        let keep_alive = request.keep_alive;
        if route(service, &mut stream, &request).is_err() || !keep_alive {
            return;
        }
    }
}

/// Reads one HTTP/1.1 request (header block then `Content-Length` body).
/// Returns `None` on EOF or a malformed/oversized request.
fn read_http_request(stream: &mut TcpStream, mut buf: Vec<u8>) -> Option<HttpRequest> {
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return None;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let header_text = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = header_text.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_owned();
    let path = parts.next()?.to_owned();
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().ok()?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY_BYTES {
        return None;
    }
    let mut body_bytes = buf[header_end + 4..].to_vec();
    while body_bytes.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        body_bytes.extend_from_slice(&chunk[..n]);
    }
    body_bytes.truncate(content_length);
    Some(HttpRequest {
        method,
        path,
        body: String::from_utf8(body_bytes).ok()?,
        keep_alive,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn route(
    service: &RecallService,
    stream: &mut TcpStream,
    request: &HttpRequest,
) -> std::io::Result<()> {
    service.recorder().counter("server.http_requests", 1);
    let (status, body, extra): (u16, String, Vec<String>) =
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => (
                200,
                JsonValue::object([("status", JsonValue::Str("ok".to_owned()))]).render(),
                Vec::new(),
            ),
            ("GET", "/metrics") => (200, service.metrics_json().render(), Vec::new()),
            ("POST", "/v1/recall") => match ApiRecallRequest::from_json(&request.body) {
                Ok(call) => match service.handle(&call) {
                    Ok(response) => (200, response.to_json(), Vec::new()),
                    Err(e) => {
                        let extra = match &e {
                            ServeError::OverQuota { retry_after_secs } => {
                                vec![format!("Retry-After: {retry_after_secs}")]
                            }
                            _ => Vec::new(),
                        };
                        (e.status(), e.to_json(), extra)
                    }
                },
                Err(e) => {
                    let err = ServeError::BadRequest(e.message);
                    (err.status(), err.to_json(), Vec::new())
                }
            },
            ("POST", "/v1/tenants") => register_tenant(service, &request.body),
            ("DELETE", path) if path.starts_with("/v1/tenants/") => {
                let name = &path["/v1/tenants/".len()..];
                if service.registry().evict(name) {
                    (
                        200,
                        JsonValue::object([("evicted", JsonValue::Str(name.to_owned()))]).render(),
                        Vec::new(),
                    )
                } else {
                    let err = ServeError::UnknownTenant(name.to_owned());
                    (err.status(), err.to_json(), Vec::new())
                }
            }
            _ => {
                let err = ServeError::BadRequest(format!(
                    "no route for {} {}",
                    request.method, request.path
                ));
                (404, err.to_json(), Vec::new())
            }
        };
    service
        .recorder()
        .counter(&format!("server.http_responses.{status}"), 1);
    write_http(&mut &*stream, status, &body, &extra)
}

fn register_tenant(service: &RecallService, body: &str) -> (u16, String, Vec<String>) {
    match parse_tenant_registration(body) {
        Ok((name, spec, options)) => match service.registry().register(&name, &spec, &options) {
            Ok(tenant) => (
                201,
                JsonValue::object([
                    ("tenant", JsonValue::Str(tenant.name().to_owned())),
                    ("kind", JsonValue::Str(tenant.kind().as_str().to_owned())),
                    ("vector_len", JsonValue::Uint(tenant.vector_len() as u64)),
                ])
                .render(),
                Vec::new(),
            ),
            Err(e @ RegistryError::Duplicate(_)) => (
                409,
                error_body(409, "duplicate", &e.to_string()),
                Vec::new(),
            ),
            Err(e @ RegistryError::Build(_)) => {
                (400, error_body(400, "bad_spec", &e.to_string()), Vec::new())
            }
        },
        Err(message) => (400, error_body(400, "bad_spec", &message), Vec::new()),
    }
}

fn error_body(status: u16, kind: &str, message: &str) -> String {
    JsonValue::object([(
        "error",
        JsonValue::object([
            ("status", JsonValue::Uint(u64::from(status))),
            ("kind", JsonValue::Str(kind.to_owned())),
            ("message", JsonValue::Str(message.to_owned())),
        ]),
    )])
    .render()
}

/// Parses a tenant-registration document:
///
/// ```json
/// {
///   "tenant": "alpha",
///   "kind": "tiled",
///   "patterns": [[31, 0, …], …],
///   "fidelity": "driven",
///   "seed": 42,
///   "tile_capacity": 64,
///   "top_k": 4,
///   "segments": 2,
///   "clusters": 3,
///   "quota_qps": 500.0,
///   "quota_burst": 50.0,
///   "workers": 2,
///   "queue_capacity": 16,
///   "use_plans": true
/// }
/// ```
///
/// `tenant`, `kind` and `patterns` are required; everything else
/// defaults (`segments`/`clusters`/`tile_capacity` only apply to their
/// kinds).
fn parse_tenant_registration(
    body: &str,
) -> Result<(String, DeploymentSpec, TenantOptions), String> {
    let doc = json::parse(body).map_err(|e| format!("malformed JSON: {e}"))?;
    let name = doc
        .get("tenant")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field `tenant`")?
        .to_owned();
    let kind = doc
        .get("kind")
        .and_then(JsonValue::as_str)
        .and_then(DeploymentKind::parse)
        .ok_or("`kind` must be flat|partitioned|hierarchical|tiled")?;
    let patterns = doc
        .get("patterns")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field `patterns`")?
        .iter()
        .map(|row| {
            row.as_array()
                .ok_or("`patterns` must be an array of arrays")?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .and_then(|u| u32::try_from(u).ok())
                        .ok_or("pattern elements must be u32 levels")
                })
                .collect::<Result<Vec<u32>, &str>>()
        })
        .collect::<Result<Vec<Vec<u32>>, &str>>()?;
    let mut config = AmmConfig::default();
    if let Some(fidelity) = doc.get("fidelity").and_then(JsonValue::as_str) {
        config.fidelity = match fidelity {
            "ideal" => Fidelity::Ideal,
            "driven" => Fidelity::Driven,
            "parasitic" => Fidelity::Parasitic,
            _ => return Err("`fidelity` must be ideal|driven|parasitic".to_owned()),
        };
    }
    if let Some(seed) = doc.get("seed").and_then(JsonValue::as_u64) {
        config.seed = seed;
    }
    let usize_field = |key: &str, default: usize| -> usize {
        doc.get(key)
            .and_then(JsonValue::as_u64)
            .and_then(|v| usize::try_from(v).ok())
            .unwrap_or(default)
    };
    let spec = match kind {
        DeploymentKind::Flat => DeploymentSpec::Flat { patterns, config },
        DeploymentKind::Partitioned => DeploymentSpec::Partitioned {
            patterns,
            segments: usize_field("segments", 2),
            config,
        },
        DeploymentKind::Hierarchical => DeploymentSpec::Hierarchical {
            patterns,
            clusters: usize_field("clusters", 2),
            config,
        },
        DeploymentKind::Tiled => DeploymentSpec::Tiled {
            patterns,
            tile_capacity: usize_field("tile_capacity", 64),
            top_k: usize_field("top_k", 1),
            config,
        },
    };
    let quota = doc.get("quota_qps").and_then(JsonValue::as_f64).map(|qps| {
        let burst = doc
            .get("quota_burst")
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| qps.max(1.0));
        (qps, burst)
    });
    let defaults = TenantOptions::default();
    let engine = EngineConfig::builder()
        .workers(usize_field("workers", defaults.engine.workers))
        .queue_capacity(usize_field(
            "queue_capacity",
            defaults.engine.queue_capacity,
        ))
        .use_plans(match doc.get("use_plans") {
            Some(JsonValue::Bool(b)) => *b,
            _ => defaults.engine.use_plans,
        })
        .build();
    Ok((name, spec, TenantOptions { quota, engine }))
}

fn write_http(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    extra_headers: &[String],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Response",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        body.len()
    );
    for header in extra_headers {
        head.push_str(header);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
