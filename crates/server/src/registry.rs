//! The multi-tenant module registry: tenant name → a served
//! [`Deployment`] with its own engine, recorder, and admission quota.
//!
//! Each tenant is an isolated serving stack: its deployment (any
//! organization — flat, partitioned, hierarchical, tiled — with its own
//! template bank, fidelity and seed) runs behind a dedicated
//! [`RecallEngine`] whose telemetry flows into a dedicated
//! [`MemoryRecorder`]. That recorder is what makes `/metrics` and
//! queue-wait attribution *per tenant* for free: `engine.queue_wait_ns`,
//! `engine.latency_seconds`, `capacity.*` and friends are all recorded on
//! the tenant's own sink.
//!
//! Tenants register and evict at runtime. Evicting drops the registry's
//! handle; the engine shuts down when the last in-flight request releases
//! it (engines stop their threads on drop).

use crate::admission::TokenBucket;
use crate::api::DeploymentKind;
use spinamm_core::amm::{AmmConfig, AssociativeMemoryModule, Fidelity};
use spinamm_core::capacity::TiledAmm;
use spinamm_core::hierarchy::HierarchicalAmm;
use spinamm_core::partition::PartitionedAmm;
use spinamm_core::request::RecallRequest;
use spinamm_core::CoreError;
use spinamm_engine::{Deployment, EngineConfig, RecallEngine};
use spinamm_telemetry::MemoryRecorder;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};

/// How to build one tenant's deployment.
#[derive(Debug, Clone)]
pub enum DeploymentSpec {
    /// One associative memory module.
    Flat {
        /// Stored template bank.
        patterns: Vec<Vec<u32>>,
        /// Module configuration (fidelity, seed, thresholds, …).
        config: AmmConfig,
    },
    /// Rows split across modular banks with digital score summation.
    Partitioned {
        /// Stored template bank.
        patterns: Vec<Vec<u32>>,
        /// Number of row segments.
        segments: usize,
        /// Module configuration.
        config: AmmConfig,
    },
    /// Two-level clustered matching.
    Hierarchical {
        /// Stored template bank.
        patterns: Vec<Vec<u32>>,
        /// Number of clusters.
        clusters: usize,
        /// Module configuration.
        config: AmmConfig,
    },
    /// A tiled capacity pool with ranked top-k recall.
    Tiled {
        /// Stored template bank.
        patterns: Vec<Vec<u32>>,
        /// Templates per tile.
        tile_capacity: usize,
        /// Ranking depth.
        top_k: usize,
        /// Module configuration.
        config: AmmConfig,
    },
}

impl DeploymentSpec {
    /// The organization this spec builds.
    #[must_use]
    pub fn kind(&self) -> DeploymentKind {
        match self {
            DeploymentSpec::Flat { .. } => DeploymentKind::Flat,
            DeploymentSpec::Partitioned { .. } => DeploymentKind::Partitioned,
            DeploymentSpec::Hierarchical { .. } => DeploymentKind::Hierarchical,
            DeploymentSpec::Tiled { .. } => DeploymentKind::Tiled,
        }
    }

    /// Builds the deployment, reporting build/capacity telemetry into
    /// `recorder`.
    ///
    /// # Errors
    ///
    /// Propagates the core build errors (empty/ragged banks, bad segment
    /// or cluster counts, device failures).
    pub fn build(&self, recorder: &MemoryRecorder) -> Result<Deployment, CoreError> {
        let req = RecallRequest::recorded(recorder);
        Ok(match self {
            DeploymentSpec::Flat { patterns, config } => Deployment::Flat(
                AssociativeMemoryModule::build_request(patterns, config, &req)?,
            ),
            DeploymentSpec::Partitioned {
                patterns,
                segments,
                config,
            } => Deployment::Partitioned(PartitionedAmm::build(patterns, *segments, config)?),
            DeploymentSpec::Hierarchical {
                patterns,
                clusters,
                config,
            } => Deployment::Hierarchical(HierarchicalAmm::build(patterns, *clusters, config)?),
            DeploymentSpec::Tiled {
                patterns,
                tile_capacity,
                top_k,
                config,
            } => Deployment::Tiled(
                TiledAmm::build_request(patterns, *tile_capacity, config, &req)?
                    .with_top_k(*top_k)?,
            ),
        })
    }

    /// Convenience: a spec with `config.fidelity`/`config.seed` overridden.
    #[must_use]
    pub fn with_fidelity_seed(mut self, fidelity: Fidelity, seed: u64) -> Self {
        let config = match &mut self {
            DeploymentSpec::Flat { config, .. }
            | DeploymentSpec::Partitioned { config, .. }
            | DeploymentSpec::Hierarchical { config, .. }
            | DeploymentSpec::Tiled { config, .. } => config,
        };
        config.fidelity = fidelity;
        config.seed = seed;
        self
    }
}

/// Per-tenant serving options.
#[derive(Debug, Clone, Copy)]
pub struct TenantOptions {
    /// Sustained admitted query rate (tokens per second) and burst
    /// capacity; `None` admits everything (engine backpressure still
    /// applies).
    pub quota: Option<(f64, f64)>,
    /// The tenant engine's sizing.
    pub engine: EngineConfig,
}

impl Default for TenantOptions {
    fn default() -> Self {
        Self {
            quota: None,
            engine: EngineConfig::builder()
                .workers(2)
                .queue_capacity(16)
                .build(),
        }
    }
}

/// One registered tenant: deployment behind its own engine, recorder and
/// quota bucket.
pub struct Tenant {
    name: String,
    kind: DeploymentKind,
    vector_len: usize,
    engine: RecallEngine,
    recorder: Arc<MemoryRecorder>,
    bucket: Option<Mutex<TokenBucket>>,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("vector_len", &self.vector_len)
            .field("quota", &self.bucket.is_some())
            .finish_non_exhaustive()
    }
}

impl Tenant {
    /// The registry name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The deployment organization being served.
    #[must_use]
    pub fn kind(&self) -> DeploymentKind {
        self.kind
    }

    /// Input vector length the deployment expects.
    #[must_use]
    pub fn vector_len(&self) -> usize {
        self.vector_len
    }

    /// The tenant's engine.
    #[must_use]
    pub fn engine(&self) -> &RecallEngine {
        &self.engine
    }

    /// The tenant's telemetry sink.
    #[must_use]
    pub fn recorder(&self) -> &Arc<MemoryRecorder> {
        &self.recorder
    }

    /// Spends one quota token at `now_ns`; `None` quota always admits.
    pub fn try_spend_quota(&self, now_ns: u64) -> bool {
        match &self.bucket {
            Some(bucket) => bucket.lock().expect("bucket lock").try_admit(now_ns),
            None => true,
        }
    }

    /// Seconds until the tenant's bucket would admit again (0 when
    /// unlimited or a token is available).
    #[must_use]
    pub fn quota_retry_after_secs(&self, now_ns: u64) -> u64 {
        match &self.bucket {
            Some(bucket) => {
                let ns = bucket
                    .lock()
                    .expect("bucket lock")
                    .nanos_until_available(now_ns);
                ns.div_ceil(1_000_000_000)
            }
            None => 0,
        }
    }
}

/// Errors registering a tenant.
#[derive(Debug)]
pub enum RegistryError {
    /// A tenant with this name already exists.
    Duplicate(String),
    /// The deployment failed to build.
    Build(CoreError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Duplicate(name) => write!(f, "tenant {name:?} already registered"),
            RegistryError::Build(e) => write!(f, "deployment build failed: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Tenant name → serving stack, with runtime register/evict.
#[derive(Debug, Default)]
pub struct ModuleRegistry {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
}

impl ModuleRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds `spec` and starts serving it as `name`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Duplicate`] when the name is taken and
    /// [`RegistryError::Build`] when the deployment fails to build.
    pub fn register(
        &self,
        name: &str,
        spec: &DeploymentSpec,
        options: &TenantOptions,
    ) -> Result<Arc<Tenant>, RegistryError> {
        {
            let tenants = self.tenants.read().expect("registry lock");
            if tenants.contains_key(name) {
                return Err(RegistryError::Duplicate(name.to_owned()));
            }
        }
        // Build outside the lock: deployments take real work to program.
        let recorder = Arc::new(MemoryRecorder::default());
        let deployment = spec.build(&recorder).map_err(RegistryError::Build)?;
        let vector_len = deployment.vector_len();
        let engine = RecallEngine::with_recorder(
            deployment,
            &options.engine,
            Arc::clone(&recorder) as spinamm_engine::SharedRecorder,
        );
        let tenant = Arc::new(Tenant {
            name: name.to_owned(),
            kind: spec.kind(),
            vector_len,
            engine,
            recorder,
            bucket: options
                .quota
                .map(|(rate, burst)| Mutex::new(TokenBucket::new(rate, burst))),
        });
        let mut tenants = self.tenants.write().expect("registry lock");
        if tenants.contains_key(name) {
            return Err(RegistryError::Duplicate(name.to_owned()));
        }
        tenants.insert(name.to_owned(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Stops serving `name`. Returns whether a tenant was evicted; its
    /// engine shuts down once the last in-flight request drops its handle.
    pub fn evict(&self, name: &str) -> bool {
        self.tenants
            .write()
            .expect("registry lock")
            .remove(name)
            .is_some()
    }

    /// The tenant serving `name`.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants
            .read()
            .expect("registry lock")
            .get(name)
            .cloned()
    }

    /// Registered tenant names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.tenants
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Registered tenants, sorted by name.
    #[must_use]
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.tenants
            .read()
            .expect("registry lock")
            .values()
            .cloned()
            .collect()
    }

    /// Number of registered tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.read().expect("registry lock").len()
    }

    /// Whether no tenant is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
