//! # spinamm-server
//!
//! A zero-heavy-dependency network tier over [`spinamm_engine`]: multiple
//! tenants, each serving their own spin-neuron/crossbar deployment behind
//! a dedicated [`RecallEngine`](spinamm_engine::RecallEngine), fronted by
//! admission control and a `std::net` thread-per-connection listener.
//!
//! The crate splits into transport-independent and transport layers:
//!
//! - [`api`] — the wire request/response types with both JSON and
//!   length-prefixed binary codecs. Responses carry energies as exact
//!   bit-patterns in both framings, so "served == direct submission" is a
//!   bit-identity claim, not an approximation.
//! - [`registry`] — tenant name → [`Deployment`](spinamm_engine::Deployment)
//!   behind its own engine, telemetry recorder and quota bucket, with
//!   runtime register/evict.
//! - [`admission`] — per-tenant token buckets plus a global concurrency
//!   gate, layered over the engine's bounded-queue backpressure.
//! - [`service`] — [`RecallService::handle`], the single request path all
//!   transports and the load-replay harness share.
//! - [`http`] — the TCP front-end: HTTP/1.1 + JSON, with binary framing
//!   sniffed on the same port.
//!
//! ## Serving in-process
//!
//! ```
//! use spinamm_core::amm::AmmConfig;
//! use spinamm_server::api::ApiRecallRequest;
//! use spinamm_server::registry::{DeploymentSpec, ModuleRegistry, TenantOptions};
//! use spinamm_server::service::{RecallService, ServerConfig};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(ModuleRegistry::new());
//! let spec = DeploymentSpec::Flat {
//!     patterns: vec![vec![0, 31, 0, 31], vec![31, 0, 31, 0]],
//!     config: AmmConfig::default(),
//! };
//! registry
//!     .register("alpha", &spec, &TenantOptions::default())
//!     .expect("register");
//! let service = RecallService::new(registry, &ServerConfig::default());
//! let response = service
//!     .handle(&ApiRecallRequest {
//!         tenant: "alpha".to_owned(),
//!         input: vec![0, 31, 0, 31],
//!     })
//!     .expect("served");
//! assert_eq!(response.winner, 0);
//! ```
//!
//! To serve the same thing over TCP, wrap the service in
//! [`http::SpinServer::start`].

pub mod admission;
pub mod api;
pub mod http;
pub mod registry;
pub mod service;

pub use admission::{ConcurrencyGate, InflightGuard, TokenBucket};
pub use api::{ApiMatch, ApiRecallRequest, ApiRecallResponse, DeploymentKind, WireError};
pub use http::SpinServer;
pub use registry::{DeploymentSpec, ModuleRegistry, RegistryError, Tenant, TenantOptions};
pub use service::{RecallService, ServeError, ServerConfig};
