//! The service tier adds routing, quotas and framing — and nothing else.
//! For every deployment organization, a query served through
//! [`RecallService::handle`] must be bit-identical to submitting the same
//! query directly to a [`RecallEngine`] built from the same spec: same
//! winner, same DOM, same ranked matches, same energy to the last bit.

use spinamm_core::amm::{AmmConfig, Fidelity};
use spinamm_engine::{EngineConfig, RecallEngine};
use spinamm_server::api::{ApiRecallRequest, ApiRecallResponse};
use spinamm_server::registry::{DeploymentSpec, ModuleRegistry, TenantOptions};
use spinamm_server::service::{RecallService, ServerConfig};
use spinamm_telemetry::MemoryRecorder;
use std::sync::Arc;

fn patterns() -> Vec<Vec<u32>> {
    vec![
        vec![0, 31, 0, 31, 7, 24, 12, 3],
        vec![31, 0, 31, 0, 24, 7, 3, 12],
        vec![15, 15, 15, 15, 15, 15, 15, 15],
        vec![3, 28, 3, 28, 19, 9, 27, 0],
        vec![28, 3, 28, 3, 9, 19, 0, 27],
        vec![7, 7, 24, 24, 0, 31, 15, 15],
    ]
}

/// Queries: every stored pattern plus perturbed variants, deterministic.
fn queries() -> Vec<Vec<u32>> {
    let mut out = patterns();
    for (i, base) in patterns().into_iter().enumerate() {
        let mut q = base;
        for (j, level) in q.iter_mut().enumerate() {
            if (i + j) % 3 == 0 {
                *level = (*level + 2).min(31);
            }
        }
        out.push(q);
    }
    out
}

fn specs() -> Vec<(&'static str, DeploymentSpec)> {
    let config = AmmConfig {
        fidelity: Fidelity::Driven,
        seed: 0x5e12_7ab3,
        ..AmmConfig::default()
    };
    vec![
        (
            "flat",
            DeploymentSpec::Flat {
                patterns: patterns(),
                config,
            },
        ),
        (
            "partitioned",
            DeploymentSpec::Partitioned {
                patterns: patterns(),
                segments: 2,
                config,
            },
        ),
        (
            "hierarchical",
            DeploymentSpec::Hierarchical {
                patterns: patterns(),
                clusters: 2,
                config,
            },
        ),
        (
            "tiled",
            DeploymentSpec::Tiled {
                patterns: patterns(),
                tile_capacity: 2,
                top_k: 4,
                config,
            },
        ),
    ]
}

#[test]
fn served_responses_match_direct_engine_submission_for_every_kind() {
    for (name, spec) in specs() {
        // Reference: the same spec built standalone, driven through an
        // engine directly, sequentially.
        let reference_recorder = MemoryRecorder::default();
        let deployment = spec.build(&reference_recorder).expect("reference build");
        let engine = RecallEngine::new(
            deployment,
            &EngineConfig::builder()
                .workers(2)
                .queue_capacity(16)
                .build(),
        );
        let expected: Vec<ApiRecallResponse> = queries()
            .iter()
            .map(|q| {
                let response = engine.submit(q).expect("submit").wait().expect("wait");
                ApiRecallResponse::from_engine(name, &response)
            })
            .collect();

        // Served: the same spec registered behind the full service tier.
        let registry = Arc::new(ModuleRegistry::new());
        registry
            .register(name, &spec, &TenantOptions::default())
            .expect("register");
        let service = RecallService::new(registry, &ServerConfig::default());
        for (q, want) in queries().iter().zip(&expected) {
            let got = service
                .handle(&ApiRecallRequest {
                    tenant: name.to_owned(),
                    input: q.clone(),
                })
                .expect("served");
            assert_eq!(&got, want, "kind {name}: served response diverged");
            assert_eq!(
                got.energy_j.to_bits(),
                want.energy_j.to_bits(),
                "kind {name}: energy must be bit-identical"
            );
        }
    }
}

#[test]
fn service_rejections_are_typed_and_leave_other_tenants_serving() {
    let (_, flat_spec) = specs().remove(0);
    let registry = Arc::new(ModuleRegistry::new());
    registry
        .register("open", &flat_spec, &TenantOptions::default())
        .expect("register open");
    registry
        .register(
            "throttled",
            &flat_spec,
            &TenantOptions {
                // 1 token, glacial refill: the second query must see 429.
                quota: Some((1e-3, 1.0)),
                ..TenantOptions::default()
            },
        )
        .expect("register throttled");
    let service = RecallService::new(registry, &ServerConfig::default());
    let query = patterns().remove(0);

    let ask = |tenant: &str| {
        service.handle(&ApiRecallRequest {
            tenant: tenant.to_owned(),
            input: query.clone(),
        })
    };
    assert!(
        ask("throttled").is_ok(),
        "burst token admits the first call"
    );
    let denied = ask("throttled").expect_err("quota exhausted");
    assert_eq!(denied.status(), 429);
    assert_eq!(denied.kind(), "over_quota");

    // Unknown tenant and wrong-width inputs are typed too.
    assert_eq!(ask("missing").expect_err("unknown").status(), 404);
    let narrow = service
        .handle(&ApiRecallRequest {
            tenant: "open".to_owned(),
            input: vec![1, 2],
        })
        .expect_err("wrong width");
    assert_eq!(narrow.status(), 400);

    // None of that disturbed the open tenant.
    assert!(ask("open").is_ok());
    let snapshot = service.recorder().snapshot();
    assert_eq!(snapshot.counter("server.rejected.over_quota"), 1);
    assert_eq!(snapshot.counter("server.rejected.unknown_tenant"), 1);
    assert_eq!(snapshot.counter("server.rejected.bad_request"), 1);
}

#[test]
fn evicted_tenants_stop_serving() {
    let (_, spec) = specs().remove(0);
    let registry = Arc::new(ModuleRegistry::new());
    registry
        .register("gone-soon", &spec, &TenantOptions::default())
        .expect("register");
    let service = RecallService::new(Arc::clone(&registry), &ServerConfig::default());
    let query = patterns().remove(0);
    assert!(service
        .handle(&ApiRecallRequest {
            tenant: "gone-soon".to_owned(),
            input: query.clone(),
        })
        .is_ok());
    assert!(registry.evict("gone-soon"));
    assert!(!registry.evict("gone-soon"), "second evict is a no-op");
    let err = service
        .handle(&ApiRecallRequest {
            tenant: "gone-soon".to_owned(),
            input: query,
        })
        .expect_err("evicted tenant must 404");
    assert_eq!(err.status(), 404);
}
