//! The two framings are interchangeable: a request encoded as JSON and as
//! a binary frame decode to identical structs, and a served response
//! survives both encodings bit-identically — including the f64 energy.

use proptest::prelude::*;
use spinamm_core::amm::AmmConfig;
use spinamm_server::api::{ApiMatch, ApiRecallRequest, ApiRecallResponse, DeploymentKind};
use spinamm_server::registry::{DeploymentSpec, ModuleRegistry, TenantOptions};
use spinamm_server::service::{RecallService, ServerConfig};
use std::sync::Arc;

fn patterns() -> Vec<Vec<u32>> {
    vec![
        vec![0, 31, 0, 31, 7, 24],
        vec![31, 0, 31, 0, 24, 7],
        vec![15, 15, 15, 15, 15, 15],
    ]
}

#[test]
fn request_framings_decode_identically() {
    let request = ApiRecallRequest {
        tenant: "alpha".to_owned(),
        input: vec![0, 31, 7, 24, u32::from(u16::MAX), 15],
    };
    let from_json = ApiRecallRequest::from_json(&request.to_json()).expect("json");
    let from_binary = ApiRecallRequest::decode_binary(&request.encode_binary()).expect("binary");
    assert_eq!(from_json, request);
    assert_eq!(from_binary, request);
    assert_eq!(from_json, from_binary);
}

#[test]
fn served_response_survives_both_framings_bit_identically() {
    let registry = Arc::new(ModuleRegistry::new());
    registry
        .register(
            "alpha",
            &DeploymentSpec::Tiled {
                patterns: patterns(),
                tile_capacity: 2,
                top_k: 3,
                config: AmmConfig::default(),
            },
            &TenantOptions::default(),
        )
        .expect("register");
    let service = RecallService::new(registry, &ServerConfig::default());
    let served = service
        .handle(&ApiRecallRequest {
            tenant: "alpha".to_owned(),
            input: vec![0, 31, 0, 31, 7, 24],
        })
        .expect("served");
    assert_eq!(served.kind, DeploymentKind::Tiled);
    assert!(!served.matches.is_empty(), "tiled responses rank matches");
    assert!(served.energy_j > 0.0);

    let via_json = ApiRecallResponse::from_json(&served.to_json()).expect("json");
    let via_binary = ApiRecallResponse::decode_binary(&served.encode_binary()).expect("binary");
    assert_eq!(via_json, served);
    assert_eq!(via_binary, served);
    // Bit-identity of the energy across the text framing, not mere
    // approximate equality.
    assert_eq!(via_json.energy_j.to_bits(), served.energy_j.to_bits());
    assert_eq!(via_binary.energy_j.to_bits(), served.energy_j.to_bits());
}

#[test]
fn truncated_and_corrupt_frames_are_rejected() {
    let request = ApiRecallRequest {
        tenant: "alpha".to_owned(),
        input: vec![1, 2, 3],
    };
    let frame = request.encode_binary();
    for cut in 0..frame.len() {
        assert!(
            ApiRecallRequest::decode_binary(&frame[..cut]).is_err(),
            "a frame cut at byte {cut} must not decode"
        );
    }
    let mut bad_magic = frame.clone();
    bad_magic[0] ^= 0xFF;
    assert!(ApiRecallRequest::decode_binary(&bad_magic).is_err());
    let mut bad_version = frame.clone();
    bad_version[1] = 99;
    assert!(ApiRecallRequest::decode_binary(&bad_version).is_err());
    let mut trailing = frame;
    trailing.push(0);
    assert!(ApiRecallRequest::decode_binary(&trailing).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_request_round_trips_both_framings(
        tenant_seed in any::<u64>(),
        input in proptest::collection::vec(0u32..=1_000_000, 0..64),
    ) {
        let request = ApiRecallRequest {
            tenant: format!("tenant-{tenant_seed:x}"),
            input,
        };
        prop_assert_eq!(
            ApiRecallRequest::from_json(&request.to_json()).unwrap(),
            request.clone()
        );
        prop_assert_eq!(
            ApiRecallRequest::decode_binary(&request.encode_binary()).unwrap(),
            request
        );
    }

    #[test]
    fn any_response_round_trips_both_framings(
        tenant_seed in any::<u64>(),
        kind_code in 0usize..4,
        winner in any::<u64>(),
        accepted in any::<bool>(),
        dom in any::<u32>(),
        energy_bits in any::<u64>(),
        matches in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..8),
    ) {
        let energy_j = f64::from_bits(energy_bits);
        if energy_j.is_nan() {
            // NaN != NaN under PartialEq; skip those bit patterns.
            return Ok(());
        }
        let response = ApiRecallResponse {
            tenant: format!("tenant-{tenant_seed:x}"),
            kind: [
                DeploymentKind::Flat,
                DeploymentKind::Partitioned,
                DeploymentKind::Hierarchical,
                DeploymentKind::Tiled,
            ][kind_code],
            winner,
            accepted,
            dom,
            matches: matches
                .into_iter()
                .map(|(global_column, score)| ApiMatch { global_column, score })
                .collect(),
            energy_j,
        };
        let via_json = ApiRecallResponse::from_json(&response.to_json()).unwrap();
        let via_binary = ApiRecallResponse::decode_binary(&response.encode_binary()).unwrap();
        prop_assert_eq!(via_json.energy_j.to_bits(), response.energy_j.to_bits());
        prop_assert_eq!(via_binary.energy_j.to_bits(), response.energy_j.to_bits());
        prop_assert_eq!(via_json, response.clone());
        prop_assert_eq!(via_binary, response);
    }
}
