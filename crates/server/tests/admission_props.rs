//! Property tests of the admission law. The token bucket is a pure
//! function of the arrival-timestamp sequence, so virtual time lets us
//! pin two laws exactly:
//!
//! 1. **never above quota** — over any arrival sequence, admissions never
//!    exceed `burst + rate × span`;
//! 2. **eventually below quota** — a drained bucket always admits again
//!    at the instant its own `nanos_until_available` hint names, and
//!    never one nanosecond earlier.

use proptest::prelude::*;
use spinamm_server::admission::{ConcurrencyGate, TokenBucket};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn never_admits_above_quota(
        rate in 0.5f64..2_000.0,
        burst in 1.0f64..64.0,
        gaps in proptest::collection::vec(0u64..200_000_000, 1..200),
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        let mut now = 0u64;
        let mut admitted = 0u64;
        for gap in &gaps {
            now += gap;
            if bucket.try_admit(now) {
                admitted += 1;
            }
        }
        // The bucket starts full (burst tokens) and refills at `rate`
        // over the whole span; nothing more can ever be admitted.
        let ceiling = burst + rate * (now as f64) * 1e-9;
        prop_assert!(
            (admitted as f64) <= ceiling + 1e-6,
            "admitted {} of {} arrivals, ceiling {:.3}",
            admitted,
            gaps.len(),
            ceiling
        );
    }

    #[test]
    fn eventually_admits_below_quota(
        rate in 0.5f64..2_000.0,
        burst in 1.0f64..64.0,
        drain in 1usize..80,
        start in 0u64..1_000_000_000,
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        for _ in 0..drain {
            let _ = bucket.try_admit(start);
        }
        let wait = bucket.nanos_until_available(start);
        // The hint is sound: admission succeeds at `start + wait` …
        let mut at_hint = bucket.clone();
        prop_assert!(at_hint.try_admit(start + wait), "hint must admit");
        // … and tight: one nanosecond earlier still rejects (when the
        // bucket was actually empty).
        if wait > 1 {
            let mut early = bucket.clone();
            prop_assert!(!early.try_admit(start + wait - 1), "hint must be tight");
        }
        // A client that just retries the hint makes progress forever.
        let mut now = start;
        for _ in 0..8 {
            now += bucket.nanos_until_available(now);
            prop_assert!(bucket.try_admit(now));
        }
    }

    #[test]
    fn burst_at_one_instant_admits_exactly_floor_burst(
        rate in 0.5f64..2_000.0,
        burst in 1.0f64..64.0,
        arrivals in 65usize..128,
        at in 0u64..1_000_000_000,
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        let admitted = (0..arrivals).filter(|_| bucket.try_admit(at)).count();
        prop_assert_eq!(admitted, burst.floor() as usize);
    }

    #[test]
    fn gate_never_exceeds_limit_under_any_schedule(
        limit in 1usize..16,
        ops in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let gate = ConcurrencyGate::new(limit);
        let mut held = Vec::new();
        for acquire in ops {
            if acquire {
                if let Some(guard) = gate.try_acquire() {
                    held.push(guard);
                }
            } else {
                held.pop();
            }
            prop_assert!(gate.inflight() <= limit as u64);
            prop_assert_eq!(gate.inflight(), held.len() as u64);
            if held.len() < limit {
                // Below the cap the gate must admit.
                let guard = gate.try_acquire();
                prop_assert!(guard.is_some());
                drop(guard);
            } else {
                prop_assert!(gate.try_acquire().is_none());
            }
        }
    }
}
