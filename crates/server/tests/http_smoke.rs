//! End-to-end smoke over real TCP on loopback: registers tenants over
//! HTTP, fires a mixed-tenant query burst, asserts the 200/429 split and
//! the `/metrics` document schema, exercises the binary framing on the
//! same port, and evicts a tenant. This is the test CI's serve smoke step
//! runs.

use spinamm_core::amm::AmmConfig;
use spinamm_server::api::{ApiRecallRequest, ApiRecallResponse, RESPONSE_MAGIC, WIRE_VERSION};
use spinamm_server::registry::{DeploymentSpec, ModuleRegistry, TenantOptions};
use spinamm_server::service::{RecallService, ServerConfig};
use spinamm_server::SpinServer;
use spinamm_telemetry::json::{self, JsonValue};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn patterns() -> Vec<Vec<u32>> {
    vec![vec![0, 31, 0, 31], vec![31, 0, 31, 0], vec![15, 15, 15, 15]]
}

/// One HTTP/1.1 exchange on a fresh connection; returns (status, body).
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("status code");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn start_server() -> (SpinServer, Arc<RecallService>) {
    let registry = Arc::new(ModuleRegistry::new());
    registry
        .register(
            "bulk",
            &DeploymentSpec::Flat {
                patterns: patterns(),
                config: AmmConfig::default(),
            },
            &TenantOptions::default(),
        )
        .expect("register bulk");
    registry
        .register(
            "throttled",
            &DeploymentSpec::Flat {
                patterns: patterns(),
                config: AmmConfig::default(),
            },
            &TenantOptions {
                // Two burst tokens, glacial refill: a burst sees exactly
                // two 200s, the rest 429.
                quota: Some((1e-3, 2.0)),
                ..TenantOptions::default()
            },
        )
        .expect("register throttled");
    let config = ServerConfig::builder().bind("127.0.0.1:0").build();
    let service = Arc::new(RecallService::new(registry, &config));
    let server = SpinServer::start(Arc::clone(&service), &config).expect("bind");
    (server, service)
}

#[test]
fn mixed_tenant_burst_splits_200_and_429_and_metrics_report_it() {
    let (server, _service) = start_server();
    let addr = server.addr();
    let query = ApiRecallRequest {
        tenant: String::new(),
        input: vec![0, 31, 0, 31],
    };

    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "healthz: {body}");

    // 6 queries to the open tenant, 6 to the throttled one (burst 2).
    let mut statuses = Vec::new();
    for tenant in ["bulk", "throttled"] {
        for _ in 0..6 {
            let body = ApiRecallRequest {
                tenant: tenant.to_owned(),
                ..query.clone()
            }
            .to_json();
            let (status, payload) = http(addr, "POST", "/v1/recall", &body);
            if status == 200 {
                let response = ApiRecallResponse::from_json(&payload).expect("response json");
                assert_eq!(response.tenant, tenant);
                assert_eq!(response.winner, 0, "query matches stored pattern 0");
            } else {
                let doc = json::parse(&payload).expect("error json");
                assert_eq!(
                    doc.get("error")
                        .and_then(|e| e.get("kind"))
                        .and_then(JsonValue::as_str),
                    Some("over_quota")
                );
            }
            statuses.push((tenant, status));
        }
    }
    let ok = |t: &str| {
        statuses
            .iter()
            .filter(|(n, s)| *n == t && *s == 200)
            .count()
    };
    let throttled_429 = statuses
        .iter()
        .filter(|(n, s)| *n == "throttled" && *s == 429)
        .count();
    assert_eq!(ok("bulk"), 6, "open tenant serves everything");
    assert_eq!(ok("throttled"), 2, "throttled tenant serves its burst");
    assert_eq!(throttled_429, 4, "the rest are typed 429s");

    // /metrics: per-tenant engine counters plus the server-level split.
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let doc = json::parse(&body).expect("metrics json");
    let server_metrics = doc
        .get("server")
        .and_then(|s| s.get("metrics"))
        .expect("server.metrics");
    let counter = |v: &JsonValue, name: &str| {
        v.get("counters")
            .and_then(|c| c.get(name))
            .and_then(JsonValue::as_u64)
    };
    assert_eq!(counter(server_metrics, "server.served"), Some(8));
    assert_eq!(
        counter(server_metrics, "server.rejected.over_quota"),
        Some(4)
    );
    for tenant in ["bulk", "throttled"] {
        let t = doc
            .get("tenants")
            .and_then(|t| t.get(tenant))
            .unwrap_or_else(|| panic!("tenant {tenant} in /metrics"));
        assert_eq!(
            t.get("kind").and_then(JsonValue::as_str),
            Some("flat"),
            "tenant {tenant} kind"
        );
        let metrics = t.get("metrics").expect("tenant metrics");
        let completed = counter(metrics, "engine.completed").unwrap_or(0);
        assert_eq!(completed, if tenant == "bulk" { 6 } else { 2 });
        // Queue-wait attribution lands on the tenant's own recorder.
        let queue_wait = metrics
            .get("histograms")
            .and_then(|h| h.get("engine.queue_wait_ns"))
            .and_then(|h| h.get("count"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        assert_eq!(queue_wait, completed, "tenant {tenant} queue-wait samples");
    }

    server.shutdown();
}

#[test]
fn binary_framing_serves_on_the_same_port() {
    let (server, _service) = start_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let request = ApiRecallRequest {
        tenant: "bulk".to_owned(),
        input: vec![31, 0, 31, 0],
    };
    // Two frames on one session: the framing is persistent.
    for _ in 0..2 {
        stream.write_all(&request.encode_binary()).expect("send");
        let mut header = [0u8; 8];
        stream.read_exact(&mut header).expect("response header");
        assert_eq!(header[0], RESPONSE_MAGIC);
        assert_eq!(header[1], WIRE_VERSION);
        let status = u16::from_le_bytes([header[2], header[3]]);
        let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
        assert_eq!(status, 200);
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).expect("response body");
        let response = ApiRecallResponse::decode_binary(&body).expect("decode");
        assert_eq!(response.tenant, "bulk");
        assert_eq!(response.winner, 1);
    }
    server.shutdown();
}

#[test]
fn tenants_register_and_evict_over_http() {
    let (server, _service) = start_server();
    let addr = server.addr();
    let spec = r#"{
        "tenant": "dynamic",
        "kind": "tiled",
        "patterns": [[0, 31, 0, 31], [31, 0, 31, 0], [15, 15, 15, 15]],
        "tile_capacity": 2,
        "top_k": 2,
        "quota_qps": 100.0,
        "seed": 7
    }"#;
    let (status, body) = http(addr, "POST", "/v1/tenants", spec);
    assert_eq!(status, 201, "register: {body}");
    let doc = json::parse(&body).expect("registration json");
    assert_eq!(doc.get("kind").and_then(JsonValue::as_str), Some("tiled"));

    // Duplicate name conflicts; bad kind is a 400.
    let (status, _) = http(addr, "POST", "/v1/tenants", spec);
    assert_eq!(status, 409);
    let (status, _) = http(
        addr,
        "POST",
        "/v1/tenants",
        r#"{"tenant":"x","kind":"nope","patterns":[[1]]}"#,
    );
    assert_eq!(status, 400);

    // The new tenant serves, ranked matches included.
    let query = ApiRecallRequest {
        tenant: "dynamic".to_owned(),
        input: vec![0, 31, 0, 31],
    };
    let (status, body) = http(addr, "POST", "/v1/recall", &query.to_json());
    assert_eq!(status, 200, "recall on dynamic tenant: {body}");
    let response = ApiRecallResponse::from_json(&body).expect("response json");
    assert_eq!(response.matches.len(), 2, "top_k=2 ranked matches");

    // Evict, then the tenant is gone.
    let (status, _) = http(addr, "DELETE", "/v1/tenants/dynamic", "");
    assert_eq!(status, 200);
    let (status, _) = http(addr, "POST", "/v1/recall", &query.to_json());
    assert_eq!(status, 404);
    let (status, _) = http(addr, "DELETE", "/v1/tenants/dynamic", "");
    assert_eq!(status, 404);

    server.shutdown();
}

#[test]
fn unknown_routes_and_malformed_bodies_are_typed_errors() {
    let (server, _service) = start_server();
    let addr = server.addr();
    let (status, _) = http(addr, "GET", "/v1/unknown", "");
    assert_eq!(status, 404);
    let (status, body) = http(addr, "POST", "/v1/recall", "{not json");
    assert_eq!(status, 400);
    let doc = json::parse(&body).expect("error body");
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("bad_request")
    );
    server.shutdown();
}
