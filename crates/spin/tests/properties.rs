//! Property-based tests for the spin-device models: invariants of the wall
//! dynamics, the behavioural neuron and the thermal statistics.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spinamm_circuit::units::{Amps, Hertz, Kelvin, Seconds};
use spinamm_spin::dynamics::DwDynamics;
use spinamm_spin::geometry::DwGeometry;
use spinamm_spin::neuron::{DomainWallNeuron, NeuronConfig};
use spinamm_spin::thermal::ThermalModel;
use spinamm_spin::{Mtj, Polarity};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Calibration is exact for any geometry and target: the analytic
    /// threshold of a calibrated model equals the requested current.
    #[test]
    fn calibration_round_trips(
        factor in 0.3..3.0f64,
        target_ua in 0.1..10.0f64,
    ) {
        let geometry = DwGeometry::REFERENCE.scaled(factor).unwrap();
        let d = DwDynamics::calibrated(
            spinamm_spin::MagnetMaterial::NIFE,
            geometry,
            Amps(target_ua * 1e-6),
        )
        .unwrap();
        let got = d.analytic_threshold().0;
        prop_assert!(((got - target_ua * 1e-6) / (target_ua * 1e-6)).abs() < 1e-9);
    }

    /// The wall-motion ODE is sign-symmetric: reversing the current mirrors
    /// the trajectory.
    #[test]
    fn dynamics_sign_symmetry(i_ua in 1.2..8.0f64) {
        let d = DwDynamics::paper_reference();
        let fwd = d.simulate(Amps(i_ua * 1e-6));
        let rev = d.simulate(Amps(-i_ua * 1e-6));
        prop_assert_eq!(fwd.switched, rev.switched);
        prop_assert!((fwd.final_position + rev.final_position).abs() < 1e-12);
        match (fwd.switching_time, rev.switching_time) {
            (Some(a), Some(b)) => prop_assert!((a.0 - b.0).abs() < 1e-15),
            (None, None) => {}
            _ => prop_assert!(false, "asymmetric switching"),
        }
    }

    /// Switching time decreases monotonically with overdrive.
    #[test]
    fn switching_time_monotone(base in 1.5..6.0f64, extra in 0.5..4.0f64) {
        let d = DwDynamics::paper_reference();
        let t1 = d.switching_time(Amps(base * 1e-6));
        let t2 = d.switching_time(Amps((base + extra) * 1e-6));
        if let (Some(t1), Some(t2)) = (t1, t2) {
            prop_assert!(t2.0 <= t1.0 * 1.001, "t({base}) = {} < t = {}", t1.0, t2.0);
        }
    }

    /// The behavioural neuron is a *comparator with memory*: after any
    /// sequence of pulses, the state equals the direction of the last
    /// super-threshold pulse (or the initial state if none occurred).
    #[test]
    fn neuron_remembers_last_strong_pulse(
        pulses in proptest::collection::vec((-5.0..5.0f64, any::<bool>()), 1..20),
    ) {
        let config = NeuronConfig::paper();
        let pulse_len = Seconds(10e-9);
        // Effective threshold at this pulse: depinning + transit.
        let eff = spinamm_core_effective(&config, pulse_len);
        let mut neuron = DomainWallNeuron::new(config);
        let mut expected = Polarity::Down;
        for &(i_ua, _) in &pulses {
            let i = Amps(i_ua * 1e-6);
            neuron.apply(i, pulse_len);
            if i.0.abs() > eff {
                expected = if i.0 > 0.0 { Polarity::Up } else { Polarity::Down };
            }
        }
        prop_assert_eq!(neuron.state(), expected);
    }

    /// Thermal switching probability is monotone in current, in pulse
    /// length, and decreasing in barrier height.
    #[test]
    fn thermal_probability_monotonicities(
        frac in 0.0..0.95f64,
        delta in 0.0..0.05f64,
        pulse_ns in 1.0..100.0f64,
    ) {
        let ic = Amps(1e-6);
        let t20 = ThermalModel::PAPER;
        let t40 = ThermalModel::new(40.0, Hertz(1e9), Kelvin(300.0)).unwrap();
        let pulse = Seconds(pulse_ns * 1e-9);
        let p1 = t20.switching_probability(Amps(frac * 1e-6), ic, pulse);
        let p2 = t20.switching_probability(Amps((frac + delta) * 1e-6), ic, pulse);
        prop_assert!(p2 >= p1 - 1e-12);
        let p_long = t20.switching_probability(Amps(frac * 1e-6), ic, Seconds(pulse.0 * 2.0));
        prop_assert!(p_long >= p1 - 1e-12);
        let p_tall = t40.switching_probability(Amps(frac * 1e-6), ic, pulse);
        prop_assert!(p_tall <= p1 + 1e-12);
    }

    /// The MTJ reference always separates the two states, for any valid
    /// stack.
    #[test]
    fn mtj_reference_separates(rp in 100.0..50_000.0f64, ratio in 1.01..10.0f64) {
        let m = Mtj::new(
            spinamm_circuit::units::Ohms(rp),
            spinamm_circuit::units::Ohms(rp * ratio),
        )
        .unwrap();
        let r_ref = m.reference_resistance().0;
        prop_assert!(m.resistance(Polarity::Up).0 < r_ref);
        prop_assert!(m.resistance(Polarity::Down).0 > r_ref);
        prop_assert!(m.tmr() > 0.0);
    }
}

/// Mirror of `SpinSarAdc::effective_threshold` without depending on the
/// core crate (spin must stay downstream-free): threshold + transit
/// overdrive for the pulse.
fn spinamm_core_effective(config: &NeuronConfig, pulse: Seconds) -> f64 {
    config.threshold.0
        + config.travel_length / (pulse.0 * config.mobility * config.drift_velocity_per_amp)
}

/// Deterministic regression: thermal sampling converges to the analytic
/// probability (kept outside proptest to control the trial budget).
#[test]
fn thermal_sampling_converges() {
    let t = ThermalModel::PAPER;
    let ic = Amps(1e-6);
    let pulse = Seconds(20e-9);
    let i = Amps(0.8e-6);
    let p = t.switching_probability(i, ic, pulse);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let n = 40_000;
    let hits = (0..n)
        .filter(|_| t.sample_switch(i, ic, pulse, &mut rng))
        .count();
    let freq = hits as f64 / f64::from(n);
    assert!((freq - p).abs() < 0.01, "{freq} vs {p}");
}
