//! Magnetic material parameters.

use crate::SpinError;
use spinamm_circuit::units::{BOHR_MAGNETON, ELEMENTARY_CHARGE, GYROMAGNETIC_RATIO, MU_0};

/// Material parameters of the domain-wall strip.
///
/// Units are SI: magnetization in A/m (the paper's Table 2 gives NiFe's
/// Ms = 800 emu/cm³ = 8×10⁵ A/m), fields in A/m, lengths in metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MagnetMaterial {
    /// Saturation magnetization, A/m.
    pub saturation_magnetization: f64,
    /// Gilbert damping constant α (dimensionless).
    pub gilbert_damping: f64,
    /// Non-adiabatic spin-torque parameter β (dimensionless).
    pub nonadiabaticity: f64,
    /// Current spin polarization P (dimensionless, 0–1).
    pub spin_polarization: f64,
    /// Domain-wall width Δ, metres.
    pub wall_width: f64,
    /// Hard-axis (demagnetizing) anisotropy field H_K, A/m. For a thin
    /// in-plane strip the hard axis is out-of-plane and H_K ≈ N·Ms with a
    /// demag factor N close to 1.
    pub hard_axis_field: f64,
    /// Anisotropy energy barrier of the free domain in units of kT at 300 K
    /// (Table 2: Ku₂V = 20 kT for the computing-grade device).
    pub barrier_kt: f64,
}

impl MagnetMaterial {
    /// Permalloy (NiFe) with the paper's Table-2 values and standard
    /// literature dynamics constants.
    ///
    /// * Ms = 800 emu/cm³ = 8×10⁵ A/m (Table 2)
    /// * α = 0.01 (NiFe)
    /// * β = 0.35 — the non-adiabatic torque is taken large, consistent with
    ///   the paper's reliance on low-current, sub-ns wall motion
    ///   (experiments [13-14] report efficient DW drive in engineered
    ///   stacks); β/α sets the wall mobility.
    /// * P = 0.5
    /// * Δ = 10 nm wall width (width-limited in a 20 nm strip)
    /// * H_K = 0.8·Ms out-of-plane demag field
    /// * Eb = 20 kT (Table 2, computing-grade barrier)
    pub const NIFE: MagnetMaterial = MagnetMaterial {
        saturation_magnetization: 8.0e5,
        gilbert_damping: 0.01,
        nonadiabaticity: 0.35,
        spin_polarization: 0.5,
        wall_width: 10e-9,
        hard_axis_field: 0.8 * 8.0e5,
        barrier_kt: 20.0,
    };

    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SpinError::InvalidParameter`] for non-positive Ms, Δ, H_K or
    /// barrier, for α or β outside (0, 1], or P outside (0, 1].
    pub fn validate(&self) -> Result<(), SpinError> {
        let pos = [
            (self.saturation_magnetization, "Ms must be positive"),
            (self.wall_width, "wall width must be positive"),
            (self.hard_axis_field, "hard-axis field must be positive"),
            (self.barrier_kt, "energy barrier must be positive"),
        ];
        for (v, what) in pos {
            if !(v.is_finite() && v > 0.0) {
                return Err(SpinError::InvalidParameter { what });
            }
        }
        if !(self.gilbert_damping > 0.0 && self.gilbert_damping <= 1.0) {
            return Err(SpinError::InvalidParameter {
                what: "Gilbert damping must lie in (0, 1]",
            });
        }
        if !(self.nonadiabaticity >= 0.0 && self.nonadiabaticity <= 1.0) {
            return Err(SpinError::InvalidParameter {
                what: "non-adiabaticity must lie in [0, 1]",
            });
        }
        if !(self.spin_polarization > 0.0 && self.spin_polarization <= 1.0) {
            return Err(SpinError::InvalidParameter {
                what: "spin polarization must lie in (0, 1]",
            });
        }
        Ok(())
    }

    /// Spin-drift velocity per unit current density,
    /// `u/J = µ_B·P / (e·Ms)`, in (m/s)/(A/m²).
    ///
    /// This is the conversion between electrical drive and wall motion: with
    /// the NiFe defaults it is ≈ 3.6×10⁻¹¹, so the paper's
    /// J ≈ 10¹⁰–10¹¹ A/m² gives u below a metre per second at threshold and
    /// tens of m/s under overdrive.
    #[must_use]
    pub fn drift_velocity_per_current_density(&self) -> f64 {
        BOHR_MAGNETON * self.spin_polarization / (ELEMENTARY_CHARGE * self.saturation_magnetization)
    }

    /// Reduced gyromagnetic ratio γ′ = γ·µ₀ in m/(A·s), converting A/m
    /// fields into precession rates.
    #[must_use]
    pub fn gamma_prime(&self) -> f64 {
        GYROMAGNETIC_RATIO * MU_0
    }

    /// Walker-breakdown drift velocity
    /// `u_W = Δ·γ′·α·H_K / (2·|β − α|)` — above it the steady (viscous)
    /// wall motion gives way to precessional motion. The defaults put u_W
    /// above the operating range so the comparator stays in the
    /// high-mobility viscous regime.
    #[must_use]
    pub fn walker_velocity(&self) -> f64 {
        let da = (self.nonadiabaticity - self.gilbert_damping).abs();
        if da == 0.0 {
            f64::INFINITY
        } else {
            self.wall_width * self.gamma_prime() * self.gilbert_damping * self.hard_axis_field
                / (2.0 * da)
        }
    }

    /// Wall mobility in the viscous regime, `v/u = β/α`.
    #[must_use]
    pub fn viscous_mobility(&self) -> f64 {
        self.nonadiabaticity / self.gilbert_damping
    }
}

impl Default for MagnetMaterial {
    fn default() -> Self {
        Self::NIFE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nife_is_valid() {
        MagnetMaterial::NIFE.validate().unwrap();
        assert_eq!(MagnetMaterial::default(), MagnetMaterial::NIFE);
    }

    #[test]
    fn drift_velocity_coefficient() {
        let c = MagnetMaterial::NIFE.drift_velocity_per_current_density();
        // µB·0.5/(e·8e5) ≈ 3.62e-11
        assert!((c - 3.62e-11).abs() / 3.62e-11 < 0.01, "{c}");
    }

    #[test]
    fn walker_velocity_above_operating_range() {
        // Operating u tops out around 19 m/s (32 µA through 60 nm²); Walker
        // must sit above that for the viscous model to hold.
        let uw = MagnetMaterial::NIFE.walker_velocity();
        assert!(uw > 19.0, "Walker velocity {uw} m/s too low");
    }

    #[test]
    fn viscous_mobility_is_beta_over_alpha() {
        let m = MagnetMaterial::NIFE;
        assert!((m.viscous_mobility() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn equal_alpha_beta_has_no_walker() {
        let mut m = MagnetMaterial::NIFE;
        m.nonadiabaticity = m.gilbert_damping;
        assert!(m.walker_velocity().is_infinite());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let base = MagnetMaterial::NIFE;
        let cases: Vec<MagnetMaterial> = vec![
            MagnetMaterial {
                saturation_magnetization: 0.0,
                ..base
            },
            MagnetMaterial {
                saturation_magnetization: f64::NAN,
                ..base
            },
            MagnetMaterial {
                gilbert_damping: 0.0,
                ..base
            },
            MagnetMaterial {
                gilbert_damping: 1.5,
                ..base
            },
            MagnetMaterial {
                nonadiabaticity: -0.1,
                ..base
            },
            MagnetMaterial {
                spin_polarization: 0.0,
                ..base
            },
            MagnetMaterial {
                spin_polarization: 1.1,
                ..base
            },
            MagnetMaterial {
                wall_width: -1e-9,
                ..base
            },
            MagnetMaterial {
                hard_axis_field: 0.0,
                ..base
            },
            MagnetMaterial {
                barrier_kt: 0.0,
                ..base
            },
        ];
        for (k, m) in cases.iter().enumerate() {
            assert!(m.validate().is_err(), "case {k} should fail");
        }
    }
}
