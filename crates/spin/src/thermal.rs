//! Thermal activation: Néel–Brown statistics of the free domain.
//!
//! The free domain's retention barrier is Eb = 20 kT (Table 2) — a
//! *computing-grade* barrier, deliberately much lower than the 40–60 kT of a
//! memory cell, because the paper's neurons are rewritten every cycle and
//! only need millisecond-scale stability. Thermal agitation then has two
//! observable effects that this module models:
//!
//! * **spontaneous flips** of an idle device at the Néel–Brown rate
//!   `f₀·exp(−Eb/kT)`, and
//! * **smearing of the switching threshold**: a drive slightly below the
//!   deterministic threshold can still switch within a pulse by thermal
//!   activation over the current-suppressed barrier
//!   `Eb·(1 − I/I_c)²` (the standard Koch/He–Zhu reduction), which rounds
//!   the hysteretic transfer characteristic of Fig. 7a.

use crate::SpinError;
use rand::Rng;
use spinamm_circuit::units::{Amps, Hertz, Kelvin, Seconds};

/// Néel–Brown thermal activation model.
///
/// # Example
///
/// A 20 kT barrier holds for seconds — ample for a device rewritten every
/// 10 ns cycle:
///
/// ```
/// use spinamm_circuit::units::Seconds;
/// use spinamm_spin::thermal::ThermalModel;
///
/// let t = ThermalModel::PAPER;
/// assert!(t.retention_time().0 > 0.1);
/// assert!(t.idle_flip_probability(Seconds(10e-9)) < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Barrier height in units of kT at the operating temperature.
    pub barrier_kt: f64,
    /// Attempt frequency f₀ (canonically 1 GHz for nanomagnets).
    pub attempt_frequency: Hertz,
    /// Operating temperature.
    pub temperature: Kelvin,
}

impl ThermalModel {
    /// The paper's device: Eb = 20 kT, f₀ = 1 GHz, 300 K.
    pub const PAPER: ThermalModel = ThermalModel {
        barrier_kt: 20.0,
        attempt_frequency: Hertz(1e9),
        temperature: Kelvin(300.0),
    };

    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns [`SpinError::InvalidParameter`] unless barrier, attempt
    /// frequency and temperature are finite and positive.
    pub fn new(
        barrier_kt: f64,
        attempt_frequency: Hertz,
        temperature: Kelvin,
    ) -> Result<Self, SpinError> {
        for (v, what) in [
            (barrier_kt, "barrier must be finite and positive"),
            (
                attempt_frequency.0,
                "attempt frequency must be finite and positive",
            ),
            (temperature.0, "temperature must be finite and positive"),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(SpinError::InvalidParameter { what });
            }
        }
        Ok(Self {
            barrier_kt,
            attempt_frequency,
            temperature,
        })
    }

    /// Spontaneous (zero-drive) flip rate, `f₀·exp(−Eb/kT)`.
    #[must_use]
    pub fn retention_rate(&self) -> Hertz {
        Hertz(self.attempt_frequency.0 * (-self.barrier_kt).exp())
    }

    /// Mean retention time, `1 / rate`.
    #[must_use]
    pub fn retention_time(&self) -> Seconds {
        Seconds(1.0 / self.retention_rate().0)
    }

    /// Probability that an idle device flips within `duration`.
    #[must_use]
    pub fn idle_flip_probability(&self, duration: Seconds) -> f64 {
        1.0 - (-self.retention_rate().0 * duration.0).exp()
    }

    /// Effective barrier under a drive of `current` against a deterministic
    /// threshold `i_c`, in kT: `Eb·(1 − I/I_c)²` for `0 ≤ I < I_c`, zero at
    /// and above threshold.
    ///
    /// Only the magnitude of the drive relative to the switching direction
    /// matters; callers pass magnitudes.
    #[must_use]
    pub fn suppressed_barrier_kt(&self, current: Amps, i_c: Amps) -> f64 {
        if i_c.0 <= 0.0 {
            return 0.0;
        }
        let x = (current.0 / i_c.0).max(0.0);
        if x >= 1.0 {
            0.0
        } else {
            self.barrier_kt * (1.0 - x) * (1.0 - x)
        }
    }

    /// Probability that a drive of magnitude `current` (toward switching)
    /// flips the device within `pulse`, including thermal activation:
    /// `1 − exp(−f₀·t·exp(−Eb(I)/kT))`.
    ///
    /// At `I ≥ I_c` this saturates to 1 (deterministic switching, assuming
    /// the pulse outlasts the wall transit — the behavioral neuron checks
    /// that separately).
    #[must_use]
    pub fn switching_probability(&self, current: Amps, i_c: Amps, pulse: Seconds) -> f64 {
        let eb = self.suppressed_barrier_kt(current, i_c);
        let rate = self.attempt_frequency.0 * (-eb).exp();
        1.0 - (-rate * pulse.0).exp()
    }

    /// Samples whether a switching event occurs within `pulse`.
    pub fn sample_switch<R: Rng + ?Sized>(
        &self,
        current: Amps,
        i_c: Amps,
        pulse: Seconds,
        rng: &mut R,
    ) -> bool {
        rng.gen::<f64>() < self.switching_probability(current, i_c, pulse)
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_retention_scale() {
        let t = ThermalModel::PAPER;
        // e^20 ≈ 4.85e8 → retention ≈ 0.49 s at f0 = 1 GHz: stable over any
        // 10 ns compute cycle, unstable over archival times — exactly the
        // computing/memory trade-off the paper describes.
        let tau = t.retention_time().0;
        assert!(tau > 0.1 && tau < 1.0, "retention {tau} s");
        let p_cycle = t.idle_flip_probability(Seconds(10e-9));
        assert!(p_cycle < 1e-6, "per-cycle flip prob {p_cycle}");
    }

    #[test]
    fn bigger_barrier_longer_retention() {
        let small = ThermalModel::new(20.0, Hertz(1e9), Kelvin(300.0)).unwrap();
        let big = ThermalModel::new(40.0, Hertz(1e9), Kelvin(300.0)).unwrap();
        assert!(big.retention_time().0 > 1e6 * small.retention_time().0);
    }

    #[test]
    fn suppressed_barrier_shape() {
        let t = ThermalModel::PAPER;
        let ic = Amps(1e-6);
        assert_eq!(t.suppressed_barrier_kt(Amps(0.0), ic), 20.0);
        assert!((t.suppressed_barrier_kt(Amps(0.5e-6), ic) - 5.0).abs() < 1e-12);
        assert_eq!(t.suppressed_barrier_kt(Amps(1e-6), ic), 0.0);
        assert_eq!(t.suppressed_barrier_kt(Amps(2e-6), ic), 0.0);
        // Degenerate threshold.
        assert_eq!(t.suppressed_barrier_kt(Amps(1e-6), Amps(0.0)), 0.0);
    }

    #[test]
    fn switching_probability_monotone_in_current() {
        let t = ThermalModel::PAPER;
        let ic = Amps(1e-6);
        let pulse = Seconds(10e-9);
        let mut last = -1.0;
        for k in 0..=10 {
            let i = Amps(1e-7 * f64::from(k));
            let p = t.switching_probability(i, ic, pulse);
            assert!(p >= last, "p must be monotone");
            last = p;
        }
        assert!((t.switching_probability(ic, ic, pulse) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn threshold_smearing_width() {
        // The 10–90 % switching window at a 10 ns pulse must be a small
        // fraction of I_c for Eb = 20 kT (sharp comparator) but non-zero
        // (rounding of Fig. 7a).
        let t = ThermalModel::PAPER;
        let ic = Amps(1e-6);
        let pulse = Seconds(10e-9);
        let p_at = |frac: f64| t.switching_probability(Amps(ic.0 * frac), ic, pulse);
        let mut i10 = 0.0;
        let mut i90 = 0.0;
        for k in 0..1000 {
            let f = f64::from(k) / 1000.0;
            if i10 == 0.0 && p_at(f) > 0.1 {
                i10 = f;
            }
            if i90 == 0.0 && p_at(f) > 0.9 {
                i90 = f;
            }
        }
        let width = i90 - i10;
        assert!(width > 0.0 && width < 0.25, "smearing width {width} of I_c");
    }

    #[test]
    fn sample_switch_statistics() {
        let t = ThermalModel::PAPER;
        let ic = Amps(1e-6);
        let pulse = Seconds(10e-9);
        let i = Amps(0.85e-6);
        let p = t.switching_probability(i, ic, pulse);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| t.sample_switch(i, ic, pulse, &mut rng))
            .count();
        let freq = hits as f64 / f64::from(n);
        assert!((freq - p).abs() < 0.02, "sampled {freq} vs p {p}");
    }

    #[test]
    fn validation() {
        assert!(ThermalModel::new(0.0, Hertz(1e9), Kelvin(300.0)).is_err());
        assert!(ThermalModel::new(20.0, Hertz(0.0), Kelvin(300.0)).is_err());
        assert!(ThermalModel::new(20.0, Hertz(1e9), Kelvin(-1.0)).is_err());
        assert!(ThermalModel::new(f64::NAN, Hertz(1e9), Kelvin(300.0)).is_err());
        assert_eq!(ThermalModel::default(), ThermalModel::PAPER);
    }
}
