//! Spin-device physics: domain-wall magnets, spin neurons, MTJs and their
//! CMOS sense interface.
//!
//! The paper's enabling device is the **domain-wall neuron (DWN)**: a short,
//! thin free domain (`d2`, 3×20×60 nm³ NiFe) connecting two anti-parallel
//! fixed domains. Current entering through `d1` and leaving through `d3`
//! drags the domain wall across the free domain and writes its polarity —
//! the device is a *current-direction comparator* operating at ultra-low
//! terminal voltage. An MTJ on top of the free domain (Rp ≈ 5 kΩ,
//! Rap ≈ 15 kΩ) reads the state through a dynamic CMOS latch.
//!
//! This crate implements the device stack bottom-up:
//!
//! * [`material`] — magnetic material parameters (NiFe defaults from the
//!   paper's Table 2: Ms = 800 emu/cm³, Eb = 20 kT).
//! * [`geometry`] — free-domain geometry and its scaling.
//! * [`dynamics`] — the 1-D collective-coordinate (q–φ) domain-wall model
//!   with adiabatic + non-adiabatic spin-transfer torque and an extrinsic
//!   pinning potential; numerically integrated (RK4), with the pinning
//!   strength calibrated so the reference device's threshold current is the
//!   paper's I_c = 1 µA. Supplies Fig. 5b/5c (threshold and switching-time
//!   scaling).
//! * [`thermal`] — Néel–Brown thermal activation over the Eb = 20 kT
//!   barrier: sub-threshold switching probability and the resulting transfer
//!   curve smearing (Fig. 7a).
//! * [`neuron`] — the behavioral DWN used by system simulations: hysteretic
//!   current comparator with threshold, switching delay and energy.
//! * [`mtj`] — MTJ read stack and reference cell.
//! * [`latch`] — the dynamic CMOS latch that digitizes the MTJ state
//!   (Fig. 7b), with offset-limited sensing failure probability.
//!
//! # Modelling note (substitution for micromagnetics)
//!
//! The paper used full micromagnetic simulation, calibrated against
//! experimental DWM data, and then *reduced it to a behavioral model* for
//! system SPICE runs (paper Fig. 14). We perform the same reduction starting
//! from the standard 1-D wall model: the pinning strength is the single
//! calibration constant, fixed so that the 3×20 nm² cross-section depins at
//! 1 µA (J_c ≈ 1.7×10¹⁰ A/m², the paper's "~10⁶ A/cm²" order). All other
//! behaviour — threshold ∝ cross-section, ns-scale switching, hysteresis —
//! then *follows* from the dynamics rather than being asserted.

pub mod dynamics;
pub mod geometry;
pub mod latch;
pub mod material;
pub mod mtj;
pub mod neuron;
pub mod thermal;

pub use dynamics::{DwDynamics, SwitchingOutcome};
pub use geometry::DwGeometry;
pub use latch::DynamicLatch;
pub use material::MagnetMaterial;
pub use mtj::{Mtj, Polarity};
pub use neuron::{DomainWallNeuron, NeuronConfig, TransferPoint};
pub use thermal::ThermalModel;

use std::error::Error;
use std::fmt;

/// Errors produced by spin-device model construction and simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpinError {
    /// A parameter is outside its physical domain.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// A numerical search (threshold bisection, calibration) failed to
    /// bracket or converge.
    CalibrationFailed {
        /// Description of the failed search.
        what: &'static str,
    },
}

impl fmt::Display for SpinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpinError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            SpinError::CalibrationFailed { what } => write!(f, "calibration failed: {what}"),
        }
    }
}

impl Error for SpinError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!SpinError::InvalidParameter { what: "x" }
            .to_string()
            .is_empty());
        assert!(SpinError::CalibrationFailed { what: "y" }
            .to_string()
            .contains("calibration"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpinError>();
    }
}
