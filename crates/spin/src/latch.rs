//! The dynamic CMOS latch that reads the DWN's MTJ (paper Fig. 7b).
//!
//! One load branch connects to the neuron's MTJ, the other to the reference
//! MTJ; both are precharged and the latch "effectively compares the
//! resistance between its two load branches through transient discharge
//! currents". Because the read current is transient, it does not disturb
//! the free domain.
//!
//! The model captures the two quantities the system study needs:
//!
//! * the **sense energy** — switched-capacitance energy of precharging and
//!   firing the latch, part of the proposed design's dynamic power, and
//! * the **sensing error probability** — the latch resolves the difference
//!   of the branch discharge rates against its own input-referred offset
//!   (transistor mismatch), giving a Gaussian error model.

use crate::mtj::{Mtj, Polarity};
use crate::SpinError;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use spinamm_circuit::units::{switched_capacitor_energy, Farads, Joules, Ohms, Volts};
use spinamm_telemetry::{NoopRecorder, Recorder};

/// Abramowitz–Stegun 7.1.26 approximation of `erf` (|error| < 1.5e-7),
/// sufficient for sensing-yield estimates.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Dynamic sense latch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicLatch {
    /// Supply voltage.
    pub vdd: Volts,
    /// Total switched capacitance per sense operation (both branches plus
    /// the cross-coupled pair).
    pub capacitance: Farads,
    /// Input-referred offset of the latch expressed as an equivalent
    /// *conductance* standard deviation (S): the mismatch of the discharge
    /// branches.
    pub offset_sigma_siemens: f64,
}

impl DynamicLatch {
    /// A 45 nm-class latch: 1 V supply, 2 fF switched per sense, and an
    /// offset equivalent to ~2 % of the MTJ conductance signal.
    pub const PAPER: DynamicLatch = DynamicLatch {
        vdd: Volts(1.0),
        capacitance: Farads(2e-15),
        offset_sigma_siemens: 1.0e-6,
    };

    /// Creates a latch model.
    ///
    /// # Errors
    ///
    /// Returns [`SpinError::InvalidParameter`] unless vdd and capacitance
    /// are finite and positive and the offset is finite and non-negative.
    pub fn new(
        vdd: Volts,
        capacitance: Farads,
        offset_sigma_siemens: f64,
    ) -> Result<Self, SpinError> {
        if !(vdd.0.is_finite() && vdd.0 > 0.0) {
            return Err(SpinError::InvalidParameter {
                what: "latch supply must be finite and positive",
            });
        }
        if !(capacitance.0.is_finite() && capacitance.0 > 0.0) {
            return Err(SpinError::InvalidParameter {
                what: "latch capacitance must be finite and positive",
            });
        }
        if !(offset_sigma_siemens.is_finite() && offset_sigma_siemens >= 0.0) {
            return Err(SpinError::InvalidParameter {
                what: "latch offset must be finite and non-negative",
            });
        }
        Ok(Self {
            vdd,
            capacitance,
            offset_sigma_siemens,
        })
    }

    /// Energy of one sense operation (precharge + evaluate): `C·Vdd²`.
    #[must_use]
    pub fn sense_energy(&self) -> Joules {
        switched_capacitor_energy(self.capacitance, self.vdd)
    }

    /// The discharge-rate signal the latch resolves: difference of branch
    /// conductances, `1/r_cell − 1/r_ref` (positive when the cell is in the
    /// low-resistance / parallel state).
    #[must_use]
    pub fn signal(&self, r_cell: Ohms, r_ref: Ohms) -> f64 {
        1.0 / r_cell.0 - 1.0 / r_ref.0
    }

    /// One stochastic sense: returns the detected polarity given the MTJ
    /// state resistance, sampling the latch offset.
    pub fn sense<R: Rng + ?Sized>(&self, mtj: &Mtj, state: Polarity, rng: &mut R) -> Polarity {
        self.sense_with(mtj, state, rng, &NoopRecorder)
    }

    /// Like [`DynamicLatch::sense`], incrementing the `spin.latch_fires`
    /// counter on `recorder` for every sense operation performed.
    pub fn sense_with<R: Rng + ?Sized, T: Recorder>(
        &self,
        mtj: &Mtj,
        state: Polarity,
        rng: &mut R,
        recorder: &T,
    ) -> Polarity {
        recorder.counter("spin.latch_fires", 1);
        let signal = self.signal(mtj.resistance(state), mtj.reference_resistance());
        let offset = if self.offset_sigma_siemens > 0.0 {
            Normal::new(0.0, self.offset_sigma_siemens)
                .expect("sigma validated at construction")
                .sample(rng)
        } else {
            0.0
        };
        if signal + offset > 0.0 {
            Polarity::Up
        } else {
            Polarity::Down
        }
    }

    /// Analytic probability of misreading a given state:
    /// `P(offset > |signal|) = Φ(−|signal|/σ)`.
    #[must_use]
    pub fn error_probability(&self, mtj: &Mtj, state: Polarity) -> f64 {
        let signal = self
            .signal(mtj.resistance(state), mtj.reference_resistance())
            .abs();
        if self.offset_sigma_siemens == 0.0 {
            return 0.0;
        }
        phi(-signal / self.offset_sigma_siemens)
    }
}

impl Default for DynamicLatch {
    fn default() -> Self {
        Self::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
        assert!((phi(0.0) - 0.5).abs() < 1e-9);
        assert!((phi(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn sense_energy_cv2() {
        let l = DynamicLatch::PAPER;
        assert!((l.sense_energy().0 - 2e-15).abs() < 1e-27);
    }

    #[test]
    fn signal_signs() {
        let l = DynamicLatch::PAPER;
        let m = Mtj::PAPER;
        // Parallel (5 kΩ) discharges faster than reference (10 kΩ).
        assert!(l.signal(m.resistance(Polarity::Up), m.reference_resistance()) > 0.0);
        assert!(l.signal(m.resistance(Polarity::Down), m.reference_resistance()) < 0.0);
    }

    #[test]
    fn noiseless_latch_is_exact() {
        let l = DynamicLatch::new(Volts(1.0), Farads(2e-15), 0.0).unwrap();
        let m = Mtj::PAPER;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(l.sense(&m, Polarity::Up, &mut rng), Polarity::Up);
        assert_eq!(l.sense(&m, Polarity::Down, &mut rng), Polarity::Down);
        assert_eq!(l.error_probability(&m, Polarity::Up), 0.0);
    }

    #[test]
    fn paper_latch_error_rate_is_negligible() {
        let l = DynamicLatch::PAPER;
        let m = Mtj::PAPER;
        // Signal: |1/5k − 1/10k| = 1e-4 S; σ = 1e-6 S → 100σ margin.
        assert!(l.error_probability(&m, Polarity::Up) < 1e-12);
        assert!(l.error_probability(&m, Polarity::Down) < 1e-12);
    }

    #[test]
    fn degraded_tmr_raises_error_rate() {
        let l = DynamicLatch::new(Volts(1.0), Farads(2e-15), 2e-5).unwrap();
        let strong = Mtj::PAPER;
        let weak = Mtj::new(Ohms(9_500.0), Ohms(10_500.0)).unwrap();
        let p_strong = l.error_probability(&strong, Polarity::Up);
        let p_weak = l.error_probability(&weak, Polarity::Up);
        assert!(
            p_weak > 100.0 * p_strong.max(1e-300),
            "weak {p_weak} vs strong {p_strong}"
        );
    }

    #[test]
    fn stochastic_sense_matches_analytic_rate() {
        // Deliberately noisy latch against a weak MTJ.
        let l = DynamicLatch::new(Volts(1.0), Farads(2e-15), 3e-5).unwrap();
        let m = Mtj::new(Ohms(8_000.0), Ohms(12_000.0)).unwrap();
        let p = l.error_probability(&m, Polarity::Down);
        assert!(
            p > 0.01 && p < 0.5,
            "test needs a measurable error rate, p = {p}"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let n = 30_000;
        let errors = (0..n)
            .filter(|_| l.sense(&m, Polarity::Down, &mut rng) != Polarity::Down)
            .count();
        let freq = errors as f64 / f64::from(n);
        assert!((freq - p).abs() < 0.01, "sampled {freq} vs analytic {p}");
    }

    #[test]
    fn validation() {
        assert!(DynamicLatch::new(Volts(0.0), Farads(1e-15), 1e-6).is_err());
        assert!(DynamicLatch::new(Volts(1.0), Farads(0.0), 1e-6).is_err());
        assert!(DynamicLatch::new(Volts(1.0), Farads(1e-15), -1.0).is_err());
        assert!(DynamicLatch::new(Volts(f64::NAN), Farads(1e-15), 1e-6).is_err());
        assert_eq!(DynamicLatch::default(), DynamicLatch::PAPER);
    }
}
