//! The behavioral domain-wall neuron (DWN): a hysteretic current comparator.
//!
//! This is the model the system-level simulations consume — the same
//! reduction the paper performs ("behavioral model based on statistical
//! characteristics of the device were used in SPICE simulation", Fig. 14).
//! The behavioural constants are *derived from* [`crate::dynamics`] rather
//! than asserted: [`NeuronConfig::from_dynamics`] extracts the threshold and
//! the closed-form viscous timing law
//! `t_switch(I) = L / (μ·(u(I) − u_c))` so that per-cycle evaluation costs
//! nanoseconds of CPU instead of an ODE integration.

use crate::dynamics::DwDynamics;
use crate::mtj::Polarity;
use crate::thermal::ThermalModel;
use crate::SpinError;
use rand::Rng;
use spinamm_circuit::units::{Amps, Joules, Ohms, Seconds, Volts};
use spinamm_telemetry::{NoopRecorder, Recorder};

/// Static configuration of a behavioural DWN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeuronConfig {
    /// Depinning threshold current magnitude.
    pub threshold: Amps,
    /// Free-domain length the wall traverses, metres.
    pub travel_length: f64,
    /// Viscous wall mobility β/α (dimensionless).
    pub mobility: f64,
    /// Spin-drift velocity per ampere of terminal current, (m/s)/A.
    pub drift_velocity_per_amp: f64,
    /// Magneto-metallic device resistance seen by the write current. The
    /// device is "magneto-metallic" and operates "at ultra low terminal
    /// voltages" — a few hundred ohms of metallic strip.
    pub device_resistance: Ohms,
    /// Thermal activation model (barrier smearing + retention).
    pub thermal: ThermalModel,
}

impl NeuronConfig {
    /// Derives the behavioural constants from a dynamics model.
    #[must_use]
    pub fn from_dynamics(dynamics: &DwDynamics) -> Self {
        let u_per_j = dynamics.material.drift_velocity_per_current_density();
        let area = dynamics.geometry.cross_section();
        Self {
            threshold: dynamics.analytic_threshold(),
            travel_length: dynamics.geometry.length.to_meters(),
            mobility: dynamics.material.viscous_mobility(),
            drift_velocity_per_amp: u_per_j / area,
            device_resistance: Ohms(200.0),
            thermal: ThermalModel {
                barrier_kt: dynamics.material.barrier_kt,
                ..ThermalModel::PAPER
            },
        }
    }

    /// The paper's reference neuron (NiFe 3×20×60 nm³, I_c = 1 µA,
    /// Eb = 20 kT).
    #[must_use]
    pub fn paper() -> Self {
        Self::from_dynamics(&DwDynamics::paper_reference())
    }

    /// A copy with a different threshold (the Fig. 13a sweep scales the DWN
    /// threshold; physically this is device scaling per Fig. 5b).
    ///
    /// # Errors
    ///
    /// Returns [`SpinError::InvalidParameter`] if `threshold` is not finite
    /// and positive.
    pub fn with_threshold(self, threshold: Amps) -> Result<Self, SpinError> {
        if !(threshold.0.is_finite() && threshold.0 > 0.0) {
            return Err(SpinError::InvalidParameter {
                what: "threshold must be finite and positive",
            });
        }
        Ok(Self { threshold, ..self })
    }

    /// Deterministic wall-transit time under drive `current` (magnitude), or
    /// `None` at/below threshold: `t = L / (μ·u_per_A·(|I| − I_c))`.
    #[must_use]
    pub fn transit_time(&self, current: Amps) -> Option<Seconds> {
        let overdrive = current.0.abs() - self.threshold.0;
        if overdrive <= 0.0 {
            return None;
        }
        let v = self.mobility * self.drift_velocity_per_amp * overdrive;
        Some(Seconds(self.travel_length / v))
    }

    /// Ohmic energy dissipated in the device by a drive pulse:
    /// `I²·R·t_pulse`.
    #[must_use]
    pub fn write_energy(&self, current: Amps, pulse: Seconds) -> Joules {
        (current * self.device_resistance) * current * pulse
    }

    /// Terminal voltage across the device at a given drive — the paper's
    /// "ultra low terminal voltage" claim is that this stays in millivolts.
    #[must_use]
    pub fn terminal_voltage(&self, current: Amps) -> Volts {
        current * self.device_resistance
    }
}

/// One behavioural DWN instance: configuration plus polarity state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainWallNeuron {
    config: NeuronConfig,
    state: Polarity,
}

/// One point of a swept transfer characteristic (Fig. 7a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferPoint {
    /// Input current at this sweep step.
    pub current: Amps,
    /// Device output after the step: `+1` (Up) or `−1` (Down); fractional
    /// values arise when averaging stochastic trials.
    pub output: f64,
}

impl DomainWallNeuron {
    /// Creates a neuron in the `Down` state.
    #[must_use]
    pub fn new(config: NeuronConfig) -> Self {
        Self {
            config,
            state: Polarity::Down,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &NeuronConfig {
        &self.config
    }

    /// Current polarity state.
    #[must_use]
    pub fn state(&self) -> Polarity {
        self.state
    }

    /// Forces the state (used by reset phases of the SAR cycle).
    pub fn set_state(&mut self, state: Polarity) {
        self.state = state;
    }

    /// Applies a current pulse deterministically (zero-temperature): the
    /// device switches toward the current's direction iff the magnitude
    /// exceeds the threshold *and* the wall completes its transit within
    /// the pulse. Positive current drives toward `Up`, negative toward
    /// `Down`; this sign convention makes the DWN "detect the polarity of
    /// the current flow at its input node".
    ///
    /// Returns the post-pulse state.
    pub fn apply(&mut self, current: Amps, pulse: Seconds) -> Polarity {
        self.apply_with(current, pulse, &NoopRecorder)
    }

    /// Like [`DomainWallNeuron::apply`], incrementing the
    /// `spin.dwn_switch_events` counter on `recorder` whenever the wall
    /// completes a transit (the state actually flips).
    pub fn apply_with<T: Recorder>(
        &mut self,
        current: Amps,
        pulse: Seconds,
        recorder: &T,
    ) -> Polarity {
        let toward = if current.0 > 0.0 {
            Polarity::Up
        } else {
            Polarity::Down
        };
        if toward != self.state {
            if let Some(t) = self.config.transit_time(Amps(current.0.abs())) {
                if t.0 <= pulse.0 {
                    self.state = toward;
                    recorder.counter("spin.dwn_switch_events", 1);
                }
            }
        }
        self.state
    }

    /// Applies a current pulse with thermal activation: sub-threshold drives
    /// can still switch with the Néel–Brown probability of
    /// [`ThermalModel::switching_probability`].
    ///
    /// Returns the post-pulse state.
    pub fn apply_thermal<R: Rng + ?Sized>(
        &mut self,
        current: Amps,
        pulse: Seconds,
        rng: &mut R,
    ) -> Polarity {
        self.apply_thermal_with(current, pulse, rng, &NoopRecorder)
    }

    /// Like [`DomainWallNeuron::apply_thermal`], incrementing the
    /// `spin.dwn_switch_events` counter on `recorder` whenever the state
    /// flips (deterministically or by thermal activation).
    pub fn apply_thermal_with<R: Rng + ?Sized, T: Recorder>(
        &mut self,
        current: Amps,
        pulse: Seconds,
        rng: &mut R,
        recorder: &T,
    ) -> Polarity {
        let toward = if current.0 > 0.0 {
            Polarity::Up
        } else {
            Polarity::Down
        };
        if toward != self.state {
            let magnitude = Amps(current.0.abs());
            let deterministic = self
                .config
                .transit_time(magnitude)
                .is_some_and(|t| t.0 <= pulse.0);
            if deterministic
                || self
                    .config
                    .thermal
                    .sample_switch(magnitude, self.config.threshold, pulse, rng)
            {
                self.state = toward;
                recorder.counter("spin.dwn_switch_events", 1);
            }
        }
        self.state
    }

    /// Sweeps the input current up then down (deterministically) and records
    /// the state after each step — the hysteretic transfer characteristic of
    /// Fig. 7a. `peak` sets the sweep amplitude and `points` the number of
    /// samples per leg; each step lasts `pulse`.
    #[must_use]
    pub fn transfer_curve(
        &mut self,
        peak: Amps,
        points: usize,
        pulse: Seconds,
    ) -> Vec<TransferPoint> {
        let mut out = Vec::with_capacity(2 * points);
        let n = points.max(2) as f64;
        // Up leg: −peak → +peak; down leg: +peak → −peak.
        for k in 0..points {
            let frac = -1.0 + 2.0 * k as f64 / (n - 1.0);
            let i = Amps(peak.0 * frac);
            let state = self.apply(i, pulse);
            out.push(TransferPoint {
                current: i,
                output: state.sign(),
            });
        }
        for k in 0..points {
            let frac = 1.0 - 2.0 * k as f64 / (n - 1.0);
            let i = Amps(peak.0 * frac);
            let state = self.apply(i, pulse);
            out.push(TransferPoint {
                current: i,
                output: state.sign(),
            });
        }
        out
    }
}

impl DomainWallNeuron {
    /// Monte-Carlo–averaged transfer characteristic: like
    /// [`DomainWallNeuron::transfer_curve`] but with thermal activation, so
    /// outputs are fractional near the thresholds — the rounded loop of
    /// Fig. 7a at finite temperature. Each sweep point averages `trials`
    /// independent devices at the same sweep position.
    pub fn thermal_transfer_curve<R: Rng + ?Sized>(
        config: NeuronConfig,
        peak: Amps,
        points: usize,
        pulse: Seconds,
        trials: usize,
        rng: &mut R,
    ) -> Vec<TransferPoint> {
        let n = points.max(2) as f64;
        let sweep: Vec<f64> = (0..points)
            .map(|k| -1.0 + 2.0 * k as f64 / (n - 1.0))
            .chain((0..points).map(|k| 1.0 - 2.0 * k as f64 / (n - 1.0)))
            .collect();
        let mut sums = vec![0.0; sweep.len()];
        for _ in 0..trials.max(1) {
            let mut neuron = DomainWallNeuron::new(config);
            for (k, frac) in sweep.iter().enumerate() {
                let state = neuron.apply_thermal(Amps(peak.0 * frac), pulse, rng);
                sums[k] += state.sign();
            }
        }
        sweep
            .iter()
            .zip(&sums)
            .map(|(&frac, &sum)| TransferPoint {
                current: Amps(peak.0 * frac),
                output: sum / trials.max(1) as f64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const PULSE: Seconds = Seconds(10e-9);

    #[test]
    fn paper_config_threshold() {
        let c = NeuronConfig::paper();
        assert!((c.threshold.0 - 1e-6).abs() / 1e-6 < 1e-6);
        assert!(c.travel_length > 0.0);
        assert!(c.mobility > 1.0);
    }

    #[test]
    fn transit_time_matches_dynamics_order() {
        // The behavioural timing law should agree with the ODE simulation to
        // within the transient error (tens of percent).
        let dynamics = DwDynamics::paper_reference();
        let c = NeuronConfig::from_dynamics(&dynamics);
        for i in [2e-6, 4e-6, 8e-6] {
            let behavioural = c.transit_time(Amps(i)).unwrap().0;
            let ode = dynamics.switching_time(Amps(i)).unwrap().0;
            let ratio = behavioural / ode;
            assert!(
                ratio > 0.4 && ratio < 2.5,
                "I = {i}: behavioural {behavioural} vs ODE {ode}"
            );
        }
    }

    #[test]
    fn no_transit_below_threshold() {
        let c = NeuronConfig::paper();
        assert!(c.transit_time(Amps(0.9e-6)).is_none());
        assert!(c.transit_time(Amps(1e-6)).is_none());
        assert!(c.transit_time(Amps(1.5e-6)).is_some());
    }

    #[test]
    fn comparator_detects_current_direction() {
        let mut n = DomainWallNeuron::new(NeuronConfig::paper());
        assert_eq!(n.state(), Polarity::Down);
        assert_eq!(n.apply(Amps(3e-6), PULSE), Polarity::Up);
        assert_eq!(n.apply(Amps(-3e-6), PULSE), Polarity::Down);
        assert_eq!(n.apply(Amps(3e-6), PULSE), Polarity::Up);
    }

    #[test]
    fn hysteresis_retains_state_for_small_inputs() {
        let mut n = DomainWallNeuron::new(NeuronConfig::paper());
        n.apply(Amps(3e-6), PULSE);
        assert_eq!(n.state(), Polarity::Up);
        // Sub-threshold negative current: state held (hysteresis).
        assert_eq!(n.apply(Amps(-0.5e-6), PULSE), Polarity::Up);
        // Sub-threshold positive: also held.
        assert_eq!(n.apply(Amps(0.5e-6), PULSE), Polarity::Up);
        // Above threshold flips.
        assert_eq!(n.apply(Amps(-2e-6), PULSE), Polarity::Down);
    }

    #[test]
    fn short_pulse_cannot_switch() {
        let mut n = DomainWallNeuron::new(NeuronConfig::paper());
        // 1.1 µA has a long transit; a 0.1 ns pulse is too short.
        assert_eq!(n.apply(Amps(1.1e-6), Seconds(0.1e-9)), Polarity::Down);
        // A long pulse succeeds.
        assert_eq!(n.apply(Amps(1.1e-6), Seconds(100e-9)), Polarity::Up);
    }

    #[test]
    fn transfer_curve_is_hysteretic() {
        let mut n = DomainWallNeuron::new(NeuronConfig::paper());
        let curve = n.transfer_curve(Amps(3e-6), 101, PULSE);
        assert_eq!(curve.len(), 202);
        // Output at zero current differs between the up and the down leg —
        // that is the hysteresis loop of Fig. 7a.
        let up_leg_at_zero = curve[..101]
            .iter()
            .min_by(|a, b| a.current.0.abs().total_cmp(&b.current.0.abs()))
            .unwrap()
            .output;
        let down_leg_at_zero = curve[101..]
            .iter()
            .min_by(|a, b| a.current.0.abs().total_cmp(&b.current.0.abs()))
            .unwrap()
            .output;
        assert!(up_leg_at_zero < 0.0, "rising leg still Down at 0");
        assert!(down_leg_at_zero > 0.0, "falling leg still Up at 0");
        // End points saturate.
        assert_eq!(curve[100].output, 1.0);
        assert_eq!(curve[201].output, -1.0);
    }

    #[test]
    fn thermal_application_can_switch_subthreshold() {
        let c = NeuronConfig::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut switched = 0;
        let trials = 2000;
        for _ in 0..trials {
            let mut n = DomainWallNeuron::new(c);
            // 0.5 I_c for a long pulse: the suppressed barrier is ~5 kT,
            // giving an O(1) switching probability over 100 ns.
            n.apply_thermal(Amps(0.5e-6), Seconds(100e-9), &mut rng);
            if n.state() == Polarity::Up {
                switched += 1;
            }
        }
        assert!(
            switched > 0 && switched < trials,
            "thermal switching should be probabilistic, got {switched}/{trials}"
        );
    }

    #[test]
    fn thermal_transfer_curve_is_rounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let curve = DomainWallNeuron::thermal_transfer_curve(
            NeuronConfig::paper(),
            Amps(3e-6),
            41,
            Seconds(10e-9),
            60,
            &mut rng,
        );
        assert_eq!(curve.len(), 82);
        // Saturated at the extremes...
        assert!((curve[40].output - 1.0).abs() < 0.05);
        assert!((curve[81].output + 1.0).abs() < 0.05);
        // ...and fractional somewhere near the rising threshold: at least
        // one sweep point averages strictly between the rails.
        let fractional = curve.iter().filter(|p| p.output.abs() < 0.95).count();
        assert!(fractional >= 1, "no thermal rounding observed");
    }

    #[test]
    fn terminal_voltage_is_millivolts() {
        let c = NeuronConfig::paper();
        // Even at the full 32 µA scale the terminal voltage stays below
        // 10 mV — the ultra-low-voltage claim.
        assert!(c.terminal_voltage(Amps(32e-6)).0 < 0.01);
    }

    #[test]
    fn write_energy_is_attojoules() {
        let c = NeuronConfig::paper();
        let e = c.write_energy(Amps(2e-6), PULSE);
        // (2 µA)² × 200 Ω × 10 ns = 8e-18 J.
        assert!((e.0 - 8e-18).abs() < 1e-21, "{}", e.0);
    }

    #[test]
    fn with_threshold_validates() {
        let c = NeuronConfig::paper();
        assert!(c.with_threshold(Amps(0.5e-6)).is_ok());
        assert!(c.with_threshold(Amps(0.0)).is_err());
        assert!(c.with_threshold(Amps(f64::NAN)).is_err());
    }

    #[test]
    fn set_state_forces() {
        let mut n = DomainWallNeuron::new(NeuronConfig::paper());
        n.set_state(Polarity::Up);
        assert_eq!(n.state(), Polarity::Up);
    }
}
