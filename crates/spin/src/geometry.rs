//! Free-domain geometry of the domain-wall neuron.

use crate::SpinError;
use spinamm_circuit::units::Nanometers;

/// Geometry of the free domain (`d2`) of a DWN: a thin rectangular strip.
///
/// The paper's reference device is 3×20×60 nm³ (Fig. 6 text; Table 2 lists
/// the free layer as 3×22×60 nm³ — we expose both).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DwGeometry {
    /// Film thickness.
    pub thickness: Nanometers,
    /// Strip width.
    pub width: Nanometers,
    /// Strip length — the distance the wall must travel to switch the
    /// domain.
    pub length: Nanometers,
}

impl DwGeometry {
    /// The 3×20×60 nm³ device the paper's threshold discussion uses.
    pub const REFERENCE: DwGeometry = DwGeometry {
        thickness: Nanometers(3.0),
        width: Nanometers(20.0),
        length: Nanometers(60.0),
    };

    /// The 3×22×60 nm³ free layer of Table 2.
    pub const TABLE2: DwGeometry = DwGeometry {
        thickness: Nanometers(3.0),
        width: Nanometers(22.0),
        length: Nanometers(60.0),
    };

    /// Creates a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SpinError::InvalidParameter`] unless all dimensions are
    /// finite and positive.
    pub fn new(
        thickness: Nanometers,
        width: Nanometers,
        length: Nanometers,
    ) -> Result<Self, SpinError> {
        for v in [thickness.0, width.0, length.0] {
            if !(v.is_finite() && v > 0.0) {
                return Err(SpinError::InvalidParameter {
                    what: "all dimensions must be finite and positive",
                });
            }
        }
        Ok(Self {
            thickness,
            width,
            length,
        })
    }

    /// Uniformly scales all three dimensions by `factor` (the Fig. 5b/5c
    /// scaling study).
    ///
    /// # Errors
    ///
    /// Returns [`SpinError::InvalidParameter`] if `factor` is not finite and
    /// positive.
    pub fn scaled(&self, factor: f64) -> Result<Self, SpinError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(SpinError::InvalidParameter {
                what: "scale factor must be finite and positive",
            });
        }
        Self::new(
            Nanometers(self.thickness.0 * factor),
            Nanometers(self.width.0 * factor),
            Nanometers(self.length.0 * factor),
        )
    }

    /// Cross-section area perpendicular to current flow, m².
    #[must_use]
    pub fn cross_section(&self) -> f64 {
        self.thickness.to_meters() * self.width.to_meters()
    }

    /// Free-domain volume, m³.
    #[must_use]
    pub fn volume(&self) -> f64 {
        self.cross_section() * self.length.to_meters()
    }

    /// Current density for a given terminal current, A/m².
    #[must_use]
    pub fn current_density(&self, current_amps: f64) -> f64 {
        current_amps / self.cross_section()
    }

    /// Terminal current for a given current density, A.
    #[must_use]
    pub fn current_for_density(&self, density: f64) -> f64 {
        density * self.cross_section()
    }
}

impl Default for DwGeometry {
    fn default() -> Self {
        Self::REFERENCE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_cross_section() {
        let a = DwGeometry::REFERENCE.cross_section();
        assert!((a - 60e-18).abs() < 1e-24, "{a}");
        assert!((DwGeometry::REFERENCE.volume() - 3600e-27).abs() < 1e-32);
    }

    #[test]
    fn table2_width() {
        assert_eq!(DwGeometry::TABLE2.width, Nanometers(22.0));
    }

    #[test]
    fn current_density_round_trip() {
        let g = DwGeometry::REFERENCE;
        let j = g.current_density(1e-6);
        // 1 µA / 60 nm² ≈ 1.67e10 A/m² — the paper's ~10⁶ A/cm² order.
        assert!((j - 1.6667e10).abs() / 1.6667e10 < 1e-3);
        assert!((g.current_for_density(j) - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn scaling_shrinks_cross_section_quadratically() {
        let g = DwGeometry::REFERENCE.scaled(0.5).unwrap();
        assert!((g.cross_section() - 15e-18).abs() < 1e-24);
        assert_eq!(g.length, Nanometers(30.0));
        assert!(DwGeometry::REFERENCE.scaled(0.0).is_err());
        assert!(DwGeometry::REFERENCE.scaled(f64::NAN).is_err());
    }

    #[test]
    fn validation() {
        assert!(DwGeometry::new(Nanometers(0.0), Nanometers(20.0), Nanometers(60.0)).is_err());
        assert!(DwGeometry::new(Nanometers(3.0), Nanometers(-1.0), Nanometers(60.0)).is_err());
        assert!(DwGeometry::new(Nanometers(3.0), Nanometers(20.0), Nanometers(f64::NAN)).is_err());
        assert_eq!(DwGeometry::default(), DwGeometry::REFERENCE);
    }
}
