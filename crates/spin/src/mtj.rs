//! Magnetic tunnel junction read stack.
//!
//! An MTJ between a fixed magnet `m1` and the free domain `d2` converts the
//! neuron's magnetic state into a resistance: low when `d2` is parallel to
//! `m1` (the paper's Rp ≈ 5 kΩ), high when anti-parallel (Rap ≈ 15 kΩ). A
//! reference MTJ "whose resistance is midway between the two resistances"
//! gives the dynamic latch its comparison point.

use crate::SpinError;
use spinamm_circuit::units::Ohms;

/// Magnetization polarity of the free domain, as seen by the read MTJ.
///
/// [`Polarity::Up`] is defined as *parallel* to the MTJ fixed layer `m1`
/// (low resistance); [`Polarity::Down`] is anti-parallel (high resistance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// Parallel to the read stack's fixed layer — low MTJ resistance.
    Up,
    /// Anti-parallel — high MTJ resistance.
    Down,
}

impl Polarity {
    /// The opposite polarity.
    #[must_use]
    pub fn flipped(self) -> Polarity {
        match self {
            Polarity::Up => Polarity::Down,
            Polarity::Down => Polarity::Up,
        }
    }

    /// Signed representation: `Up → +1`, `Down → −1`.
    #[must_use]
    pub fn sign(self) -> f64 {
        match self {
            Polarity::Up => 1.0,
            Polarity::Down => -1.0,
        }
    }
}

/// An MTJ read stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mtj {
    r_parallel: Ohms,
    r_antiparallel: Ohms,
}

impl Mtj {
    /// The paper's stack: Rp = 5 kΩ, Rap = 15 kΩ.
    pub const PAPER: Mtj = Mtj {
        r_parallel: Ohms(5_000.0),
        r_antiparallel: Ohms(15_000.0),
    };

    /// Creates an MTJ.
    ///
    /// # Errors
    ///
    /// Returns [`SpinError::InvalidParameter`] unless
    /// `0 < r_parallel < r_antiparallel` (both finite).
    pub fn new(r_parallel: Ohms, r_antiparallel: Ohms) -> Result<Self, SpinError> {
        if !(r_parallel.0.is_finite() && r_antiparallel.0.is_finite()) {
            return Err(SpinError::InvalidParameter {
                what: "MTJ resistances must be finite",
            });
        }
        if r_parallel.0 <= 0.0 || r_antiparallel.0 <= r_parallel.0 {
            return Err(SpinError::InvalidParameter {
                what: "require 0 < r_parallel < r_antiparallel",
            });
        }
        Ok(Self {
            r_parallel,
            r_antiparallel,
        })
    }

    /// Low (parallel) resistance.
    #[must_use]
    pub fn r_parallel(&self) -> Ohms {
        self.r_parallel
    }

    /// High (anti-parallel) resistance.
    #[must_use]
    pub fn r_antiparallel(&self) -> Ohms {
        self.r_antiparallel
    }

    /// Resistance for a given free-domain polarity.
    #[must_use]
    pub fn resistance(&self, polarity: Polarity) -> Ohms {
        match polarity {
            Polarity::Up => self.r_parallel,
            Polarity::Down => self.r_antiparallel,
        }
    }

    /// The reference cell: resistance midway between the two states (the
    /// paper's explicit construction for the latch's second load branch).
    #[must_use]
    pub fn reference_resistance(&self) -> Ohms {
        Ohms(0.5 * (self.r_parallel.0 + self.r_antiparallel.0))
    }

    /// Tunnel magneto-resistance ratio `(Rap − Rp)/Rp`.
    #[must_use]
    pub fn tmr(&self) -> f64 {
        (self.r_antiparallel.0 - self.r_parallel.0) / self.r_parallel.0
    }
}

impl Default for Mtj {
    fn default() -> Self {
        Self::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stack() {
        let m = Mtj::PAPER;
        assert_eq!(m.resistance(Polarity::Up), Ohms(5_000.0));
        assert_eq!(m.resistance(Polarity::Down), Ohms(15_000.0));
        assert_eq!(m.reference_resistance(), Ohms(10_000.0));
        assert!((m.tmr() - 2.0).abs() < 1e-12);
        assert_eq!(Mtj::default(), Mtj::PAPER);
    }

    #[test]
    fn polarity_algebra() {
        assert_eq!(Polarity::Up.flipped(), Polarity::Down);
        assert_eq!(Polarity::Down.flipped(), Polarity::Up);
        assert_eq!(Polarity::Up.sign(), 1.0);
        assert_eq!(Polarity::Down.sign(), -1.0);
    }

    #[test]
    fn reference_sits_between_states() {
        let m = Mtj::new(Ohms(4_000.0), Ohms(9_000.0)).unwrap();
        let r = m.reference_resistance().0;
        assert!(m.r_parallel().0 < r && r < m.r_antiparallel().0);
    }

    #[test]
    fn validation() {
        assert!(Mtj::new(Ohms(0.0), Ohms(15e3)).is_err());
        assert!(Mtj::new(Ohms(15e3), Ohms(5e3)).is_err());
        assert!(Mtj::new(Ohms(5e3), Ohms(5e3)).is_err());
        assert!(Mtj::new(Ohms(f64::NAN), Ohms(15e3)).is_err());
    }
}
