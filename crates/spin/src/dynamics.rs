//! 1-D collective-coordinate domain-wall dynamics.
//!
//! The wall is described by its position `q` along the strip and the tilt
//! angle `φ` of its internal magnetization (the q–φ model of Thiaville,
//! Tatara–Kohno). With adiabatic + non-adiabatic spin-transfer torque of
//! drift velocity `u` and a pinning field `H(q)`, the equations of motion
//! are
//!
//! ```text
//! (1+α²)·q̇ = Δγ′·(α·H(q) + (H_K/2)·sin 2φ) + (1+αβ)·u
//! (1+α²)·φ̇ =  γ′·(  H(q) − α·(H_K/2)·sin 2φ) + (β−α)·u/Δ
//! ```
//!
//! integrated by fixed-step RK4. The pinning field is periodic,
//! `H(q) = −H_p·sin(2πq/p)`, modelling edge roughness / engineered notches.
//! Setting `q̇ = φ̇ = 0` shows the wall stays pinned while
//! `|u| ≤ u_c = H_p·Δ·γ′/β`, so the pinning strength `H_p` is the single
//! knob that fixes the threshold current — [`DwDynamics::calibrated`] sets
//! it so a chosen geometry depins at a chosen current (the paper's 1 µA for
//! the 3×20×60 nm³ device).
//!
//! Above threshold the wall moves at the viscous-regime velocity
//! `v ≈ (β/α)·u` (minus pinning drag), which yields the paper's
//! nanosecond-scale switching under a few-µA overdrive; thresholds scale
//! with the cross-section area and switching times shrink with device size
//! — Fig. 5b and 5c.

use crate::geometry::DwGeometry;
use crate::material::MagnetMaterial;
use crate::SpinError;
use spinamm_circuit::units::{Amps, Seconds};

/// Result of one transient wall-motion simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingOutcome {
    /// `true` if the wall traversed the full free-domain length.
    pub switched: bool,
    /// Traversal time, when switched.
    pub switching_time: Option<Seconds>,
    /// Final wall position, metres (signed; drive direction sets the sign).
    pub final_position: f64,
    /// Mean velocity over the simulated interval, m/s.
    pub average_velocity: f64,
}

/// The integrable 1-D domain-wall model for a specific device.
///
/// # Example
///
/// The paper's reference device depins at 1 µA and crosses its free domain
/// in nanoseconds under overdrive:
///
/// ```
/// use spinamm_circuit::units::Amps;
/// use spinamm_spin::dynamics::DwDynamics;
///
/// let device = DwDynamics::paper_reference();
/// assert!(!device.simulate(Amps(0.5e-6)).switched); // pinned
/// let out = device.simulate(Amps(3e-6));
/// assert!(out.switched);
/// assert!(out.switching_time.unwrap().0 < 5e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DwDynamics {
    /// Material parameters.
    pub material: MagnetMaterial,
    /// Free-domain geometry.
    pub geometry: DwGeometry,
    /// Pinning field amplitude H_p, A/m.
    pub pinning_field: f64,
    /// Pinning period p, metres.
    pub pinning_period: f64,
    /// RK4 time step.
    pub time_step: Seconds,
    /// Simulation horizon for [`DwDynamics::simulate`].
    pub max_time: Seconds,
}

impl DwDynamics {
    /// Default pinning period: 10 nm (one rough-edge correlation length).
    pub const DEFAULT_PINNING_PERIOD: f64 = 10e-9;

    /// Builds a model whose depinning threshold equals `threshold` for the
    /// given geometry, using the closed-form pinned-equilibrium condition
    /// `H_p = β·u_c/(Δ·γ′)`.
    ///
    /// # Errors
    ///
    /// Returns [`SpinError::InvalidParameter`] if the material fails
    /// validation, the threshold is not positive, or β is zero (a β = 0 wall
    /// has no viscous depinning threshold in this model).
    pub fn calibrated(
        material: MagnetMaterial,
        geometry: DwGeometry,
        threshold: Amps,
    ) -> Result<Self, SpinError> {
        material.validate()?;
        if !(threshold.0.is_finite() && threshold.0 > 0.0) {
            return Err(SpinError::InvalidParameter {
                what: "threshold current must be finite and positive",
            });
        }
        if material.nonadiabaticity == 0.0 {
            return Err(SpinError::InvalidParameter {
                what: "calibration requires non-zero non-adiabaticity",
            });
        }
        let j_c = geometry.current_density(threshold.0);
        let u_c = material.drift_velocity_per_current_density() * j_c;
        let pinning_field =
            material.nonadiabaticity * u_c / (material.wall_width * material.gamma_prime());
        Ok(Self {
            material,
            geometry,
            pinning_field,
            pinning_period: Self::DEFAULT_PINNING_PERIOD,
            time_step: Seconds(1e-12),
            max_time: Seconds(30e-9),
        })
    }

    /// The paper's reference device: NiFe, 3×20×60 nm³, calibrated to the
    /// Table-2 threshold I_c = 1 µA.
    ///
    /// # Panics
    ///
    /// Never panics: the built-in constants are valid.
    #[must_use]
    pub fn paper_reference() -> Self {
        Self::calibrated(MagnetMaterial::NIFE, DwGeometry::REFERENCE, Amps(1e-6))
            .expect("paper constants are valid")
    }

    /// The analytic depinning drift velocity `u_c = H_p·Δ·γ′/β`, m/s.
    #[must_use]
    pub fn depinning_velocity(&self) -> f64 {
        self.pinning_field * self.material.wall_width * self.material.gamma_prime()
            / self.material.nonadiabaticity
    }

    /// The analytic threshold current implied by the pinning calibration.
    #[must_use]
    pub fn analytic_threshold(&self) -> Amps {
        let j = self.depinning_velocity() / self.material.drift_velocity_per_current_density();
        Amps(self.geometry.current_for_density(j))
    }

    /// Spin-drift velocity for a terminal current, m/s (signed).
    #[must_use]
    pub fn drift_velocity(&self, current: Amps) -> f64 {
        self.material.drift_velocity_per_current_density()
            * self.geometry.current_density(current.0)
    }

    /// Integrates the wall motion under a constant current until the wall
    /// crosses the free-domain length or `max_time` elapses.
    ///
    /// The wall starts at `q = 0`, `φ = 0` (freshly nucleated at the input
    /// end); the traversal target is `±length` depending on current sign.
    #[must_use]
    pub fn simulate(&self, current: Amps) -> SwitchingOutcome {
        let u = self.drift_velocity(current);
        let target = self.geometry.length.to_meters();
        let dt = self.time_step.0;
        let steps = (self.max_time.0 / dt).ceil() as usize;

        let mut q = 0.0_f64;
        let mut phi = 0.0_f64;
        let mut t = 0.0_f64;

        for _ in 0..steps {
            let (dq1, dphi1) = self.derivs(q, phi, u);
            let (dq2, dphi2) = self.derivs(q + 0.5 * dt * dq1, phi + 0.5 * dt * dphi1, u);
            let (dq3, dphi3) = self.derivs(q + 0.5 * dt * dq2, phi + 0.5 * dt * dphi2, u);
            let (dq4, dphi4) = self.derivs(q + dt * dq3, phi + dt * dphi3, u);
            q += dt / 6.0 * (dq1 + 2.0 * dq2 + 2.0 * dq3 + dq4);
            phi += dt / 6.0 * (dphi1 + 2.0 * dphi2 + 2.0 * dphi3 + dphi4);
            t += dt;
            if q.abs() >= target {
                return SwitchingOutcome {
                    switched: true,
                    switching_time: Some(Seconds(t)),
                    final_position: q,
                    average_velocity: q.abs() / t,
                };
            }
        }
        SwitchingOutcome {
            switched: false,
            switching_time: None,
            final_position: q,
            average_velocity: if t > 0.0 { q.abs() / t } else { 0.0 },
        }
    }

    /// Time derivatives `(q̇, φ̇)` of the collective coordinates.
    fn derivs(&self, q: f64, phi: f64, u: f64) -> (f64, f64) {
        let m = &self.material;
        let alpha = m.gilbert_damping;
        let beta = m.nonadiabaticity;
        let delta = m.wall_width;
        let gamma = m.gamma_prime();
        let hk2 = 0.5 * m.hard_axis_field;
        let h_pin =
            -self.pinning_field * (2.0 * std::f64::consts::PI * q / self.pinning_period).sin();
        let denom = 1.0 + alpha * alpha;
        let s2 = (2.0 * phi).sin();
        let q_dot = (delta * gamma * (alpha * h_pin + hk2 * s2) + (1.0 + alpha * beta) * u) / denom;
        let phi_dot = (gamma * (h_pin - alpha * hk2 * s2) + (beta - alpha) * u / delta) / denom;
        (q_dot, phi_dot)
    }

    /// Numerically locates the threshold current by bisection: the smallest
    /// current for which [`DwDynamics::simulate`] reports a switch.
    ///
    /// # Errors
    ///
    /// Returns [`SpinError::CalibrationFailed`] if no switching current is
    /// found below `64 ×` the analytic estimate.
    pub fn critical_current(&self) -> Result<Amps, SpinError> {
        let estimate = self.analytic_threshold().0;
        let mut hi = estimate;
        let mut guard = 0;
        while !self.simulate(Amps(hi)).switched {
            hi *= 2.0;
            guard += 1;
            if guard > 6 {
                return Err(SpinError::CalibrationFailed {
                    what: "no switching observed below 64x the analytic threshold",
                });
            }
        }
        let mut lo = 0.0;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if self.simulate(Amps(mid)).switched {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(Amps(hi))
    }

    /// Switching time at a given drive, or `None` below threshold.
    #[must_use]
    pub fn switching_time(&self, current: Amps) -> Option<Seconds> {
        self.simulate(current).switching_time
    }

    /// Average wall velocity over a sweep of drive currents — the
    /// depinning-plus-linear-mobility curve `v̄(I)` (zero below threshold,
    /// then approaching the viscous slope `β/α·u`).
    #[must_use]
    pub fn velocity_curve(&self, currents: &[Amps]) -> Vec<(Amps, f64)> {
        currents
            .iter()
            .map(|&i| {
                let out = self.simulate(i);
                let v = if out.switched {
                    out.average_velocity
                } else {
                    0.0
                };
                (i, v)
            })
            .collect()
    }

    /// The energy depth of one pinning well in units of kT at 300 K,
    /// `E_pin ≈ µ₀·Ms·V·H_p / kT`.
    ///
    /// This is deliberately **far below** the paper's Eb = 20 kT: the
    /// 20 kT figure (Table 2's Ku₂V) is the *anisotropy* barrier that
    /// protects the fully-switched domain state between cycles, while the
    /// wall-depinning barrier is engineered to be tiny so that µA-class
    /// currents move the wall. The two barriers protect different things —
    /// state retention vs. write threshold — and the DWN tolerates a soft
    /// write threshold because it is reset and rewritten every SAR cycle.
    /// [`crate::thermal::ThermalModel`] models the retention barrier; the
    /// sub-threshold *write* smearing it derives is an upper bound on
    /// stability, not the wall-creep floor.
    #[must_use]
    pub fn pinning_barrier_kt(&self) -> f64 {
        use spinamm_circuit::units::{Kelvin, MU_0};
        let e_pin = MU_0
            * self.material.saturation_magnetization
            * self.geometry.volume()
            * self.pinning_field;
        e_pin / Kelvin::ROOM.thermal_energy().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> DwDynamics {
        DwDynamics::paper_reference()
    }

    #[test]
    fn calibration_hits_one_microamp() {
        let d = reference();
        assert!((d.analytic_threshold().0 - 1e-6).abs() / 1e-6 < 1e-9);
        // The simulated threshold should agree with the analytic pinned-
        // equilibrium bound within a few percent.
        // Dynamic depinning (the wall enters the well with momentum) sits
        // slightly below the quasi-static bound — physical, and bounded.
        let ic = d.critical_current().unwrap();
        assert!(
            (ic.0 - 1e-6).abs() / 1e-6 < 0.20,
            "simulated threshold {} A",
            ic.0
        );
    }

    #[test]
    fn below_threshold_stays_pinned() {
        let d = reference();
        let out = d.simulate(Amps(0.5e-6));
        assert!(!out.switched);
        // The wall rattles inside the first pinning well: displacement stays
        // below one period.
        assert!(out.final_position.abs() < d.pinning_period);
    }

    #[test]
    fn above_threshold_switches_in_nanoseconds() {
        let d = reference();
        let out = d.simulate(Amps(2e-6));
        assert!(out.switched);
        let t = out.switching_time.unwrap().0;
        assert!(t > 0.1e-9 && t < 10e-9, "switching time {t} s");
    }

    #[test]
    fn table2_switching_time_scale() {
        // Table 2 lists Tswitch = 1.5 ns; a moderate overdrive (2–4 µA) must
        // land in that neighbourhood.
        let d = reference();
        let t = d.switching_time(Amps(3e-6)).unwrap().0;
        assert!(t > 0.3e-9 && t < 3e-9, "switching time {t} s");
    }

    #[test]
    fn switching_time_decreases_with_current() {
        let d = reference();
        let t2 = d.switching_time(Amps(2e-6)).unwrap().0;
        let t4 = d.switching_time(Amps(4e-6)).unwrap().0;
        let t8 = d.switching_time(Amps(8e-6)).unwrap().0;
        assert!(t2 > t4 && t4 > t8, "{t2} {t4} {t8}");
    }

    #[test]
    fn negative_current_switches_backwards() {
        let d = reference();
        let out = d.simulate(Amps(-2e-6));
        assert!(out.switched);
        assert!(out.final_position < 0.0);
    }

    #[test]
    fn threshold_scales_with_cross_section() {
        // Fig. 5b: scaling the device down reduces the critical current in
        // proportion to the cross-section area.
        let base = reference();
        let small_geom = DwGeometry::REFERENCE.scaled(0.5).unwrap();
        let small = DwDynamics {
            geometry: small_geom,
            ..base
        };
        let i_base = small.analytic_threshold();
        // Cross-section shrank 4×: threshold must shrink 4×.
        assert!(
            (i_base.0 - 0.25e-6).abs() / 0.25e-6 < 1e-9,
            "scaled threshold {} A",
            i_base.0
        );
        let sim = small.critical_current().unwrap();
        assert!((sim.0 - 0.25e-6).abs() / 0.25e-6 < 0.20);
    }

    #[test]
    fn smaller_device_switches_faster_at_same_current() {
        // Fig. 5c: for a given write current, a smaller device sees a larger
        // current density and a shorter travel length.
        let base = reference();
        let small = DwDynamics {
            geometry: DwGeometry::REFERENCE.scaled(0.5).unwrap(),
            ..base
        };
        let t_big = base.switching_time(Amps(3e-6)).unwrap().0;
        let t_small = small.switching_time(Amps(3e-6)).unwrap().0;
        assert!(t_small < t_big, "{t_small} vs {t_big}");
    }

    #[test]
    fn average_velocity_approaches_viscous_mobility() {
        // Far above threshold and over a strip long enough that the initial
        // tilt transient is negligible, v ≈ (β/α)·u. (In the real 60 nm
        // device the transit is transient-dominated — which is why the
        // behavioural neuron calibrates against the ODE, not this formula.)
        let mut d = reference();
        d.geometry = DwGeometry::new(
            d.geometry.thickness,
            d.geometry.width,
            spinamm_circuit::units::Nanometers(2000.0),
        )
        .unwrap();
        d.max_time = Seconds(100e-9);
        let i = Amps(16e-6);
        let u = d.drift_velocity(i);
        let out = d.simulate(i);
        assert!(out.switched);
        let v_expected = d.material.viscous_mobility() * u;
        let ratio = out.average_velocity / v_expected;
        assert!(
            ratio > 0.6 && ratio < 1.1,
            "velocity {} vs viscous {}",
            out.average_velocity,
            v_expected
        );
    }

    #[test]
    fn calibration_validation() {
        assert!(
            DwDynamics::calibrated(MagnetMaterial::NIFE, DwGeometry::REFERENCE, Amps(0.0)).is_err()
        );
        let mut m = MagnetMaterial::NIFE;
        m.nonadiabaticity = 0.0;
        assert!(DwDynamics::calibrated(m, DwGeometry::REFERENCE, Amps(1e-6)).is_err());
        let mut bad = MagnetMaterial::NIFE;
        bad.saturation_magnetization = -1.0;
        assert!(DwDynamics::calibrated(bad, DwGeometry::REFERENCE, Amps(1e-6)).is_err());
    }

    #[test]
    fn velocity_curve_shape() {
        let d = reference();
        let curve = d.velocity_curve(&[Amps(0.5e-6), Amps(2e-6), Amps(4e-6), Amps(8e-6)]);
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[0].1, 0.0, "below threshold: pinned");
        assert!(curve[1].1 > 0.0);
        assert!(curve[2].1 > curve[1].1);
        assert!(curve[3].1 > curve[2].1);
        // Far above threshold the effective mobility heads toward β/α = 35
        // (the short 60 nm strip is transient-limited, so the average sits
        // well below the asymptote but far above unity).
        let u8 = d.drift_velocity(Amps(8e-6));
        let mobility = curve[3].1 / u8;
        assert!(mobility > 8.0 && mobility < 35.0, "mobility {mobility}");
    }

    #[test]
    fn pinning_barrier_is_tiny_by_design() {
        // The wall-depinning barrier must be far below the 20 kT retention
        // (anisotropy) barrier — that separation is what lets a 1 µA write
        // coexist with a thermally stable stored state.
        let d = reference();
        let pin = d.pinning_barrier_kt();
        assert!(pin < 1.0, "pinning barrier {pin} kT");
        assert!(d.material.barrier_kt >= 20.0 * pin);
    }

    #[test]
    fn drift_velocity_magnitude() {
        let d = reference();
        // 1 µA → J ≈ 1.67e10 A/m² → u ≈ 0.60 m/s.
        let u = d.drift_velocity(Amps(1e-6));
        assert!((u - 0.603).abs() < 0.02, "u = {u}");
    }
}
