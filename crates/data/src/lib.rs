//! Synthetic face dataset and the paper's feature-extraction pipeline.
//!
//! The paper evaluates on the ATT Cambridge face database \[26\]: 400 images
//! of 40 individuals (10 each), 128×96 8-bit pixels, normalized and
//! down-sized to 16×8 5-bit pixels; the 10 reduced images of each person
//! are pixel-averaged into one 128-element, 32-level template (paper
//! Fig. 2).
//!
//! The ATT database cannot ship with this repository, so [`faces`] provides
//! a deterministic synthetic substitute: each "individual" is a seeded
//! parametric face (head ellipse, eye/nose/mouth geometry, skin tone, plus a
//! low-frequency per-identity texture field) and each of their images adds
//! pose shift, illumination gradient and pixel noise. What the experiments
//! need from the data — larger between-class than within-class distance,
//! with class information that progressively disappears under down-sizing
//! and quantization — is preserved; absolute accuracy values will differ
//! from the paper's but the trends of Fig. 3 arise from the same
//! information-loss mechanism.
//!
//! * [`image`] — 8-bit grayscale images and the normalize / box-downsample /
//!   quantize operators of the paper's pipeline.
//! * [`faces`] — the parametric face renderer.
//! * [`dataset`] — the 40×10 dataset, template construction and test
//!   iteration.
//! * [`workload`] — random pattern workloads for benchmarks.
//!
//! # Example
//!
//! ```
//! use spinamm_data::{dataset::FaceDataset, image::Resolution};
//!
//! # fn main() -> Result<(), spinamm_data::DataError> {
//! let data = FaceDataset::generate(&Default::default())?;
//! assert_eq!(data.individuals(), 40);
//! let templates = data.templates(Resolution::new(8, 16)?, 5)?;
//! assert_eq!(templates.len(), 40);
//! assert_eq!(templates[0].len(), 128);
//! # Ok(())
//! # }
//! ```

pub mod dataset;
pub mod faces;
pub mod image;
pub mod workload;

pub use dataset::{DatasetConfig, FaceDataset};
pub use faces::FaceParams;
pub use image::{GrayImage, Resolution};
pub use workload::PatternWorkload;

use std::error::Error;
use std::fmt;

/// Errors produced while generating or transforming data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataError {
    /// A dimension or count is zero or otherwise out of domain.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// An index addressed outside the dataset.
    IndexOutOfBounds {
        /// Requested index.
        index: usize,
        /// Size of the indexed collection.
        len: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            DataError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!DataError::InvalidParameter { what: "x" }
            .to_string()
            .is_empty());
        assert!(DataError::IndexOutOfBounds { index: 41, len: 40 }
            .to_string()
            .contains("41"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
