//! Random pattern workloads for benchmarks and stress tests.
//!
//! The face pipeline is the paper's showcase, but the benchmark harness
//! also needs generic level-vector workloads: stored patterns plus inputs
//! at controlled distances, with a known ground-truth best match.

use crate::DataError;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A generated associative-matching workload: stored patterns plus queries
/// with known answers.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternWorkload {
    /// Stored patterns, `patterns[j][i]` is element `i` of pattern `j`.
    pub patterns: Vec<Vec<u32>>,
    /// Queries as `(true best-match index, query vector)`.
    pub queries: Vec<(usize, Vec<u32>)>,
    /// Bits per element.
    pub bits: u32,
}

/// Configuration for [`PatternWorkload::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of stored patterns (paper: 40).
    pub pattern_count: usize,
    /// Elements per pattern (paper: 128).
    pub vector_len: usize,
    /// Bits per element (paper: 5).
    pub bits: u32,
    /// Queries to generate.
    pub query_count: usize,
    /// Fraction of elements perturbed when deriving a query from its source
    /// pattern: 0 = exact copies, 1 = every element jittered.
    pub query_noise: f64,
    /// Magnitude of each perturbation in levels (uniform in
    /// `±1..=magnitude`); 1 reproduces the classic ±1-step jitter.
    pub noise_magnitude: u32,
    /// Fraction of elements every pattern shares with a common base
    /// pattern (0 = independent random patterns; towards 1 the patterns
    /// become a "family" that is progressively harder to tell apart —
    /// the regime real same-category data like faces lives in).
    pub similarity: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            pattern_count: 40,
            vector_len: 128,
            bits: 5,
            query_count: 100,
            query_noise: 0.25,
            noise_magnitude: 1,
            similarity: 0.0,
            seed: 0xbead,
        }
    }
}

impl PatternWorkload {
    /// Generates a workload deterministically. Stored patterns are
    /// L2-norm-equalized (see the body comment) so that dot-product
    /// matching is identity-driven rather than energy-driven.
    ///
    /// Queries are derived from uniformly chosen stored patterns with a
    /// controlled perturbation, so each query's intended answer is known.
    /// (With heavy noise the perturbed query's *actual* nearest pattern can
    /// differ; callers measuring accuracy should treat the label as the
    /// intended source, as the paper does for its noisy test images.)
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] for zero counts, bits outside
    /// `1..=8`, or noise outside `[0, 1]`.
    pub fn generate(config: &WorkloadConfig) -> Result<Self, DataError> {
        if config.pattern_count == 0 || config.vector_len == 0 {
            return Err(DataError::InvalidParameter {
                what: "workload counts must be non-zero",
            });
        }
        if !(1..=8).contains(&config.bits) {
            return Err(DataError::InvalidParameter {
                what: "workload bits must be 1..=8",
            });
        }
        if !(0.0..=1.0).contains(&config.query_noise) {
            return Err(DataError::InvalidParameter {
                what: "query noise must lie in [0, 1]",
            });
        }
        if config.noise_magnitude == 0 || config.noise_magnitude >= (1 << config.bits) {
            return Err(DataError::InvalidParameter {
                what: "noise magnitude must lie in 1..2^bits",
            });
        }
        if !(0.0..1.0).contains(&config.similarity) {
            return Err(DataError::InvalidParameter {
                what: "similarity must lie in [0, 1)",
            });
        }
        let levels = 1u32 << config.bits;
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let base: Vec<u32> = (0..config.vector_len)
            .map(|_| rng.gen_range(0..levels))
            .collect();
        let raw: Vec<Vec<u32>> = (0..config.pattern_count)
            .map(|_| {
                base.iter()
                    .map(|&b| {
                        if rng.gen::<f64>() < config.similarity {
                            b
                        } else {
                            rng.gen_range(0..levels)
                        }
                    })
                    .collect()
            })
            .collect();
        // Norm-equalize the stored patterns (as the face pipeline does for
        // its templates): dot-product matching ranks by correlation
        // *magnitude*, so unequal pattern energies would let the largest
        // pattern win every query regardless of identity.
        let norm = |p: &[u32]| -> f64 {
            p.iter()
                .map(|&v| f64::from(v) * f64::from(v))
                .sum::<f64>()
                .sqrt()
        };
        let target = raw
            .iter()
            .map(|p| norm(p))
            .fold(f64::INFINITY, f64::min)
            .max(1.0);
        let patterns: Vec<Vec<u32>> = raw
            .into_iter()
            .map(|p| {
                let scale = target / norm(&p).max(1.0);
                p.into_iter()
                    .map(|v| ((f64::from(v) * scale).round() as u32).min(levels - 1))
                    .collect()
            })
            .collect();
        let mut queries = Vec::with_capacity(config.query_count);
        let indices: Vec<usize> = (0..config.pattern_count).collect();
        for _ in 0..config.query_count {
            let &source = indices.choose(&mut rng).expect("non-empty");
            let mut q = patterns[source].clone();
            for elem in &mut q {
                if rng.gen::<f64>() < config.query_noise {
                    let step = i64::from(rng.gen_range(1..=config.noise_magnitude));
                    let delta: i64 = if rng.gen() { step } else { -step };
                    let perturbed = (i64::from(*elem) + delta).clamp(0, i64::from(levels) - 1);
                    *elem = perturbed as u32;
                }
            }
            queries.push((source, q));
        }
        Ok(Self {
            patterns,
            queries,
            bits: config.bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ideal_best_match;

    #[test]
    fn generation_shape() {
        let w = PatternWorkload::generate(&WorkloadConfig::default()).unwrap();
        assert_eq!(w.patterns.len(), 40);
        assert_eq!(w.patterns[0].len(), 128);
        assert_eq!(w.queries.len(), 100);
        assert!(w.patterns.iter().flatten().all(|&l| l < 32));
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let a = PatternWorkload::generate(&WorkloadConfig::default()).unwrap();
        let b = PatternWorkload::generate(&WorkloadConfig::default()).unwrap();
        assert_eq!(a, b);
        let c = PatternWorkload::generate(&WorkloadConfig {
            seed: 1,
            ..WorkloadConfig::default()
        })
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn zero_noise_queries_match_exactly() {
        let w = PatternWorkload::generate(&WorkloadConfig {
            query_noise: 0.0,
            ..WorkloadConfig::default()
        })
        .unwrap();
        for (src, q) in &w.queries {
            assert_eq!(q, &w.patterns[*src]);
            assert_eq!(ideal_best_match(q, &w.patterns).unwrap(), *src);
        }
    }

    #[test]
    fn moderate_noise_mostly_recoverable() {
        let w = PatternWorkload::generate(&WorkloadConfig::default()).unwrap();
        let correct = w
            .queries
            .iter()
            .filter(|(src, q)| ideal_best_match(q, &w.patterns).unwrap() == *src)
            .count();
        // ±1-level jitter on a quarter of 128 elements barely moves a
        // 5-bit dot product: recovery should be near-perfect.
        assert!(correct >= 95, "only {correct}/100 recovered");
    }

    #[test]
    fn validation() {
        let base = WorkloadConfig::default();
        assert!(PatternWorkload::generate(&WorkloadConfig {
            pattern_count: 0,
            ..base
        })
        .is_err());
        assert!(PatternWorkload::generate(&WorkloadConfig {
            vector_len: 0,
            ..base
        })
        .is_err());
        assert!(PatternWorkload::generate(&WorkloadConfig { bits: 0, ..base }).is_err());
        assert!(PatternWorkload::generate(&WorkloadConfig { bits: 9, ..base }).is_err());
        assert!(PatternWorkload::generate(&WorkloadConfig {
            query_noise: 1.5,
            ..base
        })
        .is_err());
        assert!(PatternWorkload::generate(&WorkloadConfig {
            noise_magnitude: 0,
            ..base
        })
        .is_err());
        assert!(PatternWorkload::generate(&WorkloadConfig {
            noise_magnitude: 32,
            ..base
        })
        .is_err());
    }

    #[test]
    fn heavier_noise_moves_queries_farther() {
        let dist = |mag: u32| -> f64 {
            let w = PatternWorkload::generate(&WorkloadConfig {
                query_noise: 1.0,
                noise_magnitude: mag,
                ..WorkloadConfig::default()
            })
            .unwrap();
            w.queries
                .iter()
                .map(|(src, q)| {
                    q.iter()
                        .zip(&w.patterns[*src])
                        .map(|(&a, &b)| (f64::from(a) - f64::from(b)).abs())
                        .sum::<f64>()
                })
                .sum::<f64>()
                / w.queries.len() as f64
        };
        assert!(dist(8) > 3.0 * dist(1));
    }

    #[test]
    fn similarity_brings_patterns_closer() {
        let spread = |sim: f64| -> f64 {
            let w = PatternWorkload::generate(&WorkloadConfig {
                similarity: sim,
                ..WorkloadConfig::default()
            })
            .unwrap();
            let a = &w.patterns[0];
            let b = &w.patterns[1];
            a.iter()
                .zip(b)
                .map(|(&x, &y)| (f64::from(x) - f64::from(y)).abs())
                .sum()
        };
        assert!(spread(0.9) < 0.4 * spread(0.0));
        assert!(PatternWorkload::generate(&WorkloadConfig {
            similarity: 1.0,
            ..WorkloadConfig::default()
        })
        .is_err());
    }
}
