//! 8-bit grayscale images and the paper's reduction operators.

use crate::DataError;

/// An image size. `width × height` in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Resolution {
    width: usize,
    height: usize,
}

impl Resolution {
    /// Creates a resolution.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self, DataError> {
        if width == 0 || height == 0 {
            return Err(DataError::InvalidParameter {
                what: "resolution dimensions must be non-zero",
            });
        }
        Ok(Self { width, height })
    }

    /// The paper's source format: 128×96.
    ///
    /// # Panics
    ///
    /// Never panics: constants are valid.
    #[must_use]
    pub fn source() -> Self {
        Self::new(128, 96).expect("constants valid")
    }

    /// The paper's reduced template format: 16×8 (width 16? the paper's
    /// "16x8" lists rows × columns of the 128-element vector; we take
    /// 16 wide × 8 tall so that 128×96 reduces by 8× and 12×).
    ///
    /// # Panics
    ///
    /// Never panics: constants are valid.
    #[must_use]
    pub fn template() -> Self {
        Self::new(16, 8).expect("constants valid")
    }

    /// Width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    #[must_use]
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }
}

/// A row-major 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    resolution: Resolution,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// Creates a black image.
    #[must_use]
    pub fn new(resolution: Resolution) -> Self {
        Self {
            pixels: vec![0; resolution.pixels()],
            resolution,
        }
    }

    /// Creates an image by evaluating `f(x, y)` (clamped to 0–255) at every
    /// pixel.
    pub fn from_fn(resolution: Resolution, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut pixels = Vec::with_capacity(resolution.pixels());
        for y in 0..resolution.height() {
            for x in 0..resolution.width() {
                pixels.push(f(x, y).round().clamp(0.0, 255.0) as u8);
            }
        }
        Self { resolution, pixels }
    }

    /// The image size.
    #[must_use]
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[must_use]
    pub fn pixel(&self, x: usize, y: usize) -> u8 {
        assert!(
            x < self.resolution.width() && y < self.resolution.height(),
            "pixel ({x}, {y}) out of bounds"
        );
        self.pixels[y * self.resolution.width() + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn set_pixel(&mut self, x: usize, y: usize, value: u8) {
        assert!(
            x < self.resolution.width() && y < self.resolution.height(),
            "pixel ({x}, {y}) out of bounds"
        );
        self.pixels[y * self.resolution.width() + x] = value;
    }

    /// The raw row-major pixel buffer.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.pixels
    }

    /// Mean pixel intensity.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.pixels.iter().map(|&p| f64::from(p)).sum::<f64>() / self.pixels.len() as f64
    }

    /// Contrast-normalizes (linearly stretches the occupied intensity range
    /// to 0–255) — the paper's "normalized" preprocessing step. A constant
    /// image is returned unchanged.
    #[must_use]
    pub fn normalized(&self) -> GrayImage {
        let lo = f64::from(*self.pixels.iter().min().expect("non-empty"));
        let hi = f64::from(*self.pixels.iter().max().expect("non-empty"));
        if hi <= lo {
            return self.clone();
        }
        let scale = 255.0 / (hi - lo);
        GrayImage {
            resolution: self.resolution,
            pixels: self
                .pixels
                .iter()
                .map(|&p| ((f64::from(p) - lo) * scale).round().clamp(0.0, 255.0) as u8)
                .collect(),
        }
    }

    /// Box-filter down-sample to `target` (each output pixel is the mean of
    /// its source box). Requires the target to be no larger than the source
    /// in either dimension.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if `target` exceeds the
    /// source size.
    pub fn downsampled(&self, target: Resolution) -> Result<GrayImage, DataError> {
        let (sw, sh) = (self.resolution.width(), self.resolution.height());
        let (tw, th) = (target.width(), target.height());
        if tw > sw || th > sh {
            return Err(DataError::InvalidParameter {
                what: "down-sample target must not exceed source size",
            });
        }
        let mut out = Vec::with_capacity(target.pixels());
        for ty in 0..th {
            let y0 = ty * sh / th;
            let y1 = ((ty + 1) * sh / th).max(y0 + 1);
            for tx in 0..tw {
                let x0 = tx * sw / tw;
                let x1 = ((tx + 1) * sw / tw).max(x0 + 1);
                let mut acc = 0.0;
                for y in y0..y1 {
                    for x in x0..x1 {
                        acc += f64::from(self.pixels[y * sw + x]);
                    }
                }
                let n = ((y1 - y0) * (x1 - x0)) as f64;
                out.push((acc / n).round().clamp(0.0, 255.0) as u8);
            }
        }
        Ok(GrayImage {
            resolution: target,
            pixels: out,
        })
    }

    /// Quantizes to `bits`-bit levels: returns the row-major level vector
    /// (each level in `0..2^bits`) — the format stored into the crossbar.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] unless `1 ≤ bits ≤ 8`.
    pub fn to_levels(&self, bits: u32) -> Result<Vec<u32>, DataError> {
        if !(1..=8).contains(&bits) {
            return Err(DataError::InvalidParameter {
                what: "pixel quantization requires 1..=8 bits",
            });
        }
        let shift = 8 - bits;
        Ok(self.pixels.iter().map(|&p| u32::from(p >> shift)).collect())
    }

    /// Pixel-wise average of several same-sized images — the template
    /// construction step ("pixel wise average of the 10 reduced images").
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if `images` is empty or the
    /// sizes disagree.
    pub fn average(images: &[GrayImage]) -> Result<GrayImage, DataError> {
        let first = images.first().ok_or(DataError::InvalidParameter {
            what: "average requires at least one image",
        })?;
        let res = first.resolution;
        if images.iter().any(|im| im.resolution != res) {
            return Err(DataError::InvalidParameter {
                what: "all images in an average must share one resolution",
            });
        }
        let mut acc = vec![0.0_f64; res.pixels()];
        for im in images {
            for (a, &p) in acc.iter_mut().zip(&im.pixels) {
                *a += f64::from(p);
            }
        }
        let n = images.len() as f64;
        Ok(GrayImage {
            resolution: res,
            pixels: acc
                .into_iter()
                .map(|a| (a / n).round().clamp(0.0, 255.0) as u8)
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(res: Resolution) -> GrayImage {
        GrayImage::from_fn(res, |x, _| x as f64 * 255.0 / (res.width() - 1) as f64)
    }

    #[test]
    fn resolution_properties() {
        let r = Resolution::new(16, 8).unwrap();
        assert_eq!(r.width(), 16);
        assert_eq!(r.height(), 8);
        assert_eq!(r.pixels(), 128);
        assert!(Resolution::new(0, 8).is_err());
        assert!(Resolution::new(8, 0).is_err());
        assert_eq!(Resolution::source().pixels(), 128 * 96);
        assert_eq!(Resolution::template().pixels(), 128);
    }

    #[test]
    fn pixel_access() {
        let mut im = GrayImage::new(Resolution::new(4, 3).unwrap());
        assert_eq!(im.pixel(0, 0), 0);
        im.set_pixel(2, 1, 200);
        assert_eq!(im.pixel(2, 1), 200);
        assert_eq!(im.as_bytes()[4 + 2], 200);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pixel_bounds_checked() {
        let im = GrayImage::new(Resolution::new(4, 3).unwrap());
        let _ = im.pixel(4, 0);
    }

    #[test]
    fn from_fn_clamps() {
        let im = GrayImage::from_fn(Resolution::new(3, 1).unwrap(), |x, _| {
            -100.0 + x as f64 * 300.0
        });
        assert_eq!(im.as_bytes(), &[0, 200, 255]);
    }

    #[test]
    fn normalize_stretches_range() {
        let im = GrayImage::from_fn(Resolution::new(4, 1).unwrap(), |x, _| {
            100.0 + 20.0 * x as f64
        });
        let n = im.normalized();
        assert_eq!(n.as_bytes()[0], 0);
        assert_eq!(n.as_bytes()[3], 255);
        // Constant image unchanged.
        let flat = GrayImage::from_fn(Resolution::new(4, 1).unwrap(), |_, _| 77.0);
        assert_eq!(flat.normalized(), flat);
    }

    #[test]
    fn downsample_preserves_mean() {
        let res = Resolution::new(128, 96).unwrap();
        let im = gradient(res);
        let small = im.downsampled(Resolution::template()).unwrap();
        assert_eq!(small.resolution(), Resolution::template());
        assert!((im.mean() - small.mean()).abs() < 2.0);
    }

    #[test]
    fn downsample_box_values() {
        // 4×2 → 2×1: each output is the mean of a 2×2 box.
        let mut im = GrayImage::new(Resolution::new(4, 2).unwrap());
        for (i, v) in [10u8, 20, 30, 40, 50, 60, 70, 80].iter().enumerate() {
            im.set_pixel(i % 4, i / 4, *v);
        }
        let small = im.downsampled(Resolution::new(2, 1).unwrap()).unwrap();
        assert_eq!(small.as_bytes(), &[35, 55]);
    }

    #[test]
    fn downsample_rejects_upscale() {
        let im = GrayImage::new(Resolution::new(4, 4).unwrap());
        assert!(im.downsampled(Resolution::new(8, 4).unwrap()).is_err());
    }

    #[test]
    fn downsample_non_divisible() {
        let im = gradient(Resolution::new(10, 7).unwrap());
        let small = im.downsampled(Resolution::new(3, 2).unwrap()).unwrap();
        assert_eq!(small.resolution().pixels(), 6);
    }

    #[test]
    fn quantization_levels() {
        let im = GrayImage::from_fn(Resolution::new(4, 1).unwrap(), |x, _| {
            [0.0, 64.0, 128.0, 255.0][x]
        });
        assert_eq!(im.to_levels(5).unwrap(), vec![0, 8, 16, 31]);
        assert_eq!(im.to_levels(1).unwrap(), vec![0, 0, 1, 1]);
        assert!(im.to_levels(0).is_err());
        assert!(im.to_levels(9).is_err());
        // 8-bit quantization is the identity.
        assert_eq!(im.to_levels(8).unwrap(), vec![0u32, 64, 128, 255]);
    }

    #[test]
    fn averaging_images() {
        let a = GrayImage::from_fn(Resolution::new(2, 1).unwrap(), |x, _| 100.0 * x as f64);
        let b = GrayImage::from_fn(Resolution::new(2, 1).unwrap(), |x, _| 200.0 * x as f64);
        let avg = GrayImage::average(&[a, b]).unwrap();
        assert_eq!(avg.as_bytes(), &[0, 150]);
        assert!(GrayImage::average(&[]).is_err());
        let c = GrayImage::new(Resolution::new(3, 1).unwrap());
        let d = GrayImage::new(Resolution::new(2, 1).unwrap());
        assert!(GrayImage::average(&[c, d]).is_err());
    }
}
