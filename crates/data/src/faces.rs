//! Parametric synthetic face renderer.
//!
//! Each identity is a bag of seeded geometric and photometric parameters;
//! each rendered sample perturbs the pose, illumination and pixel noise.
//! Identities additionally carry a smooth per-identity texture field (a
//! bilinearly interpolated coarse random grid) so that class information
//! survives aggressive down-sampling the way real facial structure does —
//! two faces differ everywhere a little, not only at sharp edges.

use crate::image::{GrayImage, Resolution};
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Seeded parameters of one synthetic identity.
#[derive(Debug, Clone, PartialEq)]
pub struct FaceParams {
    /// Face-ellipse half-width as a fraction of image width.
    pub face_rx: f64,
    /// Face-ellipse half-height as a fraction of image height.
    pub face_ry: f64,
    /// Skin intensity (0–255).
    pub skin: f64,
    /// Background intensity (0–255).
    pub background: f64,
    /// Horizontal eye offset from the face centre, fraction of width.
    pub eye_dx: f64,
    /// Vertical eye position, fraction of height above centre.
    pub eye_dy: f64,
    /// Eye radius, fraction of width.
    pub eye_r: f64,
    /// Eye darkness (subtracted from skin).
    pub eye_depth: f64,
    /// Mouth half-width, fraction of width.
    pub mouth_w: f64,
    /// Mouth vertical position, fraction of height below centre.
    pub mouth_dy: f64,
    /// Mouth darkness.
    pub mouth_depth: f64,
    /// Nose length, fraction of height.
    pub nose_len: f64,
    /// Hair-line height, fraction of height (0 = none).
    pub hair: f64,
    /// Hair darkness.
    pub hair_depth: f64,
    /// Coarse per-identity texture grid (amplitude in intensity units),
    /// `TEXTURE_W × TEXTURE_H` values.
    pub texture: Vec<f64>,
}

/// Texture grid width.
pub const TEXTURE_W: usize = 16;
/// Texture grid height.
pub const TEXTURE_H: usize = 12;

impl FaceParams {
    /// Samples a fresh identity from `rng`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let u = |rng: &mut R, lo: f64, hi: f64| rng.gen_range(lo..hi);
        let texture_amp = 150.0;
        Self {
            face_rx: u(rng, 0.28, 0.42),
            face_ry: u(rng, 0.32, 0.46),
            skin: u(rng, 115.0, 135.0),
            background: u(rng, 55.0, 75.0),
            eye_dx: u(rng, 0.10, 0.17),
            eye_dy: u(rng, 0.08, 0.16),
            eye_r: u(rng, 0.025, 0.055),
            eye_depth: u(rng, 50.0, 80.0),
            mouth_w: u(rng, 0.08, 0.18),
            mouth_dy: u(rng, 0.14, 0.24),
            mouth_depth: u(rng, 35.0, 65.0),
            nose_len: u(rng, 0.08, 0.16),
            hair: u(rng, 0.0, 0.22),
            hair_depth: u(rng, 35.0, 65.0),
            texture: (0..TEXTURE_W * TEXTURE_H)
                .map(|_| u(rng, -texture_amp, texture_amp))
                .collect(),
        }
    }

    /// Bilinear sample of the identity texture at normalized coordinates.
    fn texture_at(&self, fx: f64, fy: f64) -> f64 {
        let gx = fx.clamp(0.0, 1.0) * (TEXTURE_W - 1) as f64;
        let gy = fy.clamp(0.0, 1.0) * (TEXTURE_H - 1) as f64;
        let (x0, y0) = (gx.floor() as usize, gy.floor() as usize);
        let (x1, y1) = ((x0 + 1).min(TEXTURE_W - 1), (y0 + 1).min(TEXTURE_H - 1));
        let (tx, ty) = (gx - x0 as f64, gy - y0 as f64);
        let at = |x: usize, y: usize| self.texture[y * TEXTURE_W + x];
        let top = at(x0, y0) * (1.0 - tx) + at(x1, y0) * tx;
        let bot = at(x0, y1) * (1.0 - tx) + at(x1, y1) * tx;
        top * (1.0 - ty) + bot * ty
    }

    /// Renders one sample image of this identity with per-sample pose,
    /// illumination and noise perturbations drawn from `rng`.
    pub fn render<R: Rng + ?Sized>(&self, resolution: Resolution, rng: &mut R) -> GrayImage {
        let w = resolution.width() as f64;
        let h = resolution.height() as f64;
        // Per-sample variation: pose shift, scale jitter, illumination
        // gradient, pixel noise.
        let shift_x = rng.gen_range(-0.008..0.008) * w;
        let shift_y = rng.gen_range(-0.008..0.008) * h;
        let scale = rng.gen_range(0.98..1.02);
        let illum_slope_x = rng.gen_range(-0.05..0.05);
        let illum_slope_y = rng.gen_range(-0.05..0.05);
        let noise = Normal::new(0.0, 4.0).expect("fixed sigma");

        let cx = w / 2.0 + shift_x;
        let cy = h / 2.0 + shift_y;
        let rx = self.face_rx * w * scale;
        let ry = self.face_ry * h * scale;

        let pixel = |x: f64, y: f64, rng: &mut R| -> f64 {
            let dx = x - cx;
            let dy = y - cy;
            let in_face = (dx / rx).powi(2) + (dy / ry).powi(2) <= 1.0;
            let mut v = if in_face { self.skin } else { self.background };
            if in_face {
                // Identity texture, anchored to the face frame.
                v += self.texture_at((dx / rx + 1.0) / 2.0, (dy / ry + 1.0) / 2.0);
                // Eyes.
                let er = self.eye_r * w;
                for side in [-1.0, 1.0] {
                    let ex = cx + side * self.eye_dx * w;
                    let ey = cy - self.eye_dy * h;
                    if ((x - ex).powi(2) + (y - ey).powi(2)).sqrt() <= er {
                        v -= self.eye_depth;
                    }
                }
                // Nose: a vertical line from centre downward.
                if dx.abs() <= 0.012 * w && dy >= 0.0 && dy <= self.nose_len * h {
                    v -= 30.0;
                }
                // Mouth.
                let my = cy + self.mouth_dy * h;
                if (y - my).abs() <= 0.015 * h && dx.abs() <= self.mouth_w * w {
                    v -= self.mouth_depth;
                }
                // Hair: darken the top band of the face.
                if self.hair > 0.0 && dy < -(1.0 - self.hair) * ry {
                    v -= self.hair_depth;
                }
            }
            // Illumination gradient + sensor noise.
            v *= 1.0 + illum_slope_x * (x / w - 0.5) + illum_slope_y * (y / h - 0.5);
            v + noise.sample(rng)
        };

        GrayImage::from_fn(resolution, |x, y| pixel(x as f64, y as f64, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn res() -> Resolution {
        Resolution::source()
    }

    #[test]
    fn identity_sampling_is_deterministic() {
        let a = FaceParams::sample(&mut ChaCha8Rng::seed_from_u64(1));
        let b = FaceParams::sample(&mut ChaCha8Rng::seed_from_u64(1));
        let c = FaceParams::sample(&mut ChaCha8Rng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn render_is_deterministic_per_seed() {
        let id = FaceParams::sample(&mut ChaCha8Rng::seed_from_u64(3));
        let im1 = id.render(res(), &mut ChaCha8Rng::seed_from_u64(10));
        let im2 = id.render(res(), &mut ChaCha8Rng::seed_from_u64(10));
        assert_eq!(im1, im2);
    }

    #[test]
    fn samples_of_one_identity_differ() {
        let id = FaceParams::sample(&mut ChaCha8Rng::seed_from_u64(3));
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let im1 = id.render(res(), &mut rng);
        let im2 = id.render(res(), &mut rng);
        assert_ne!(im1, im2);
    }

    fn l2(a: &GrayImage, b: &GrayImage) -> f64 {
        a.as_bytes()
            .iter()
            .zip(b.as_bytes())
            .map(|(&x, &y)| (f64::from(x) - f64::from(y)).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn interclass_exceeds_intraclass_distance() {
        let mut seed_rng = ChaCha8Rng::seed_from_u64(42);
        let ids: Vec<FaceParams> = (0..6).map(|_| FaceParams::sample(&mut seed_rng)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        // Use the reduced (template) resolution: the property must hold
        // where the classifier operates.
        let target = Resolution::template();
        let render_small = |id: &FaceParams, rng: &mut ChaCha8Rng| {
            id.render(res(), rng)
                .normalized()
                .downsampled(target)
                .unwrap()
        };
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        let samples: Vec<Vec<GrayImage>> = ids
            .iter()
            .map(|id| (0..4).map(|_| render_small(id, &mut rng)).collect())
            .collect();
        for (i, group) in samples.iter().enumerate() {
            for a in 0..group.len() {
                for b in (a + 1)..group.len() {
                    intra.push(l2(&group[a], &group[b]));
                }
                for other in samples.iter().skip(i + 1) {
                    inter.push(l2(&group[a], &other[0]));
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&inter) > 1.5 * mean(&intra),
            "inter {} vs intra {}",
            mean(&inter),
            mean(&intra)
        );
    }

    #[test]
    fn face_occupies_centre() {
        let id = FaceParams::sample(&mut ChaCha8Rng::seed_from_u64(7));
        let im = id.render(res(), &mut ChaCha8Rng::seed_from_u64(8));
        // Centre pixel should be much brighter than the corner (skin vs
        // background) for every identity in the parameter ranges.
        let centre = f64::from(im.pixel(64, 48));
        let corner = f64::from(im.pixel(2, 2));
        assert!(centre > corner + 30.0, "centre {centre} corner {corner}");
    }

    #[test]
    fn texture_bilinear_interpolation_bounds() {
        let id = FaceParams::sample(&mut ChaCha8Rng::seed_from_u64(9));
        let max = id.texture.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        for fy in [0.0, 0.3, 0.7, 1.0] {
            for fx in [0.0, 0.5, 1.0] {
                assert!(id.texture_at(fx, fy).abs() <= max + 1e-12);
            }
        }
        // Out-of-range coordinates clamp rather than panic.
        let _ = id.texture_at(-0.5, 2.0);
    }
}
