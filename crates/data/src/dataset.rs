//! The 40-individual × 10-image dataset and template construction.

use crate::faces::FaceParams;
use crate::image::{GrayImage, Resolution};
use crate::DataError;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Number of identities (paper: 40).
    pub individuals: usize,
    /// Images per identity (paper: 10).
    pub samples_per_individual: usize,
    /// Source image size (paper: 128×96).
    pub resolution: Resolution,
    /// Master seed; everything else derives deterministically.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            individuals: 40,
            samples_per_individual: 10,
            resolution: Resolution::source(),
            seed: 0x5eed_face,
        }
    }
}

/// A generated face dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct FaceDataset {
    config: DatasetConfig,
    identities: Vec<FaceParams>,
    /// `images[person][sample]`, full resolution, un-normalized.
    images: Vec<Vec<GrayImage>>,
}

impl FaceDataset {
    /// Generates the dataset deterministically from `config.seed`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if either count is zero.
    pub fn generate(config: &DatasetConfig) -> Result<Self, DataError> {
        if config.individuals == 0 || config.samples_per_individual == 0 {
            return Err(DataError::InvalidParameter {
                what: "dataset counts must be non-zero",
            });
        }
        let mut id_rng = ChaCha8Rng::seed_from_u64(config.seed);
        let identities: Vec<FaceParams> = (0..config.individuals)
            .map(|_| FaceParams::sample(&mut id_rng))
            .collect();
        let images = identities
            .iter()
            .enumerate()
            .map(|(person, id)| {
                let mut rng =
                    ChaCha8Rng::seed_from_u64(config.seed ^ (person as u64).wrapping_mul(0x9e37));
                (0..config.samples_per_individual)
                    .map(|_| id.render(config.resolution, &mut rng))
                    .collect()
            })
            .collect();
        Ok(Self {
            config: *config,
            identities,
            images,
        })
    }

    /// Number of identities.
    #[must_use]
    pub fn individuals(&self) -> usize {
        self.config.individuals
    }

    /// Images per identity.
    #[must_use]
    pub fn samples_per_individual(&self) -> usize {
        self.config.samples_per_individual
    }

    /// The generating configuration.
    #[must_use]
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// The raw image of `person`'s sample `sample`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfBounds`] for bad indices.
    pub fn image(&self, person: usize, sample: usize) -> Result<&GrayImage, DataError> {
        let group = self.images.get(person).ok_or(DataError::IndexOutOfBounds {
            index: person,
            len: self.images.len(),
        })?;
        group.get(sample).ok_or(DataError::IndexOutOfBounds {
            index: sample,
            len: group.len(),
        })
    }

    /// Applies the paper's reduction pipeline to one image: normalize →
    /// box-downsample to `target` → quantize to `bits` levels.
    ///
    /// # Errors
    ///
    /// Propagates reduction errors (bad target or bit width).
    pub fn reduce(image: &GrayImage, target: Resolution, bits: u32) -> Result<Vec<u32>, DataError> {
        image.normalized().downsampled(target)?.to_levels(bits)
    }

    /// Builds the stored template of one person: the pixel-average of all
    /// their reduced images, quantized to `bits` levels (paper Fig. 2).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfBounds`] for a bad person index, or a
    /// reduction error.
    pub fn template(
        &self,
        person: usize,
        target: Resolution,
        bits: u32,
    ) -> Result<Vec<u32>, DataError> {
        let group = self.images.get(person).ok_or(DataError::IndexOutOfBounds {
            index: person,
            len: self.images.len(),
        })?;
        let reduced: Result<Vec<GrayImage>, DataError> = group
            .iter()
            .map(|im| im.normalized().downsampled(target))
            .collect();
        GrayImage::average(&reduced?)?.to_levels(bits)
    }

    /// All templates (one per person), **energy-equalized**: each averaged
    /// template image is rescaled so every stored level vector has the same
    /// L2 norm before quantization.
    ///
    /// Equalization is essential for dot-product ("correlation magnitude")
    /// matching: face images share a large common-mode component, and
    /// without equal norms the winning column is decided by each template's
    /// projection onto that common mode instead of by identity. This is the
    /// operational content of the paper's "normalized" preprocessing — an
    /// associative memory ranking raw dot products requires equal-energy
    /// stored patterns.
    ///
    /// # Errors
    ///
    /// Propagates reduction errors.
    pub fn templates(&self, target: Resolution, bits: u32) -> Result<Vec<Vec<u32>>, DataError> {
        // Build the averaged reduced image per person, pre-quantization.
        let averaged: Result<Vec<GrayImage>, DataError> = (0..self.individuals())
            .map(|person| {
                let group = &self.images[person];
                let reduced: Result<Vec<GrayImage>, DataError> = group
                    .iter()
                    .map(|im| im.normalized().downsampled(target))
                    .collect();
                GrayImage::average(&reduced?)
            })
            .collect();
        let averaged = averaged?;
        let norm = |im: &GrayImage| -> f64 {
            im.as_bytes()
                .iter()
                .map(|&p| f64::from(p) * f64::from(p))
                .sum::<f64>()
                .sqrt()
        };
        let target_norm = averaged.iter().map(norm).fold(f64::INFINITY, f64::min);
        averaged
            .into_iter()
            .map(|im| {
                let scale = if norm(&im) > 0.0 {
                    target_norm / norm(&im)
                } else {
                    1.0
                };
                let res = im.resolution();
                GrayImage::from_fn(res, |x, y| f64::from(im.pixel(x, y)) * scale).to_levels(bits)
            })
            .collect()
    }

    /// Iterates over every test image as `(person, reduced level vector)` —
    /// the paper tests on the same 400 images the templates were built from
    /// ("training accuracy", Fig. 3a).
    ///
    /// # Errors
    ///
    /// Propagates reduction errors.
    pub fn test_vectors(
        &self,
        target: Resolution,
        bits: u32,
    ) -> Result<Vec<(usize, Vec<u32>)>, DataError> {
        let mut out = Vec::with_capacity(self.individuals() * self.samples_per_individual());
        for (person, group) in self.images.iter().enumerate() {
            for im in group {
                out.push((person, Self::reduce(im, target, bits)?));
            }
        }
        Ok(out)
    }
}

/// Nearest-template classification by integer dot product — the *ideal*
/// (infinite-precision, noise-free) reference the paper compares hardware
/// accuracy against.
///
/// Returns the index of the template with the highest correlation.
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] if `templates` is empty or
/// lengths disagree.
pub fn ideal_best_match(input: &[u32], templates: &[Vec<u32>]) -> Result<usize, DataError> {
    if templates.is_empty() {
        return Err(DataError::InvalidParameter {
            what: "need at least one template",
        });
    }
    if templates.iter().any(|t| t.len() != input.len()) {
        return Err(DataError::InvalidParameter {
            what: "template length must match input length",
        });
    }
    let mut best = 0usize;
    let mut best_score = u64::MIN;
    for (j, t) in templates.iter().enumerate() {
        let score: u64 = input
            .iter()
            .zip(t)
            .map(|(&a, &b)| u64::from(a) * u64::from(b))
            .sum();
        if score > best_score {
            best_score = score;
            best = j;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DatasetConfig {
        DatasetConfig {
            individuals: 8,
            samples_per_individual: 4,
            resolution: Resolution::source(),
            seed: 7,
        }
    }

    #[test]
    fn generation_shape_and_determinism() {
        let a = FaceDataset::generate(&small_config()).unwrap();
        let b = FaceDataset::generate(&small_config()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.individuals(), 8);
        assert_eq!(a.samples_per_individual(), 4);
        assert!(a.image(0, 0).is_ok());
        assert!(a.image(8, 0).is_err());
        assert!(a.image(0, 4).is_err());
    }

    #[test]
    fn different_seed_different_data() {
        let a = FaceDataset::generate(&small_config()).unwrap();
        let mut cfg = small_config();
        cfg.seed = 8;
        let b = FaceDataset::generate(&cfg).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn template_shape() {
        let data = FaceDataset::generate(&small_config()).unwrap();
        let t = data.template(0, Resolution::template(), 5).unwrap();
        assert_eq!(t.len(), 128);
        assert!(t.iter().all(|&l| l < 32));
        let all = data.templates(Resolution::template(), 5).unwrap();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn test_vectors_cover_dataset() {
        let data = FaceDataset::generate(&small_config()).unwrap();
        let v = data.test_vectors(Resolution::template(), 5).unwrap();
        assert_eq!(v.len(), 32);
        assert_eq!(v[0].1.len(), 128);
        // Persons appear in order, 4 samples each.
        assert_eq!(v[0].0, 0);
        assert_eq!(v[4].0, 1);
    }

    #[test]
    fn ideal_classification_is_accurate_at_paper_operating_point() {
        // At 16×8, 5-bit — the paper's chosen point — ideal matching should
        // classify the large majority of test images correctly.
        let data = FaceDataset::generate(&DatasetConfig {
            individuals: 12,
            samples_per_individual: 6,
            ..DatasetConfig::default()
        })
        .unwrap();
        let templates = data.templates(Resolution::template(), 5).unwrap();
        let tests = data.test_vectors(Resolution::template(), 5).unwrap();
        let correct = tests
            .iter()
            .filter(|(person, v)| ideal_best_match(v, &templates).unwrap() == *person)
            .count();
        let accuracy = correct as f64 / tests.len() as f64;
        assert!(accuracy > 0.9, "ideal accuracy {accuracy}");
    }

    #[test]
    fn accuracy_collapses_under_extreme_downsizing() {
        // Fig. 3a's mechanism: below some size the classes merge.
        let data = FaceDataset::generate(&DatasetConfig {
            individuals: 12,
            samples_per_individual: 6,
            ..DatasetConfig::default()
        })
        .unwrap();
        let tiny = Resolution::new(2, 1).unwrap();
        let templates = data.templates(tiny, 5).unwrap();
        let tests = data.test_vectors(tiny, 5).unwrap();
        let correct = tests
            .iter()
            .filter(|(person, v)| ideal_best_match(v, &templates).unwrap() == *person)
            .count();
        let accuracy = correct as f64 / tests.len() as f64;
        assert!(
            accuracy < 0.7,
            "2-pixel accuracy should collapse, got {accuracy}"
        );
    }

    #[test]
    fn ideal_best_match_validation() {
        assert!(ideal_best_match(&[1, 2], &[]).is_err());
        assert!(ideal_best_match(&[1, 2], &[vec![1]]).is_err());
        assert_eq!(
            ideal_best_match(&[3, 1], &[vec![0, 9], vec![9, 0]]).unwrap(),
            1
        );
    }

    #[test]
    fn config_validation() {
        assert!(FaceDataset::generate(&DatasetConfig {
            individuals: 0,
            ..small_config()
        })
        .is_err());
        assert!(FaceDataset::generate(&DatasetConfig {
            samples_per_individual: 0,
            ..small_config()
        })
        .is_err());
    }
}
