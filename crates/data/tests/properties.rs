//! Property-based tests for the data pipeline: reduction operators and
//! workload generation must hold their invariants for arbitrary inputs.

use proptest::prelude::*;
use spinamm_data::dataset::ideal_best_match;
use spinamm_data::image::{GrayImage, Resolution};
use spinamm_data::workload::{PatternWorkload, WorkloadConfig};

fn arbitrary_image() -> impl Strategy<Value = GrayImage> {
    ((2usize..40), (2usize..30)).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0u8..=255, w * h).prop_map(move |pixels| {
            let res = Resolution::new(w, h).unwrap();
            let mut im = GrayImage::new(res);
            for (k, &p) in pixels.iter().enumerate() {
                im.set_pixel(k % w, k / w, p);
            }
            im
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Box down-sampling preserves the global mean within rounding when the
    /// target divides the source evenly (equal boxes). Unequal boxes weight
    /// the mean — which is why the pipeline's sizes are chosen divisible
    /// (128×96 → 16×8 uses 8×12 boxes).
    #[test]
    fn downsample_preserves_mean(
        tw in 1usize..6,
        th in 1usize..6,
        mx in 1usize..6,
        my in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let (w, h) = (tw * mx, th * my);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let im = GrayImage::from_fn(Resolution::new(w, h).unwrap(), |_, _| {
            f64::from(rng.gen_range(0u8..=255))
        });
        let small = im.downsampled(Resolution::new(tw, th).unwrap()).unwrap();
        prop_assert!(
            (im.mean() - small.mean()).abs() <= 0.5,
            "mean drift {} → {}",
            im.mean(),
            small.mean()
        );
    }

    /// Normalization is idempotent and bounded.
    #[test]
    fn normalize_idempotent(im in arbitrary_image()) {
        let once = im.normalized();
        let twice = once.normalized();
        prop_assert_eq!(&once, &twice);
        let lo = *once.as_bytes().iter().min().unwrap();
        let hi = *once.as_bytes().iter().max().unwrap();
        // A non-constant image stretches to the full range.
        if im.as_bytes().iter().min() != im.as_bytes().iter().max() {
            prop_assert_eq!(lo, 0);
            prop_assert_eq!(hi, 255);
        }
    }

    /// Quantization is monotone: brighter pixels never get smaller levels,
    /// and levels stay in range.
    #[test]
    fn quantization_monotone(im in arbitrary_image(), bits in 1u32..=8) {
        let levels = im.to_levels(bits).unwrap();
        let cap = 1u32 << bits;
        for (p, l) in im.as_bytes().iter().zip(&levels) {
            prop_assert!(*l < cap);
            // Reconstruct: level = pixel >> (8-bits).
            prop_assert_eq!(*l, u32::from(p >> (8 - bits)));
        }
    }

    /// Averaging commutes with constant shifts: avg(a+c) = avg(a)+c (when
    /// no clipping occurs).
    #[test]
    fn average_is_linear_in_constants(
        base in arbitrary_image(),
        shift in 1u8..40,
    ) {
        // Clamp the base away from the rails so the shift cannot clip.
        let res = base.resolution();
        let safe = GrayImage::from_fn(res, |x, y| {
            f64::from(base.pixel(x, y)).clamp(0.0, 200.0)
        });
        let shifted = GrayImage::from_fn(res, |x, y| {
            f64::from(safe.pixel(x, y)) + f64::from(shift)
        });
        let avg = GrayImage::average(&[safe.clone(), shifted.clone()]).unwrap();
        for y in 0..res.height() {
            for x in 0..res.width() {
                let expect = (f64::from(safe.pixel(x, y)) + f64::from(shift) / 2.0).round();
                prop_assert!((f64::from(avg.pixel(x, y)) - expect).abs() <= 1.0);
            }
        }
    }

    /// The workload's ground truth is sound: with zero noise every query is
    /// its source pattern, and `ideal_best_match` finds it. (Needs enough
    /// dimensions: random patterns in very low dimension can nearly
    /// collide, where norm-equalization rounding legitimately flips the
    /// argmax — the paper's vectors are 128-dimensional.)
    #[test]
    fn workload_ground_truth(seed in 0u64..200, patterns in 2usize..12, len in 16usize..64) {
        let w = PatternWorkload::generate(&WorkloadConfig {
            pattern_count: patterns,
            vector_len: len,
            bits: 5,
            query_count: 16,
            query_noise: 0.0,
            seed,
            noise_magnitude: 1,
            similarity: 0.0,
        })
        .unwrap();
        for (src, q) in &w.queries {
            prop_assert_eq!(ideal_best_match(q, &w.patterns).unwrap(), *src);
        }
    }

    /// Best-match is invariant under uniform scaling of the query (dot
    /// products scale together).
    #[test]
    fn best_match_scale_invariant(seed in 0u64..100) {
        let w = PatternWorkload::generate(&WorkloadConfig {
            pattern_count: 6,
            vector_len: 24,
            bits: 5,
            query_count: 4,
            query_noise: 0.1,
            seed,
            noise_magnitude: 1,
            similarity: 0.0,
        })
        .unwrap();
        for (_, q) in &w.queries {
            let m1 = ideal_best_match(q, &w.patterns).unwrap();
            let doubled: Vec<u32> = q.iter().map(|&x| x * 2).collect();
            let m2 = ideal_best_match(&doubled, &w.patterns).unwrap();
            prop_assert_eq!(m1, m2);
        }
    }
}
