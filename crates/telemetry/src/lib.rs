//! Dependency-free instrumentation for the spinamm pipeline.
//!
//! Every hot path in the workspace accepts a [`Recorder`] by generic
//! parameter (static dispatch), so the default [`NoopRecorder`] compiles to
//! nothing: `is_enabled()` is a constant `false`, every sink method is an
//! empty body, and span guards skip the clock read entirely. Passing a
//! [`MemoryRecorder`] instead aggregates counters, gauges, histograms,
//! span timings and structured events into a queryable
//! [`TelemetrySnapshot`] with JSON and table rendering.
//!
//! Telemetry is strictly observation-only: recorders receive copies of
//! values the pipeline already computed and can never feed anything back,
//! so enabling one cannot change a numeric result.
//!
//! # Example
//!
//! ```
//! use spinamm_telemetry::{MemoryRecorder, Recorder};
//!
//! let recorder = MemoryRecorder::default();
//! {
//!     let _span = recorder.span("recall.total");
//!     recorder.counter("adc.sar_cycles", 5);
//!     recorder.observe("recall.dom", 27.0);
//! }
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.counter("adc.sar_cycles"), 5);
//! assert_eq!(snapshot.span_stats("recall.total").unwrap().count, 1);
//! ```

pub mod json;
mod memory;
mod recorder;
mod snapshot;

pub use memory::MemoryRecorder;
pub use recorder::{NoopRecorder, Recorder, Span};
pub use snapshot::{HistStats, TelemetryEvent, TelemetrySnapshot};
