//! [`MemoryRecorder`]: an in-process aggregating recorder.

use crate::recorder::Recorder;
use crate::snapshot::{HistStats, TelemetryEvent, TelemetrySnapshot};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Retained samples per histogram/span; `count`/`sum`/`min`/`max` stay
/// exact beyond the cap, percentiles come from the retained prefix.
const SAMPLE_CAP: usize = 65_536;

/// Retained structured events; later events are counted but dropped.
const EVENT_CAP: usize = 4_096;

#[derive(Debug, Default)]
struct Series {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
}

impl Series {
    fn push(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(value);
        }
    }

    fn sorted(&self) -> Vec<f64> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        sorted
    }

    fn stats(&self) -> HistStats {
        let sorted = self.sorted();
        HistStats {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: percentile(&sorted, 0.50),
            p90: percentile(&sorted, 0.90),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            p999: percentile(&sorted, 0.999),
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Series>,
    spans: BTreeMap<String, Series>,
    events: Vec<TelemetryEvent>,
    dropped_events: u64,
}

/// A recorder that aggregates everything in memory behind a mutex, for
/// later inspection via [`MemoryRecorder::snapshot`].
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    inner: Mutex<Inner>,
}

impl MemoryRecorder {
    /// Freezes the current contents into an immutable snapshot.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the recorder panicked mid-update
    /// (poisoned mutex).
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock().expect("telemetry mutex poisoned");
        TelemetrySnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.stats()))
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(k, v)| (k.clone(), v.stats()))
                .collect(),
            events: inner.events.clone(),
            dropped_events: inner.dropped_events,
            histogram_samples: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.sorted()))
                .collect(),
            span_samples: inner
                .spans
                .iter()
                .map(|(k, v)| (k.clone(), v.sorted()))
                .collect(),
        }
    }

    fn with<T>(&self, f: impl FnOnce(&mut Inner) -> T) -> T {
        f(&mut self.inner.lock().expect("telemetry mutex poisoned"))
    }
}

impl Recorder for MemoryRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &str, delta: u64) {
        self.with(|inner| {
            *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
        });
    }

    fn gauge(&self, name: &str, value: f64) {
        self.with(|inner| {
            inner.gauges.insert(name.to_owned(), value);
        });
    }

    fn observe(&self, name: &str, value: f64) {
        self.with(|inner| {
            inner
                .histograms
                .entry(name.to_owned())
                .or_default()
                .push(value);
        });
    }

    fn record_span(&self, name: &str, seconds: f64) {
        self.with(|inner| {
            inner
                .spans
                .entry(name.to_owned())
                .or_default()
                .push(seconds);
        });
    }

    fn event(&self, name: &str, fields: &[(&str, f64)]) {
        self.with(|inner| {
            if inner.events.len() < EVENT_CAP {
                inner.events.push(TelemetryEvent {
                    name: name.to_owned(),
                    fields: fields.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
                });
            } else {
                inner.dropped_events += 1;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_monotonically() {
        let r = MemoryRecorder::default();
        r.counter("x", 1);
        r.counter("x", 4);
        r.counter("y", 2);
        let s = r.snapshot();
        assert_eq!(s.counter("x"), 5);
        assert_eq!(s.counter("y"), 2);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn gauges_keep_last_value() {
        let r = MemoryRecorder::default();
        r.gauge("g", 1.0);
        r.gauge("g", -3.5);
        assert_eq!(r.snapshot().gauges.get("g"), Some(&-3.5));
    }

    #[test]
    fn histogram_stats_are_exact_for_small_series() {
        let r = MemoryRecorder::default();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            r.observe("h", v);
        }
        let s = r.snapshot();
        let h = s.histogram_stats("h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 15.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 5.0);
        assert_eq!(h.p50, 3.0);
        assert_eq!(h.p95, 5.0);
    }

    #[test]
    fn percentile_nearest_rank_basics() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn events_capped_not_lost_silently() {
        let r = MemoryRecorder::default();
        for i in 0..(super::EVENT_CAP + 10) {
            r.event("e", &[("i", i as f64)]);
        }
        let s = r.snapshot();
        assert_eq!(s.events.len(), super::EVENT_CAP);
        assert_eq!(s.dropped_events, 10);
    }

    #[test]
    fn shared_across_threads() {
        let r = std::sync::Arc::new(MemoryRecorder::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        r.counter("t", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.snapshot().counter("t"), 400);
    }
}
