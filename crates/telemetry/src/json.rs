//! Minimal hand-rolled JSON: a composable [`JsonValue`], an escaping
//! renderer, and a syntax [`validate`]r used by tests and the bench layer
//! to guarantee emitted artifacts parse.
//!
//! Non-finite floats render as `null` (JSON has no NaN/inf). Numbers use
//! `{:e}` notation outside a comfortable fixed-point window, which JSON
//! accepts.

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Finite check happens at render time; NaN/inf become `null`.
    Num(f64),
    Int(i64),
    Uint(u64),
    Str(String),
    Array(Vec<JsonValue>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor from `&str` keys.
    #[must_use]
    pub fn object<const N: usize>(pairs: [(&str, JsonValue); N]) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Serializes to a compact JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Looks up `key` in an [`JsonValue::Object`] (first match wins).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: any of `Num`/`Int`/`Uint` as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Uint(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Non-negative integer view of `Uint` (or an exact integral `Int`/`Num`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Uint(v) => Some(*v),
            JsonValue::Int(v) => u64::try_from(*v).ok(),
            JsonValue::Num(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// String view.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => out.push_str(&number(*v)),
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Uint(v) => out.push_str(&v.to_string()),
            JsonValue::Str(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Uint(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Uint(v as u64)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

/// Formats a float as a JSON number token (`null` when non-finite).
#[must_use]
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    if v == 0.0 {
        return "0".to_owned();
    }
    let magnitude = v.abs();
    if (1e-4..1e15).contains(&magnitude) {
        // `{}` on f64 prints the shortest round-trip decimal.
        format!("{v}")
    } else {
        // Exponent form keeps extreme magnitudes compact; JSON allows it.
        format!("{v:e}")
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Checks that `input` is one complete, syntactically valid JSON value.
///
/// This is a strict recursive-descent syntax check (no number-range or
/// duplicate-key semantics); it exists so artifacts written by this
/// workspace can be verified without an external JSON dependency.
///
/// # Errors
///
/// Returns a description and byte offset of the first syntax error.
pub fn validate(input: &str) -> Result<(), String> {
    parse(input).map(|_| ())
}

/// Parses `input` into a [`JsonValue`] tree.
///
/// Integers without fraction/exponent parts become [`JsonValue::Uint`]
/// (or [`JsonValue::Int`] when negative); everything else numeric becomes
/// [`JsonValue::Num`]. Because [`number`] renders floats with shortest
/// round-trip decimals, `parse(value.render())` reproduces finite numeric
/// payloads exactly — the property the fault-map serialization relies on.
///
/// # Errors
///
/// Returns a description and byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, b"true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null").map(|()| JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, expect: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(expect) {
        *pos += expect.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                let esc = bytes.get(*pos + 1).copied();
                match esc {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let unit = parse_hex4(bytes, *pos + 2)
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        *pos += 6;
                        let scalar = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: must pair with \uDC00..\uDFFF.
                            if bytes.get(*pos..*pos + 2) != Some(b"\\u") {
                                return Err(format!("unpaired surrogate at byte {pos}"));
                            }
                            let low = parse_hex4(bytes, *pos + 2)
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(format!("unpaired surrogate at byte {pos}"));
                            }
                            *pos += 6;
                            0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&unit) {
                            return Err(format!("unpaired surrogate at byte {pos}"));
                        } else {
                            unit
                        };
                        out.push(
                            char::from_u32(scalar)
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?,
                        );
                        continue;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 2;
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos}")),
            _ => {
                // Validated UTF-8 input: decode the whole multi-byte char.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let ch = rest.chars().next().expect("non-empty by loop guard");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_hex4(bytes: &[u8], at: usize) -> Option<u32> {
    let hex = bytes.get(at..at + 4)?;
    let s = std::str::from_utf8(hex).ok()?;
    u32::from_str_radix(s, 16).ok()
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let from = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > from
    };
    let int_start = *pos;
    if !digits(bytes, pos) {
        return Err(format!("expected digits at byte {start}"));
    }
    if bytes[int_start] == b'0' && *pos - int_start > 1 {
        return Err(format!("leading zero at byte {int_start}"));
    }
    let mut integral = true;
    if bytes.get(*pos) == Some(&b'.') {
        integral = false;
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        integral = false;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    let token =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| format!("bad number at {start}"))?;
    if integral {
        // Preserve full 64-bit integer precision when it fits; fall through
        // to f64 only for magnitudes JSON readers already treat as floats.
        if let Ok(u) = token.parse::<u64>() {
            return Ok(JsonValue::Uint(u));
        }
        if let Ok(i) = token.parse::<i64>() {
            return Ok(JsonValue::Int(i));
        }
    }
    token
        .parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number at byte {start}"))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    let mut items = Vec::new();
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(bytes, pos);
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    let mut pairs = Vec::new();
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        pairs.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_validates_nested_document() {
        let doc = JsonValue::object([
            ("name", JsonValue::from("fig3a")),
            ("ok", JsonValue::from(true)),
            (
                "rows",
                JsonValue::Array(vec![
                    JsonValue::object([
                        ("x", JsonValue::Num(0.5)),
                        ("n", JsonValue::Uint(3)),
                        ("note", JsonValue::from("a \"quoted\"\nline")),
                    ]),
                    JsonValue::Null,
                ]),
            ),
            ("nan", JsonValue::Num(f64::NAN)),
            ("tiny", JsonValue::Num(2.5e-19)),
            ("neg", JsonValue::Int(-7)),
        ]);
        let s = doc.render();
        validate(&s).unwrap_or_else(|e| panic!("{e}: {s}"));
        assert!(s.contains("\"nan\":null"));
        assert!(s.contains("2.5e-19"));
    }

    #[test]
    fn number_formatting_edges() {
        assert_eq!(number(0.0), "0");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(-f64::INFINITY), "null");
        assert_eq!(number(1.5), "1.5");
        for v in [1e-300, -3.25e22, 1e-5, 123456.75, -0.25, 5.0e14] {
            let tok = number(v);
            validate(&tok).unwrap_or_else(|e| panic!("{v}: {e} in {tok}"));
            assert_eq!(tok.parse::<f64>().unwrap(), v, "round trip {v} via {tok}");
        }
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = JsonValue::object([
            ("name", JsonValue::from("yield")),
            ("rate", JsonValue::Num(0.05)),
            ("tiny", JsonValue::Num(2.5e-19)),
            ("count", JsonValue::Uint(u64::MAX)),
            ("neg", JsonValue::Int(-42)),
            ("flag", JsonValue::Bool(false)),
            ("none", JsonValue::Null),
            (
                "cells",
                JsonValue::Array(vec![
                    JsonValue::Uint(3),
                    JsonValue::Num(1.0e-3),
                    JsonValue::Str("µ \"q\"\n\t".to_owned()),
                ]),
            ),
        ]);
        let parsed = parse(&doc.render()).expect("rendered doc must parse");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_builds_expected_values() {
        assert_eq!(parse("0").unwrap(), JsonValue::Uint(0));
        assert_eq!(parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse("1.5e3").unwrap(), JsonValue::Num(1500.0));
        assert_eq!(
            parse(r#""aé😀b""#).unwrap(),
            JsonValue::Str("aé😀b".to_owned())
        );
        let obj = parse(r#"{"k":[1,2]}"#).unwrap();
        assert_eq!(
            obj.get("k").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(
            obj.get("k").unwrap().as_array().unwrap()[1].as_u64(),
            Some(2)
        );
        assert!(parse(r#""\ud800x""#).is_err(), "unpaired surrogate");
        assert!(parse(r#""\udc00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn accessor_views() {
        assert_eq!(JsonValue::Num(2.5).as_f64(), Some(2.5));
        assert_eq!(JsonValue::Int(-3).as_f64(), Some(-3.0));
        assert_eq!(JsonValue::Uint(9).as_f64(), Some(9.0));
        assert_eq!(JsonValue::Num(4.0).as_u64(), Some(4));
        assert_eq!(JsonValue::Num(4.5).as_u64(), None);
        assert_eq!(JsonValue::Int(-1).as_u64(), None);
        assert_eq!(JsonValue::from("x").as_str(), Some("x"));
        assert_eq!(JsonValue::Null.as_str(), None);
        assert!(JsonValue::Null.get("k").is_none());
    }

    #[test]
    fn validator_accepts_valid_and_rejects_invalid() {
        for good in [
            "null",
            "true",
            "-0.5e-3",
            "[]",
            "{}",
            "[1,2,3]",
            r#"{"a":[{"b":null}],"c":"dé"}"#,
            "  { \"k\" : 1 }  ",
        ] {
            validate(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{'a':1}",
            "{\"a\":}",
            "01",
            "1.",
            "nul",
            "[1] extra",
            "\"unterminated",
            "{\"a\":1,}",
        ] {
            assert!(validate(bad).is_err(), "accepted invalid: {bad}");
        }
    }
}
