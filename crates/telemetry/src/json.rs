//! Minimal hand-rolled JSON: a composable [`JsonValue`], an escaping
//! renderer, and a syntax [`validate`]r used by tests and the bench layer
//! to guarantee emitted artifacts parse.
//!
//! Non-finite floats render as `null` (JSON has no NaN/inf). Numbers use
//! `{:e}` notation outside a comfortable fixed-point window, which JSON
//! accepts.

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Finite check happens at render time; NaN/inf become `null`.
    Num(f64),
    Int(i64),
    Uint(u64),
    Str(String),
    Array(Vec<JsonValue>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor from `&str` keys.
    #[must_use]
    pub fn object<const N: usize>(pairs: [(&str, JsonValue); N]) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Serializes to a compact JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => out.push_str(&number(*v)),
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Uint(v) => out.push_str(&v.to_string()),
            JsonValue::Str(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Uint(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Uint(v as u64)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

/// Formats a float as a JSON number token (`null` when non-finite).
#[must_use]
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    if v == 0.0 {
        return "0".to_owned();
    }
    let magnitude = v.abs();
    if (1e-4..1e15).contains(&magnitude) {
        // `{}` on f64 prints the shortest round-trip decimal.
        format!("{v}")
    } else {
        // Exponent form keeps extreme magnitudes compact; JSON allows it.
        format!("{v:e}")
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Checks that `input` is one complete, syntactically valid JSON value.
///
/// This is a strict recursive-descent syntax check (no number-range or
/// duplicate-key semantics); it exists so artifacts written by this
/// workspace can be verified without an external JSON dependency.
///
/// # Errors
///
/// Returns a description and byte offset of the first syntax error.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, expect: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(expect) {
        *pos += expect.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                let esc = bytes.get(*pos + 1).copied();
                match esc {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 2..*pos + 6);
                        match hex {
                            Some(h) if h.iter().all(u8::is_ascii_hexdigit) => *pos += 6,
                            _ => return Err(format!("bad \\u escape at byte {pos}")),
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let from = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > from
    };
    let int_start = *pos;
    if !digits(bytes, pos) {
        return Err(format!("expected digits at byte {start}"));
    }
    if bytes[int_start] == b'0' && *pos - int_start > 1 {
        return Err(format!("leading zero at byte {int_start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    Ok(())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(bytes, pos);
            }
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}"));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_validates_nested_document() {
        let doc = JsonValue::object([
            ("name", JsonValue::from("fig3a")),
            ("ok", JsonValue::from(true)),
            (
                "rows",
                JsonValue::Array(vec![
                    JsonValue::object([
                        ("x", JsonValue::Num(0.5)),
                        ("n", JsonValue::Uint(3)),
                        ("note", JsonValue::from("a \"quoted\"\nline")),
                    ]),
                    JsonValue::Null,
                ]),
            ),
            ("nan", JsonValue::Num(f64::NAN)),
            ("tiny", JsonValue::Num(2.5e-19)),
            ("neg", JsonValue::Int(-7)),
        ]);
        let s = doc.render();
        validate(&s).unwrap_or_else(|e| panic!("{e}: {s}"));
        assert!(s.contains("\"nan\":null"));
        assert!(s.contains("2.5e-19"));
    }

    #[test]
    fn number_formatting_edges() {
        assert_eq!(number(0.0), "0");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(-f64::INFINITY), "null");
        assert_eq!(number(1.5), "1.5");
        for v in [1e-300, -3.25e22, 1e-5, 123456.75, -0.25, 5.0e14] {
            let tok = number(v);
            validate(&tok).unwrap_or_else(|e| panic!("{v}: {e} in {tok}"));
            assert_eq!(tok.parse::<f64>().unwrap(), v, "round trip {v} via {tok}");
        }
    }

    #[test]
    fn validator_accepts_valid_and_rejects_invalid() {
        for good in [
            "null",
            "true",
            "-0.5e-3",
            "[]",
            "{}",
            "[1,2,3]",
            r#"{"a":[{"b":null}],"c":"dé"}"#,
            "  { \"k\" : 1 }  ",
        ] {
            validate(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{'a':1}",
            "{\"a\":}",
            "01",
            "1.",
            "nul",
            "[1] extra",
            "\"unterminated",
            "{\"a\":1,}",
        ] {
            assert!(validate(bad).is_err(), "accepted invalid: {bad}");
        }
    }
}
