//! The [`Recorder`] sink trait, the zero-cost [`NoopRecorder`] and the
//! scoped [`Span`] timer guard.

use std::time::Instant;

/// A sink for instrumentation data.
///
/// All methods take `&self` so a single recorder can be threaded through a
/// call tree without mutable aliasing; implementations provide their own
/// interior mutability where needed. Instrumented code should be written
/// against `R: Recorder` generics so the no-op implementation inlines away.
pub trait Recorder {
    /// Whether this recorder retains anything. Instrumented code may use
    /// this to skip *computing* expensive diagnostics (never to change
    /// results), and [`Span`] uses it to skip clock reads.
    fn is_enabled(&self) -> bool;

    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &str, delta: u64);

    /// Sets the named gauge to its most recent value.
    fn gauge(&self, name: &str, value: f64);

    /// Records one sample into the named histogram.
    fn observe(&self, name: &str, value: f64);

    /// Records one completed span of `seconds` wall time. Usually called by
    /// the [`Span`] guard rather than directly.
    fn record_span(&self, name: &str, seconds: f64);

    /// Records a structured event (e.g. a hardware/ideal winner mismatch
    /// with its DOM margin).
    fn event(&self, name: &str, fields: &[(&str, f64)]);

    /// Starts a scoped wall-clock timer that reports into `name` on drop.
    fn span(&self, name: &'static str) -> Span<'_, Self>
    where
        Self: Sized,
    {
        Span {
            recorder: self,
            name,
            start: self.is_enabled().then(Instant::now),
        }
    }
}

/// The default recorder: enabled-check is a constant `false` and every sink
/// is an empty body, so instrumented code specialised on it carries no
/// overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn counter(&self, _name: &str, _delta: u64) {}

    #[inline(always)]
    fn gauge(&self, _name: &str, _value: f64) {}

    #[inline(always)]
    fn observe(&self, _name: &str, _value: f64) {}

    #[inline(always)]
    fn record_span(&self, _name: &str, _seconds: f64) {}

    #[inline(always)]
    fn event(&self, _name: &str, _fields: &[(&str, f64)]) {}
}

/// Forwarding impl so instrumented entry points can hand `&recorder` down
/// a level without re-parameterising everything.
impl<R: Recorder + ?Sized> Recorder for &R {
    #[inline]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }

    #[inline]
    fn counter(&self, name: &str, delta: u64) {
        (**self).counter(name, delta);
    }

    #[inline]
    fn gauge(&self, name: &str, value: f64) {
        (**self).gauge(name, value);
    }

    #[inline]
    fn observe(&self, name: &str, value: f64) {
        (**self).observe(name, value);
    }

    #[inline]
    fn record_span(&self, name: &str, seconds: f64) {
        (**self).record_span(name, seconds);
    }

    #[inline]
    fn event(&self, name: &str, fields: &[(&str, f64)]) {
        (**self).event(name, fields);
    }
}

/// Forwarding impl so long-lived services (e.g. a recall engine) can share
/// one recorder across worker threads behind
/// `Arc<dyn Recorder + Send + Sync>` while instrumented code stays generic.
impl<R: Recorder + ?Sized> Recorder for std::sync::Arc<R> {
    #[inline]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }

    #[inline]
    fn counter(&self, name: &str, delta: u64) {
        (**self).counter(name, delta);
    }

    #[inline]
    fn gauge(&self, name: &str, value: f64) {
        (**self).gauge(name, value);
    }

    #[inline]
    fn observe(&self, name: &str, value: f64) {
        (**self).observe(name, value);
    }

    #[inline]
    fn record_span(&self, name: &str, seconds: f64) {
        (**self).record_span(name, seconds);
    }

    #[inline]
    fn event(&self, name: &str, fields: &[(&str, f64)]) {
        (**self).event(name, fields);
    }
}

/// RAII span timer: measures wall time from creation to drop and reports it
/// via [`Recorder::record_span`]. When the recorder is disabled no clock is
/// read at all.
#[must_use = "a span reports its timing when dropped; binding it to _ ends it immediately"]
pub struct Span<'a, R: Recorder> {
    recorder: &'a R,
    name: &'static str,
    start: Option<Instant>,
}

impl<R: Recorder> Drop for Span<'_, R> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.recorder
                .record_span(self.name, start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryRecorder;

    #[test]
    fn noop_is_disabled_and_absorbs_everything() {
        let r = NoopRecorder;
        assert!(!r.is_enabled());
        r.counter("a", 1);
        r.gauge("b", 2.0);
        r.observe("c", 3.0);
        r.event("d", &[("x", 1.0)]);
        let _span = r.span("e");
    }

    #[test]
    fn reference_forwarding_reaches_the_sink() {
        let r = MemoryRecorder::default();
        let by_ref: &MemoryRecorder = &r;
        assert!(by_ref.is_enabled());
        by_ref.counter("n", 2);
        {
            let _span = by_ref.span("s");
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("n"), 2);
        assert_eq!(snap.span_stats("s").unwrap().count, 1);
    }

    #[test]
    fn arc_forwarding_reaches_the_sink() {
        use std::sync::Arc;
        let r = Arc::new(MemoryRecorder::default());
        let shared: Arc<dyn Recorder + Send + Sync> = r.clone();
        assert!(shared.is_enabled());
        shared.counter("n", 3);
        shared.gauge("g", 1.5);
        shared.observe("h", 0.25);
        shared.event("e", &[("x", 1.0)]);
        {
            let _span = shared.span("s");
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("n"), 3);
        assert_eq!(snap.span_stats("s").unwrap().count, 1);
        assert_eq!(snap.histogram_stats("h").unwrap().count, 1);
    }

    #[test]
    fn nested_spans_record_independently() {
        let r = MemoryRecorder::default();
        {
            let _outer = r.span("outer");
            for _ in 0..3 {
                let _inner = r.span("inner");
            }
        }
        let snap = r.snapshot();
        assert_eq!(snap.span_stats("outer").unwrap().count, 1);
        assert_eq!(snap.span_stats("inner").unwrap().count, 3);
        assert!(snap.span_stats("outer").unwrap().sum >= 0.0);
    }
}
