//! Immutable aggregation results: [`TelemetrySnapshot`] and its pieces.

use crate::json::JsonValue;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Summary statistics of one histogram or span series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStats {
    /// Total samples recorded (exact, beyond any retention cap).
    pub count: u64,
    /// Sum of all samples (exact).
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (nearest rank over retained samples).
    pub p50: f64,
    /// 90th percentile (nearest rank over retained samples).
    pub p90: f64,
    /// 95th percentile (nearest rank over retained samples).
    pub p95: f64,
    /// 99th percentile (nearest rank over retained samples).
    pub p99: f64,
    /// 99.9th percentile (nearest rank over retained samples).
    pub p999: f64,
}

impl HistStats {
    /// Arithmetic mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    fn to_json(self) -> JsonValue {
        JsonValue::object([
            ("count", JsonValue::Uint(self.count)),
            ("sum", JsonValue::Num(self.sum)),
            ("mean", JsonValue::Num(self.mean())),
            ("min", JsonValue::Num(self.min)),
            ("max", JsonValue::Num(self.max)),
            ("p50", JsonValue::Num(self.p50)),
            ("p90", JsonValue::Num(self.p90)),
            ("p95", JsonValue::Num(self.p95)),
            ("p99", JsonValue::Num(self.p99)),
            ("p999", JsonValue::Num(self.p999)),
        ])
    }
}

/// One structured event, e.g. a hardware/ideal winner divergence.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Event kind, e.g. `recall.hw_ideal_mismatch`.
    pub name: String,
    /// Numeric payload fields in recording order.
    pub fields: Vec<(String, f64)>,
}

/// Frozen view of everything a [`crate::MemoryRecorder`] collected.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Monotonic counters (device events: SAR cycles, switch events, ...).
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges (solver residuals, calibration gains, ...).
    pub gauges: BTreeMap<String, f64>,
    /// Value distributions (DOM margins, iteration counts, ...).
    pub histograms: BTreeMap<String, HistStats>,
    /// Wall-time distributions per span name, in seconds.
    pub spans: BTreeMap<String, HistStats>,
    /// Retained structured events.
    pub events: Vec<TelemetryEvent>,
    /// Events dropped once the retention cap was hit.
    pub dropped_events: u64,
    /// Retained histogram samples, ascending-sorted per name — the basis
    /// of [`TelemetrySnapshot::percentile`] at arbitrary quantiles.
    pub histogram_samples: BTreeMap<String, Vec<f64>>,
    /// Retained span samples (seconds), ascending-sorted per name.
    pub span_samples: BTreeMap<String, Vec<f64>>,
}

impl TelemetrySnapshot {
    /// The value of a counter, `0` when never touched.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Statistics of a span series, if it was recorded.
    #[must_use]
    pub fn span_stats(&self, name: &str) -> Option<&HistStats> {
        self.spans.get(name)
    }

    /// Statistics of a histogram, if it was recorded.
    #[must_use]
    pub fn histogram_stats(&self, name: &str) -> Option<&HistStats> {
        self.histograms.get(name)
    }

    /// Nearest-rank percentile of a histogram (or, when no histogram has
    /// the name, a span series) at an arbitrary quantile `q ∈ [0, 1]`,
    /// computed over the retained samples. Returns `NaN` for an unknown
    /// name or an empty series; a single-sample series answers that sample
    /// for every `q`.
    #[must_use]
    pub fn percentile(&self, name: &str, q: f64) -> f64 {
        let sorted = self
            .histogram_samples
            .get(name)
            .or_else(|| self.span_samples.get(name));
        let Some(sorted) = sorted else {
            return f64::NAN;
        };
        if sorted.is_empty() {
            return f64::NAN;
        }
        let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Structured JSON value of the whole snapshot (stable, sorted keys).
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        let stats_map = |m: &BTreeMap<String, HistStats>| {
            JsonValue::Object(m.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
        };
        JsonValue::object([
            (
                "counters",
                JsonValue::Object(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), JsonValue::Uint(v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                JsonValue::Object(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), JsonValue::Num(v)))
                        .collect(),
                ),
            ),
            ("histograms", stats_map(&self.histograms)),
            ("spans", stats_map(&self.spans)),
            (
                "events",
                JsonValue::Array(
                    self.events
                        .iter()
                        .map(|e| {
                            JsonValue::object([
                                ("name", JsonValue::Str(e.name.clone())),
                                (
                                    "fields",
                                    JsonValue::Object(
                                        e.fields
                                            .iter()
                                            .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("dropped_events", JsonValue::Uint(self.dropped_events)),
        ])
    }

    /// Serializes the snapshot to a JSON string.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Renders a human-readable table of counters, gauges and span/histogram
    /// statistics.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {value:>14}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<40} {value:>14.6e}");
            }
        }
        for (title, series, unit_scale, unit) in [
            ("spans", &self.spans, 1e6, "us"),
            ("histograms", &self.histograms, 1.0, ""),
        ] {
            if series.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "{title}\n  {:<40} {:>10} {:>12} {:>12} {:>12} {:>12}",
                "name",
                "count",
                format!("mean{unit}"),
                format!("p50{unit}"),
                format!("p95{unit}"),
                format!("max{unit}"),
            );
            for (name, s) in series {
                let _ = writeln!(
                    out,
                    "  {name:<40} {:>10} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
                    s.count,
                    s.mean() * unit_scale,
                    s.p50 * unit_scale,
                    s.p95 * unit_scale,
                    s.max * unit_scale,
                );
            }
        }
        if !self.events.is_empty() || self.dropped_events > 0 {
            let _ = writeln!(
                out,
                "events: {} retained, {} dropped",
                self.events.len(),
                self.dropped_events
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::{MemoryRecorder, Recorder};

    fn sample_snapshot() -> TelemetrySnapshot {
        let r = MemoryRecorder::default();
        r.counter("adc.sar_cycles", 40);
        r.gauge("crossbar.solver_residual", 1.5e-11);
        r.observe("recall.dom", 27.0);
        r.record_span("recall.total", 0.002);
        r.event(
            "recall.hw_ideal_mismatch",
            &[("query", 3.0), ("margin", 1.0)],
        );
        r.snapshot()
    }

    #[test]
    fn json_is_valid_and_carries_all_sections() {
        let s = sample_snapshot();
        let j = s.to_json();
        json::validate(&j).expect("snapshot JSON must parse");
        for key in ["counters", "gauges", "histograms", "spans", "events"] {
            assert!(j.contains(&format!("\"{key}\"")), "missing {key} in {j}");
        }
        assert!(j.contains("\"adc.sar_cycles\":40"));
        assert!(j.contains("recall.hw_ideal_mismatch"));
    }

    #[test]
    fn render_mentions_every_name() {
        let s = sample_snapshot();
        let text = s.render();
        for name in [
            "adc.sar_cycles",
            "crossbar.solver_residual",
            "recall.dom",
            "recall.total",
        ] {
            assert!(text.contains(name), "{name} missing from:\n{text}");
        }
    }

    #[test]
    fn empty_snapshot_is_quiet_but_valid() {
        let s = TelemetrySnapshot::default();
        json::validate(&s.to_json()).unwrap();
        assert!(s.render().is_empty());
        assert_eq!(s.counter("anything"), 0);
        assert!(s.span_stats("anything").is_none());
    }

    #[test]
    fn percentile_pins_exact_values_on_known_contents() {
        let r = MemoryRecorder::default();
        for v in 1..=100 {
            r.observe("h", f64::from(v));
        }
        let s = r.snapshot();
        // Nearest rank over 100 ascending samples: p(q) = ceil(100q)-th.
        assert_eq!(s.percentile("h", 0.50), 50.0);
        assert_eq!(s.percentile("h", 0.90), 90.0);
        assert_eq!(s.percentile("h", 0.99), 99.0);
        assert_eq!(s.percentile("h", 0.999), 100.0);
        assert_eq!(s.percentile("h", 0.0), 1.0);
        assert_eq!(s.percentile("h", 1.0), 100.0);
        // Quantiles between ranks resolve to the next rank up.
        assert_eq!(s.percentile("h", 0.505), 51.0);
        let h = s.histogram_stats("h").unwrap();
        assert_eq!(
            (h.p50, h.p90, h.p95, h.p99, h.p999),
            (50.0, 90.0, 95.0, 99.0, 100.0)
        );
    }

    #[test]
    fn percentile_single_sample_and_span_fallback() {
        let r = MemoryRecorder::default();
        r.observe("one", 7.5);
        r.record_span("recall.total", 0.25);
        let s = r.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile("one", q), 7.5, "single sample at q={q}");
        }
        // Span series answer when no histogram has the name.
        assert_eq!(s.percentile("recall.total", 0.5), 0.25);
    }

    #[test]
    fn percentile_of_empty_or_unknown_is_nan() {
        let s = TelemetrySnapshot::default();
        assert!(s.percentile("absent", 0.5).is_nan());
        let mut s = TelemetrySnapshot::default();
        s.histogram_samples.insert("empty".to_owned(), Vec::new());
        assert!(s.percentile("empty", 0.5).is_nan());
    }

    #[test]
    fn mean_of_empty_is_nan_and_json_null() {
        let h = HistStats {
            count: 0,
            sum: 0.0,
            min: f64::NAN,
            max: f64::NAN,
            p50: f64::NAN,
            p90: f64::NAN,
            p95: f64::NAN,
            p99: f64::NAN,
            p999: f64::NAN,
        };
        assert!(h.mean().is_nan());
        assert!(h.to_json().render().contains("null"));
    }
}
