//! Property-based tests for the telemetry layer: aggregation invariants
//! that must hold for *any* recorded series, not just hand-picked examples.

use proptest::prelude::*;
use spinamm_telemetry::{json, MemoryRecorder, Recorder};

/// Nests `depth` spans recursively, opening `width` siblings at each level.
fn nest_spans(r: &MemoryRecorder, depth: usize, width: usize) {
    if depth == 0 {
        return;
    }
    let _guard = r.span("prop.nest");
    for _ in 0..width {
        nest_spans(r, depth - 1, width);
    }
}

proptest! {
    /// Histogram percentiles are ordered min ≤ p50 ≤ p95 ≤ max for any
    /// sample set, and count/sum are exact.
    #[test]
    fn histogram_percentiles_are_monotone(
        samples in proptest::collection::vec(-1e9..1e9f64, 1..200)
    ) {
        let r = MemoryRecorder::default();
        for &s in &samples {
            r.observe("prop.hist", s);
        }
        let snap = r.snapshot();
        let h = snap.histogram_stats("prop.hist").expect("recorded");
        prop_assert_eq!(h.count, samples.len() as u64);
        let expected_sum: f64 = samples.iter().sum();
        prop_assert!((h.sum - expected_sum).abs() <= 1e-6 * expected_sum.abs().max(1.0));
        prop_assert!(h.min <= h.p50, "min {} > p50 {}", h.min, h.p50);
        prop_assert!(h.p50 <= h.p95, "p50 {} > p95 {}", h.p50, h.p95);
        prop_assert!(h.p95 <= h.max, "p95 {} > max {}", h.p95, h.max);
        prop_assert!(h.min <= h.mean() && h.mean() <= h.max);
    }

    /// Arbitrarily deep/wide span nesting never panics and records exactly
    /// the number of spans opened.
    #[test]
    fn span_nesting_never_panics(depth in 0usize..6, width in 1usize..4) {
        let r = MemoryRecorder::default();
        nest_spans(&r, depth, width);
        let snap = r.snapshot();
        // Geometric series: width + width² + … + width^depth opened spans.
        let mut expected = 0u64;
        let mut layer = 1u64;
        for _ in 0..depth {
            expected += layer;
            layer *= width as u64;
        }
        // The recursion opens one span per call with depth > 0.
        match snap.span_stats("prop.nest") {
            Some(s) => prop_assert_eq!(s.count, expected),
            None => prop_assert_eq!(expected, 0),
        }
    }

    /// Counters are exact monotone sums regardless of delta ordering.
    #[test]
    fn counters_sum_exactly(deltas in proptest::collection::vec(0u64..1_000_000, 0..64)) {
        let r = MemoryRecorder::default();
        for &d in &deltas {
            r.counter("prop.counter", d);
        }
        let snap = r.snapshot();
        prop_assert_eq!(snap.counter("prop.counter"), deltas.iter().sum::<u64>());
    }

    /// Any snapshot — including NaN/inf gauges and unicode-ish event names —
    /// renders to syntactically valid JSON.
    #[test]
    fn snapshot_json_always_validates(
        gauge in proptest::collection::vec(-1e30..1e30f64, 0..8),
        counters in proptest::collection::vec(0u64..u64::MAX / 2, 0..8),
        weird in -10.0..10.0f64
    ) {
        let r = MemoryRecorder::default();
        for (k, &v) in gauge.iter().enumerate() {
            r.gauge(&format!("g.{k}"), v);
        }
        for (k, &v) in counters.iter().enumerate() {
            r.counter(&format!("c.{k}"), v);
        }
        r.gauge("g.nan", f64::NAN);
        r.gauge("g.inf", f64::INFINITY);
        r.event("e.\"quoted\\name\"", &[("x", weird), ("nan", f64::NAN)]);
        let rendered = r.snapshot().to_json();
        prop_assert!(
            json::validate(&rendered).is_ok(),
            "invalid JSON: {}",
            rendered
        );
    }
}
