//! Property-based tests for the circuit solver: invariants that must hold
//! for *any* resistive network, not just hand-picked examples.

use proptest::prelude::*;
use spinamm_circuit::prelude::*;
use spinamm_circuit::sparse::ConjugateGradient;
use spinamm_circuit::ElementId;

/// A randomly generated, always-solvable ladder-with-rungs network.
#[derive(Debug, Clone)]
struct RandomNetwork {
    /// Resistances of the series ladder segments (Ω).
    series: Vec<f64>,
    /// Resistance of the shunt at each internal node (Ω).
    shunts: Vec<f64>,
    /// Supply voltage at the head of the ladder (V).
    supply: f64,
    /// Current injected at the tail node (A).
    injection: f64,
}

fn network_strategy() -> impl Strategy<Value = RandomNetwork> {
    (2usize..12).prop_flat_map(|n| {
        (
            proptest::collection::vec(10.0..100_000.0f64, n),
            proptest::collection::vec(10.0..100_000.0f64, n),
            -2.0..2.0f64,
            -1e-3..1e-3f64,
        )
            .prop_map(|(series, shunts, supply, injection)| RandomNetwork {
                series,
                shunts,
                supply,
                injection,
            })
    })
}

struct Built {
    net: Netlist,
    nodes: Vec<NodeId>,
    source: ElementId,
}

fn build(rn: &RandomNetwork) -> Built {
    let mut net = Netlist::new();
    let nodes: Vec<NodeId> = (0..rn.series.len())
        .map(|k| net.node(format!("n{k}")))
        .collect();
    let source = net.voltage_source(nodes[0], Volts(rn.supply));
    for (k, w) in nodes.windows(2).enumerate() {
        net.resistor(w[0], w[1], Ohms(rn.series[k]));
    }
    for (k, &node) in nodes.iter().enumerate() {
        net.resistor(node, Netlist::GROUND, Ohms(rn.shunts[k]));
    }
    net.current_source(Netlist::GROUND, *nodes.last().unwrap(), Amps(rn.injection));
    Built { net, nodes, source }
}

proptest! {
    /// All three solve methods agree on every node voltage.
    #[test]
    fn solve_methods_agree(rn in network_strategy()) {
        let b = build(&rn);
        let lu = b.net.solve_dc_with(SolveMethod::DenseLu).unwrap();
        let ch = b.net.solve_dc_with(SolveMethod::DenseCholesky).unwrap();
        let cg = b
            .net
            .solve_dc_with(SolveMethod::SparseCg(ConjugateGradient::new(1e-13)))
            .unwrap();
        for &node in &b.nodes {
            let (a, c, d) = (lu.voltage(node).0, ch.voltage(node).0, cg.voltage(node).0);
            let scale = a.abs().max(1e-6);
            prop_assert!((a - c).abs() / scale < 1e-7, "LU {a} vs Cholesky {c}");
            prop_assert!((a - d).abs() / scale < 1e-6, "LU {a} vs CG {d}");
        }
    }

    /// Tellegen's theorem: power supplied by sources equals power dissipated
    /// in resistors.
    #[test]
    fn power_balance(rn in network_strategy()) {
        let b = build(&rn);
        let sol = b.net.solve_dc().unwrap();
        let diss = sol.dissipated_power(&b.net).0;
        let supp = sol.source_power(&b.net).0;
        let scale = diss.abs().max(1e-15);
        prop_assert!((diss - supp).abs() / scale < 1e-6, "dissipated {diss} supplied {supp}");
    }

    /// Linearity / superposition: scaling all sources by k scales all node
    /// voltages by k.
    #[test]
    fn superposition_scaling(rn in network_strategy(), k in 0.1..10.0f64) {
        let base = build(&rn);
        let mut scaled_rn = rn.clone();
        scaled_rn.supply *= k;
        scaled_rn.injection *= k;
        let scaled = build(&scaled_rn);
        let s0 = base.net.solve_dc().unwrap();
        let s1 = scaled.net.solve_dc().unwrap();
        for (&n0, &n1) in base.nodes.iter().zip(&scaled.nodes) {
            let expect = s0.voltage(n0).0 * k;
            let got = s1.voltage(n1).0;
            let scale = expect.abs().max(1e-9);
            prop_assert!((expect - got).abs() / scale < 1e-7);
        }
    }

    /// The clamp's branch current accounts for the full KCL imbalance at its
    /// node.
    #[test]
    fn clamp_current_closes_kcl(rn in network_strategy()) {
        let b = build(&rn);
        let sol = b.net.solve_dc().unwrap();
        // Sum resistor currents leaving the clamped node.
        let clamped = b.nodes[0];
        let mut outflow = 0.0;
        for (idx, e) in b.net.elements().iter().enumerate() {
            if let spinamm_circuit::netlist::Element::Resistor { a, b: nb, .. } = e {
                let i = sol.current(b.net.element_id(idx).unwrap()).0;
                if *a == clamped {
                    outflow += i;
                }
                if *nb == clamped {
                    outflow -= i;
                }
            }
        }
        let supplied = sol.current(b.source).0;
        let scale = supplied.abs().max(1e-12);
        prop_assert!((outflow - supplied).abs() / scale < 1e-7);
    }

    /// Voltages are bounded by source extremes in a purely resistive network
    /// with a single voltage source and no current injection (maximum
    /// principle).
    #[test]
    fn maximum_principle(
        series in proptest::collection::vec(10.0..10_000.0f64, 2..10),
        shunts in proptest::collection::vec(10.0..10_000.0f64, 10),
        supply in 0.01..2.0f64,
    ) {
        let rn = RandomNetwork {
            shunts: shunts[..series.len()].to_vec(),
            series,
            supply,
            injection: 0.0,
        };
        let b = build(&rn);
        let sol = b.net.solve_dc().unwrap();
        for &node in &b.nodes {
            let v = sol.voltage(node).0;
            prop_assert!(v >= -1e-12 && v <= supply + 1e-12, "node at {v} outside [0, {supply}]");
        }
    }
}
