//! Linear transient analysis (backward Euler).
//!
//! The crossbar study is DC at heart, but one dynamic question matters for
//! the paper's 100 MHz operating claim: do the crossbar's RC-loaded bars
//! (0.4 fF/µm Cu wires, Table 2) *settle* within a SAR cycle? This module
//! answers it: capacitors become backward-Euler companion models
//! (a conductance `C/Δt` in parallel with a history current source), the
//! resulting resistive network is solved per step by the same reduced
//! Dirichlet machinery as the DC path — with the matrix factored once and
//! reused across all steps — and the caller reads node waveforms and
//! settling times.
//!
//! Scope: clamps, resistors, current sources and capacitors (no floating
//! voltage sources), with sources held constant over the run — i.e. step
//! responses, which is exactly the settling question.

use crate::dense::{CholeskyFactor, DenseMatrix};
use crate::netlist::{Element, Netlist, NodeId};
use crate::units::{Farads, Seconds, Volts};
use crate::CircuitError;

/// Transient analysis configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientAnalysis {
    /// Integration step.
    pub time_step: Seconds,
    /// Total simulated time.
    pub duration: Seconds,
}

impl TransientAnalysis {
    /// Creates an analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] unless
    /// `0 < time_step ≤ duration` (both finite).
    pub fn new(time_step: Seconds, duration: Seconds) -> Result<Self, CircuitError> {
        if !(time_step.0.is_finite() && time_step.0 > 0.0) {
            return Err(CircuitError::InvalidParameter {
                what: "time step must be finite and positive",
            });
        }
        if !(duration.0.is_finite() && duration.0 >= time_step.0) {
            return Err(CircuitError::InvalidParameter {
                what: "duration must be finite and at least one time step",
            });
        }
        Ok(Self {
            time_step,
            duration,
        })
    }

    /// Runs the step response: all free nodes start at 0 V, the clamps and
    /// current sources switch on at `t = 0`, and the network is integrated
    /// to `duration`.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidParameter`] if the netlist contains floating
    ///   voltage sources.
    /// * [`CircuitError::ConflictingClamp`] /
    ///   [`CircuitError::SingularSystem`] as in the DC path.
    pub fn run(&self, net: &Netlist) -> Result<TransientResult, CircuitError> {
        if net.has_floating_sources() {
            return Err(CircuitError::InvalidParameter {
                what: "transient analysis does not support floating voltage sources",
            });
        }
        let n = net.node_count();
        let dt = self.time_step.0;
        let steps = (self.duration.0 / dt).round().max(1.0) as usize;

        // Dirichlet data.
        let mut clamp: Vec<Option<f64>> = vec![None; n];
        clamp[0] = Some(0.0);
        for e in net.elements() {
            if let Element::Clamp { node, volts } = e {
                match clamp[node.index()] {
                    None => clamp[node.index()] = Some(volts.0),
                    Some(v) if v == volts.0 => {}
                    Some(_) => return Err(CircuitError::ConflictingClamp { node: node.index() }),
                }
            }
        }
        let mut reduced_index = vec![usize::MAX; n];
        let mut free_nodes = Vec::new();
        for (i, c) in clamp.iter().enumerate() {
            if c.is_none() {
                reduced_index[i] = free_nodes.len();
                free_nodes.push(i);
            }
        }
        let m = free_nodes.len();
        if m == 0 {
            // Nothing to integrate: everything is pinned.
            let mut voltages = vec![0.0; n];
            for (i, c) in clamp.iter().enumerate() {
                if let Some(v) = c {
                    voltages[i] = *v;
                }
            }
            return Ok(TransientResult {
                times: vec![self.duration.0],
                waveforms: vec![voltages],
            });
        }

        // Assemble (G + C/dt) on the free nodes, plus the constant part of
        // the right-hand side (current sources and conductive coupling to
        // clamped nodes).
        let mut a = DenseMatrix::zeros(m, m);
        let mut rhs_const = vec![0.0; m];
        // Capacitor bookkeeping for the history term: (free_a, free_b, c/dt)
        // with usize::MAX marking a clamped/ground terminal.
        let mut caps: Vec<(usize, usize, f64, usize, usize)> = Vec::new();

        let stamp = |a: &mut DenseMatrix, rhs: &mut [f64], na: usize, nb: usize, g: f64| {
            let (ia, ib) = (reduced_index[na], reduced_index[nb]);
            if ia != usize::MAX {
                a[(ia, ia)] += g;
                if let Some(vb) = clamp[nb] {
                    rhs[ia] += g * vb;
                }
            }
            if ib != usize::MAX {
                a[(ib, ib)] += g;
                if let Some(va) = clamp[na] {
                    rhs[ib] += g * va;
                }
            }
            if ia != usize::MAX && ib != usize::MAX {
                a[(ia, ib)] -= g;
                a[(ib, ia)] -= g;
            }
        };

        for e in net.elements() {
            match e {
                Element::Resistor { a: na, b: nb, g } => {
                    stamp(&mut a, &mut rhs_const, na.index(), nb.index(), g.0);
                }
                Element::Capacitor {
                    a: na,
                    b: nb,
                    farads,
                } => {
                    let g_c = farads.0 / dt;
                    // The companion conductance enters the matrix, but its
                    // clamp coupling belongs to the *history* term, not the
                    // constant RHS — handle it per step below.
                    let (ia, ib) = (reduced_index[na.index()], reduced_index[nb.index()]);
                    if ia != usize::MAX {
                        a[(ia, ia)] += g_c;
                    }
                    if ib != usize::MAX {
                        a[(ib, ib)] += g_c;
                    }
                    if ia != usize::MAX && ib != usize::MAX {
                        a[(ia, ib)] -= g_c;
                        a[(ib, ia)] -= g_c;
                    }
                    caps.push((ia, ib, g_c, na.index(), nb.index()));
                }
                Element::CurrentSource { from, to, amps } => {
                    if let Some(&ri) = reduced_index.get(to.index()) {
                        if ri != usize::MAX {
                            rhs_const[ri] += amps.0;
                        }
                    }
                    if let Some(&ri) = reduced_index.get(from.index()) {
                        if ri != usize::MAX {
                            rhs_const[ri] -= amps.0;
                        }
                    }
                }
                Element::Clamp { .. } => {}
                Element::FloatingSource { .. } => unreachable!("rejected above"),
            }
        }

        let factor: CholeskyFactor = a.cholesky()?;

        // State: full node-voltage vector; free nodes start at 0.
        let mut voltages = vec![0.0; n];
        for (i, c) in clamp.iter().enumerate() {
            if let Some(v) = c {
                voltages[i] = *v;
            }
        }

        let mut times = Vec::with_capacity(steps);
        let mut waveforms = Vec::with_capacity(steps);
        let mut rhs = vec![0.0; m];
        for step in 1..=steps {
            rhs.copy_from_slice(&rhs_const);
            // History currents: I_eq = (C/dt)·v_ab_old injected into a.
            for &(ia, ib, g_c, na, nb) in &caps {
                let v_ab = voltages[na] - voltages[nb];
                if ia != usize::MAX {
                    // History current plus the clamp coupling of the
                    // companion conductance (g_c·v_b moves to the RHS when
                    // b is pinned; ground contributes 0).
                    rhs[ia] += g_c * v_ab + g_c * clamp[nb].unwrap_or(0.0);
                }
                if ib != usize::MAX {
                    rhs[ib] += -g_c * v_ab + g_c * clamp[na].unwrap_or(0.0);
                }
            }
            let x = factor.solve(&rhs)?;
            for (k, &node) in free_nodes.iter().enumerate() {
                voltages[node] = x[k];
            }
            times.push(step as f64 * dt);
            waveforms.push(voltages.clone());
        }

        Ok(TransientResult { times, waveforms })
    }
}

/// Result of a transient run: node-voltage snapshots at every step.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `waveforms[k][node]` = voltage of `node` at `times[k]`.
    waveforms: Vec<Vec<f64>>,
}

impl TransientResult {
    /// The sample instants, seconds.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of stored steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the run produced no steps (cannot happen for valid
    /// configurations; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The waveform of one node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    #[must_use]
    pub fn waveform(&self, node: NodeId) -> Vec<f64> {
        self.waveforms.iter().map(|w| w[node.index()]).collect()
    }

    /// Voltage of a node at the final step.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    #[must_use]
    pub fn final_voltage(&self, node: NodeId) -> Volts {
        Volts(self.waveforms.last().expect("at least one step")[node.index()])
    }

    /// First time at which the node enters — and stays within — the
    /// `±tolerance` band around its final value, or `None` if it never
    /// settles within the run.
    #[must_use]
    pub fn settling_time(&self, node: NodeId, tolerance: Volts) -> Option<Seconds> {
        let wave = self.waveform(node);
        let target = *wave.last()?;
        let mut settled_at: Option<usize> = None;
        for (k, &v) in wave.iter().enumerate() {
            if (v - target).abs() <= tolerance.0.abs() {
                settled_at.get_or_insert(k);
            } else {
                settled_at = None;
            }
        }
        settled_at.map(|k| Seconds(self.times[k]))
    }
}

/// Estimates the slowest RC time constant of a netlist by the elementary
/// product of total capacitance at each node with the reciprocal of the
/// conductance tied to it (an upper-bound heuristic used to pick transient
/// step sizes).
#[must_use]
pub fn estimate_max_time_constant(net: &Netlist) -> Seconds {
    let n = net.node_count();
    let mut cap = vec![0.0_f64; n];
    let mut cond = vec![0.0_f64; n];
    for e in net.elements() {
        match e {
            Element::Capacitor { a, b, farads } => {
                cap[a.index()] += farads.0;
                cap[b.index()] += farads.0;
            }
            Element::Resistor { a, b, g } => {
                cond[a.index()] += g.0;
                cond[b.index()] += g.0;
            }
            _ => {}
        }
    }
    let mut worst = 0.0_f64;
    for i in 1..n {
        if cap[i] > 0.0 && cond[i] > 0.0 {
            worst = worst.max(cap[i] / cond[i]);
        }
    }
    Seconds(worst)
}

/// Convenience: the `RC` product of a single pole.
#[must_use]
pub fn rc_time_constant(r: crate::units::Ohms, c: Farads) -> Seconds {
    Seconds(r.0 * c.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Ohms;

    /// A single RC low-pass: 1 kΩ from a 1 V clamp into 1 pF to ground.
    fn rc_netlist() -> (Netlist, NodeId) {
        let mut net = Netlist::new();
        let src = net.node("src");
        let out = net.node("out");
        net.voltage_source(src, Volts(1.0));
        net.resistor(src, out, Ohms(1e3));
        net.capacitor(out, Netlist::GROUND, Farads(1e-12));
        (net, out)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (net, out) = rc_netlist();
        let tau = 1e-9; // 1 kΩ × 1 pF
        let analysis = TransientAnalysis::new(Seconds(tau / 200.0), Seconds(6.0 * tau)).unwrap();
        let result = analysis.run(&net).unwrap();
        for (t, v) in result.times().iter().zip(result.waveform(out)) {
            let expect = 1.0 - (-t / tau).exp();
            assert!(
                (v - expect).abs() < 0.01,
                "t = {t}: {v} vs analytic {expect}"
            );
        }
        assert!((result.final_voltage(out).0 - 1.0).abs() < 0.01);
    }

    #[test]
    fn settling_time_about_right() {
        let (net, out) = rc_netlist();
        let tau = 1e-9;
        let analysis = TransientAnalysis::new(Seconds(tau / 200.0), Seconds(10.0 * tau)).unwrap();
        let result = analysis.run(&net).unwrap();
        // 1 % settling of a first-order system happens at ~4.6 τ.
        let t_s = result.settling_time(out, Volts(0.01)).unwrap().0;
        assert!(
            (t_s - 4.6 * tau).abs() < 0.5 * tau,
            "settling at {t_s} vs expected ~{}",
            4.6 * tau
        );
    }

    #[test]
    fn capacitor_divider_between_free_nodes() {
        // Two capacitors in series across two resistors — checks coupling
        // between two free nodes and a clamped source.
        let mut net = Netlist::new();
        let src = net.node("src");
        let mid = net.node("mid");
        let out = net.node("out");
        net.voltage_source(src, Volts(1.0));
        net.resistor(src, mid, Ohms(1e3));
        net.capacitor(mid, out, Farads(1e-12));
        net.resistor(out, Netlist::GROUND, Ohms(1e3));
        let analysis = TransientAnalysis::new(Seconds(1e-11), Seconds(20e-9)).unwrap();
        let result = analysis.run(&net).unwrap();
        // At DC (late time) the capacitor is open: out → 0, mid → 1 V.
        assert!(result.final_voltage(out).0.abs() < 0.01);
        assert!((result.final_voltage(mid).0 - 1.0).abs() < 0.01);
        // Early on, the capacitor couples the step through: out jumps up.
        let early = result.waveform(out)[1];
        assert!(early > 0.2, "coupled transient {early}");
    }

    #[test]
    fn transient_final_matches_dc() {
        // Any RC network's late-time solution must equal the DC solve with
        // capacitors open.
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.voltage_source(a, Volts(0.5));
        net.resistor(a, b, Ohms(2e3));
        net.resistor(b, Netlist::GROUND, Ohms(2e3));
        net.capacitor(b, Netlist::GROUND, Farads(5e-13));
        net.capacitor(a, b, Farads(2e-13));
        let dc = net.solve_dc().unwrap();
        let analysis = TransientAnalysis::new(Seconds(1e-11), Seconds(50e-9)).unwrap();
        let tr = analysis.run(&net).unwrap();
        assert!((tr.final_voltage(b).0 - dc.voltage(b).0).abs() < 1e-3);
    }

    #[test]
    fn current_source_charging() {
        // 1 µA into 1 pF: v(t) = I·t/C, a ramp (until the run ends; no
        // resistor, so the matrix is pure C/dt — still SPD).
        let mut net = Netlist::new();
        let out = net.node("out");
        net.current_source(Netlist::GROUND, out, crate::units::Amps(1e-6));
        net.capacitor(out, Netlist::GROUND, Farads(1e-12));
        let analysis = TransientAnalysis::new(Seconds(1e-12), Seconds(1e-9)).unwrap();
        let result = analysis.run(&net).unwrap();
        let v_end = result.final_voltage(out).0;
        // v = I·t/C = 1 µA × 1 ns / 1 pF = 1 mV.
        assert!((v_end - 1e-3).abs() < 1e-5, "ramp end {v_end}");
        // And the ramp is linear: the midpoint sits at half the end value.
        let mid = result.waveform(out)[result.len() / 2 - 1];
        assert!((mid - 0.5e-3).abs() < 1e-5, "midpoint {mid}");
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(TransientAnalysis::new(Seconds(0.0), Seconds(1e-9)).is_err());
        assert!(TransientAnalysis::new(Seconds(1e-9), Seconds(1e-10)).is_err());
        assert!(TransientAnalysis::new(Seconds(f64::NAN), Seconds(1e-9)).is_err());

        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.resistor(a, Netlist::GROUND, Ohms(1e3));
        net.resistor(b, Netlist::GROUND, Ohms(1e3));
        net.floating_voltage_source(a, b, Volts(0.1));
        let analysis = TransientAnalysis::new(Seconds(1e-12), Seconds(1e-9)).unwrap();
        assert!(matches!(
            analysis.run(&net),
            Err(CircuitError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn fully_clamped_network_is_trivial() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.voltage_source(a, Volts(0.3));
        net.resistor(a, Netlist::GROUND, Ohms(1e3));
        let analysis = TransientAnalysis::new(Seconds(1e-12), Seconds(1e-9)).unwrap();
        let result = analysis.run(&net).unwrap();
        assert!((result.final_voltage(a).0 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn time_constant_helpers() {
        assert!((rc_time_constant(Ohms(1e3), Farads(1e-12)).0 - 1e-9).abs() < 1e-21);
        let (net, _) = rc_netlist();
        let tau = estimate_max_time_constant(&net);
        assert!(tau.0 > 0.0 && tau.0 <= 2e-9, "estimated τ {}", tau.0);
    }

    #[test]
    fn dc_solver_treats_capacitor_as_open() {
        let (net, out) = rc_netlist();
        let dc = net.solve_dc().unwrap();
        assert!((dc.voltage(out).0 - 1.0).abs() < 1e-12);
        assert!(net.has_capacitors());
    }
}
