//! Reusable solver state for repeated DC solves of one topology.
//!
//! The paper's sweeps (Fig. 3, Fig. 9, Table 1) evaluate the same crossbar
//! netlist hundreds of times with only element *values* changing — drive
//! conductances, source currents, clamp levels. A cold
//! [`Netlist::solve_dc_stats`] re-derives the clamp map, re-sorts the CSR
//! pattern and factors (or iterates from zero) every time. A
//! [`PreparedSystem`] does that structural work once and then reuses it:
//!
//! * the clamp map, reduced-index mapping and CSR sparsity pattern are
//!   cached at construction;
//! * element values are restamped in place (a deterministic full restamp in
//!   element order, so repeated restamps cannot drift);
//! * on the dense path, the Cholesky factorization is kept and reused as
//!   long as no conductance changed — RHS-only solves for `Current` /
//!   `Clamp` updates are a pair of triangular substitutions;
//! * on the CG path, solves warm-start from a fixed per-system reference
//!   solution with preallocated scratch vectors, and an IC(0) incomplete
//!   Cholesky factor is cached as the preconditioner and reused while
//!   conductance changes stay small (convergence is judged on the true
//!   residual, so a stale factor costs iterations, never accuracy).
//!
//! The warm-start reference is deliberately the *first* solution of the
//! session rather than the previous one: every subsequent solve then
//! depends only on its own inputs, so a batch of queries solved in
//! parallel produces bit-identical results to the same queries solved
//! sequentially.

use crate::dense::{CholeskyFactor, DenseMatrix};
use crate::netlist::{Element, ElementId, Netlist};
use crate::solve::{
    branch_currents, collect_clamps, DcSolution, SolveMethod, SolveStats, AUTO_DENSE_LIMIT,
};
use crate::sparse::{CgWorkspace, ConjugateGradient, CsrMatrix, IncompleteCholesky, SparseBuilder};
use crate::units::{Amps, Siemens, Volts, Watts};
use crate::CircuitError;

/// Relative diagonal perturbation above which the cached IC(0)
/// preconditioner is considered stale and refactored on the next solve.
/// Below it the factor is reused: for wire-dominated crossbar matrices the
/// per-query DAC deltas are orders of magnitude under this bar.
const PRECOND_STALE_THRESHOLD: f64 = 0.05;

/// Sentinel for "this stamp endpoint is clamped — no matrix slot".
const NO_SLOT: usize = usize::MAX;

/// What one prepared solve did, for observability layers above this crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedSolveReport {
    /// Backend stats in the same shape as a cold solve.
    pub stats: SolveStats,
    /// Whether a cached factorization (dense Cholesky or IC(0)) was reused.
    pub factorization_reused: bool,
    /// Whether CG warm-started from the session reference solution.
    pub warm_started: bool,
    /// Iterations avoided versus this system's recorded cold solve.
    pub iterations_saved: usize,
}

#[allow(clippy::large_enum_variant)] // one instance per system; boxing buys nothing
enum Backend {
    Dense {
        factor: Option<CholeskyFactor>,
    },
    Cg {
        cg: ConjugateGradient,
        ws: CgWorkspace,
        /// Fixed warm-start reference: the first solution of the session.
        reference: Option<Vec<f64>>,
        /// Iterations the first (cold) solve took, for savings accounting.
        cold_iterations: Option<usize>,
        precond: Option<IncompleteCholesky>,
        /// IC(0) broke down once — fall back to Jacobi permanently.
        precond_failed: bool,
    },
}

/// Cached solver state for one netlist topology. See the module docs.
pub struct PreparedSystem {
    node_count: usize,
    elements: Vec<Element>,
    clamp: Vec<Option<f64>>,
    clamps_dirty: bool,
    reduced_index: Vec<usize>,
    free_nodes: Vec<usize>,
    m: usize,
    /// Reduced conductance matrix with a frozen pattern (explicit zeros for
    /// slots whose value is currently zero).
    matrix: CsrMatrix,
    /// Per-resistor value slots `[aa, bb, ab, ba]` (`NO_SLOT` = clamped).
    stamps: Vec<(usize, [usize; 4])>,
    values_dirty: bool,
    precond_stale: bool,
    rhs: Vec<f64>,
    backend: Backend,
    factorization_reuses: u64,
    warm_start_iterations_saved: u64,
}

impl PreparedSystem {
    /// Prepares `net` for repeated solving with [`SolveMethod::Auto`]
    /// backend selection (same dense/CG threshold as a cold solve).
    ///
    /// # Errors
    ///
    /// See [`PreparedSystem::with_method`].
    pub fn new(net: &Netlist) -> Result<Self, CircuitError> {
        Self::with_method(net, SolveMethod::Auto)
    }

    /// Prepares `net` with an explicit reduced method.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidParameter`] if the netlist has floating
    ///   voltage sources or `method` is [`SolveMethod::DenseLu`] — prepared
    ///   systems support Dirichlet-reduced solves only.
    /// * [`CircuitError::ConflictingClamp`] if one node is clamped to two
    ///   different voltages.
    pub fn with_method(net: &Netlist, method: SolveMethod) -> Result<Self, CircuitError> {
        if net.has_floating_sources() {
            return Err(CircuitError::InvalidParameter {
                what: "prepared systems do not support floating voltage sources",
            });
        }
        let node_count = net.node_count();
        let unknowns = node_count.saturating_sub(1);
        let backend = match method {
            SolveMethod::Auto => {
                if unknowns <= AUTO_DENSE_LIMIT {
                    Backend::Dense { factor: None }
                } else {
                    Backend::Cg {
                        cg: ConjugateGradient::default(),
                        ws: CgWorkspace::new(),
                        reference: None,
                        cold_iterations: None,
                        precond: None,
                        precond_failed: false,
                    }
                }
            }
            SolveMethod::DenseCholesky => Backend::Dense { factor: None },
            SolveMethod::SparseCg(cg) => Backend::Cg {
                cg,
                ws: CgWorkspace::new(),
                reference: None,
                cold_iterations: None,
                precond: None,
                precond_failed: false,
            },
            SolveMethod::DenseLu => {
                return Err(CircuitError::InvalidParameter {
                    what: "prepared systems support reduced (Dirichlet) solves only",
                })
            }
        };

        let elements = net.elements().to_vec();
        let clamp = collect_clamps(&elements, node_count)?;
        let mut reduced_index = vec![NO_SLOT; node_count];
        let mut free_nodes = Vec::new();
        for (i, c) in clamp.iter().enumerate() {
            if c.is_none() {
                reduced_index[i] = free_nodes.len();
                free_nodes.push(i);
            }
        }
        let m = free_nodes.len();

        let mut builder = SparseBuilder::new(m, m);
        for e in &elements {
            if let Element::Resistor { a, b, .. } = e {
                let (ia, ib) = (reduced_index[a.index()], reduced_index[b.index()]);
                if ia != NO_SLOT {
                    builder.reserve(ia, ia);
                }
                if ib != NO_SLOT {
                    builder.reserve(ib, ib);
                }
                if ia != NO_SLOT && ib != NO_SLOT {
                    builder.reserve(ia, ib);
                    builder.reserve(ib, ia);
                }
            }
        }
        let matrix = builder.build_pattern();
        let slot = |r: usize, c: usize| {
            if r != NO_SLOT && c != NO_SLOT {
                matrix.position(r, c).expect("slot reserved above")
            } else {
                NO_SLOT
            }
        };
        let mut stamps = Vec::new();
        for (idx, e) in elements.iter().enumerate() {
            if let Element::Resistor { a, b, .. } = e {
                let (ia, ib) = (reduced_index[a.index()], reduced_index[b.index()]);
                stamps.push((
                    idx,
                    [slot(ia, ia), slot(ib, ib), slot(ia, ib), slot(ib, ia)],
                ));
            }
        }

        Ok(Self {
            node_count,
            elements,
            clamp,
            clamps_dirty: false,
            reduced_index,
            free_nodes,
            m,
            matrix,
            stamps,
            values_dirty: true,
            precond_stale: false,
            rhs: vec![0.0; m],
            backend,
            factorization_reuses: 0,
            warm_start_iterations_saved: 0,
        })
    }

    /// Number of reduced unknowns.
    #[must_use]
    pub fn unknowns(&self) -> usize {
        self.m
    }

    /// Number of nodes in the prepared topology (ground included).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Cumulative count of solves that reused a cached factorization
    /// (dense Cholesky or the IC(0) preconditioner).
    #[must_use]
    pub fn factorization_reuses(&self) -> u64 {
        self.factorization_reuses
    }

    /// Cumulative CG iterations avoided by warm starts, versus this
    /// system's recorded cold-solve iteration count.
    #[must_use]
    pub fn warm_start_iterations_saved(&self) -> u64 {
        self.warm_start_iterations_saved
    }

    /// Updates a resistor's conductance in place. A no-op if the value is
    /// unchanged; otherwise the matrix values (and, on the dense path, the
    /// factorization) are refreshed on the next solve.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidParameter`] if `id` is not a resistor of this
    /// system or `g` is negative / non-finite.
    pub fn set_conductance(&mut self, id: ElementId, g: Siemens) -> Result<(), CircuitError> {
        if !g.0.is_finite() || g.0 < 0.0 {
            return Err(CircuitError::InvalidParameter {
                what: "conductance must be finite and non-negative",
            });
        }
        let idx = id.index();
        let Some(&Element::Resistor { a, b, g: old }) = self.elements.get(idx) else {
            return Err(CircuitError::InvalidParameter {
                what: "set_conductance targets a non-resistor element",
            });
        };
        if old.0 == g.0 {
            return Ok(());
        }
        self.elements[idx] = Element::Resistor { a, b, g };
        self.values_dirty = true;
        // Staleness heuristic for the cached IC(0) factor: flag a refactor
        // only when the diagonal moves by more than the threshold.
        if !self.precond_stale {
            if let Backend::Cg {
                precond: Some(_), ..
            } = self.backend
            {
                let dg = (g.0 - old.0).abs();
                for node in [a, b] {
                    let ri = self.reduced_index[node.index()];
                    if ri != NO_SLOT {
                        let d = self.matrix.get(ri, ri);
                        if d <= 0.0 || dg / d > PRECOND_STALE_THRESHOLD {
                            self.precond_stale = true;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Updates a current source's value in place — an RHS-only change that
    /// never invalidates cached factorizations.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidParameter`] if `id` is not a current source
    /// or `amps` is non-finite.
    pub fn set_current(&mut self, id: ElementId, amps: Amps) -> Result<(), CircuitError> {
        if !amps.0.is_finite() {
            return Err(CircuitError::InvalidParameter {
                what: "source current must be finite",
            });
        }
        let idx = id.index();
        let Some(&Element::CurrentSource { from, to, .. }) = self.elements.get(idx) else {
            return Err(CircuitError::InvalidParameter {
                what: "set_current targets a non-current-source element",
            });
        };
        self.elements[idx] = Element::CurrentSource { from, to, amps };
        Ok(())
    }

    /// Updates a clamp's voltage in place — an RHS-only change that never
    /// invalidates cached factorizations (the clamped node set is fixed at
    /// preparation).
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidParameter`] if `id` is not a clamp or `volts`
    /// is non-finite.
    pub fn set_clamp(&mut self, id: ElementId, volts: Volts) -> Result<(), CircuitError> {
        if !volts.0.is_finite() {
            return Err(CircuitError::InvalidParameter {
                what: "clamp voltage must be finite",
            });
        }
        let idx = id.index();
        let Some(&Element::Clamp { node, volts: old }) = self.elements.get(idx) else {
            return Err(CircuitError::InvalidParameter {
                what: "set_clamp targets a non-clamp element",
            });
        };
        if old.0 != volts.0 {
            self.elements[idx] = Element::Clamp { node, volts };
            self.clamps_dirty = true;
        }
        Ok(())
    }

    /// Total power dissipated in the resistive elements for a solution of
    /// this system (the prepared analogue of
    /// [`DcSolution::dissipated_power`], using the *current* restamped
    /// element values).
    #[must_use]
    pub fn dissipated_power(&self, sol: &DcSolution) -> Watts {
        let mut p = 0.0;
        for e in &self.elements {
            if let Element::Resistor { a, b, g } = e {
                let dv = sol.voltages()[a.index()] - sol.voltages()[b.index()];
                p += g.0 * dv * dv;
            }
        }
        Watts(p)
    }

    /// Solves the DC operating point with whatever state can be reused.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Netlist::solve_dc_stats`] for the reduced
    /// backends.
    pub fn solve(&mut self) -> Result<(DcSolution, SolveStats), CircuitError> {
        self.solve_report().map(|(sol, r)| (sol, r.stats))
    }

    /// Like [`PreparedSystem::solve`], additionally reporting what was
    /// reused.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PreparedSystem::solve`].
    pub fn solve_report(&mut self) -> Result<(DcSolution, PreparedSolveReport), CircuitError> {
        if self.clamps_dirty {
            self.clamp = collect_clamps(&self.elements, self.node_count)?;
            self.clamps_dirty = false;
        }
        let was_dirty = self.values_dirty;
        if was_dirty {
            self.restamp_values();
        }
        self.build_rhs();

        let mut voltages = vec![0.0; self.node_count];
        for (i, c) in self.clamp.iter().enumerate() {
            if let Some(v) = c {
                voltages[i] = *v;
            }
        }

        let mut report = PreparedSolveReport {
            stats: SolveStats {
                method: match self.backend {
                    Backend::Dense { .. } => "dense_cholesky",
                    Backend::Cg { .. } => "sparse_cg",
                },
                unknowns: self.m,
                iterations: 0,
                residual: 0.0,
            },
            factorization_reused: false,
            warm_started: false,
            iterations_saved: 0,
        };

        if self.m > 0 {
            let Self {
                m,
                matrix,
                rhs,
                free_nodes,
                backend,
                factorization_reuses,
                warm_start_iterations_saved,
                precond_stale,
                ..
            } = self;
            let m = *m;
            match backend {
                Backend::Dense { factor } => {
                    if was_dirty {
                        *factor = None;
                    }
                    let f = match factor {
                        Some(f) => {
                            *factorization_reuses += 1;
                            report.factorization_reused = true;
                            f
                        }
                        None => {
                            let mut a = DenseMatrix::zeros(m, m);
                            for (r, c, v) in matrix.iter() {
                                a[(r, c)] = v;
                            }
                            factor.insert(a.cholesky()?)
                        }
                    };
                    let x = f.solve(rhs)?;
                    for (k, &node) in free_nodes.iter().enumerate() {
                        voltages[node] = x[k];
                    }
                    report.stats.iterations = m;
                }
                Backend::Cg {
                    cg,
                    ws,
                    reference,
                    cold_iterations,
                    precond,
                    precond_failed,
                } => {
                    let mut refreshed = false;
                    if !*precond_failed && (precond.is_none() || *precond_stale) {
                        match IncompleteCholesky::factor(matrix) {
                            Ok(f) => {
                                *precond = Some(f);
                                *precond_stale = false;
                                refreshed = true;
                            }
                            Err(_) => {
                                *precond = None;
                                *precond_failed = true;
                            }
                        }
                    }
                    let x0 = reference.as_deref();
                    report.warm_started = x0.is_some();
                    let run = cg.solve_into(matrix, rhs, x0, precond.as_ref(), ws)?;
                    if precond.is_some() && !refreshed {
                        *factorization_reuses += 1;
                        report.factorization_reused = true;
                    }
                    if report.warm_started {
                        let saved = cold_iterations.map_or(0, |c| c.saturating_sub(run.iterations));
                        *warm_start_iterations_saved += saved as u64;
                        report.iterations_saved = saved;
                    }
                    if reference.is_none() {
                        *reference = Some(ws.solution().to_vec());
                        *cold_iterations = Some(run.iterations);
                    }
                    for (k, &node) in free_nodes.iter().enumerate() {
                        voltages[node] = ws.solution()[k];
                    }
                    report.stats.iterations = run.iterations;
                    report.stats.residual = run.residual;
                }
            }
        }

        let currents = branch_currents(&self.elements, self.node_count, &voltages);
        Ok((DcSolution::from_parts(voltages, currents), report))
    }

    /// Deterministic full value restamp in element order: repeated
    /// restamps of the same values always reproduce the same matrix bits.
    fn restamp_values(&mut self) {
        self.matrix.clear_values();
        let Self {
            matrix,
            stamps,
            elements,
            ..
        } = self;
        let vals = matrix.values_mut();
        for &(e, slots) in stamps.iter() {
            let Element::Resistor { g, .. } = elements[e] else {
                unreachable!("stamps reference resistors only");
            };
            let g = g.0;
            if slots[0] != NO_SLOT {
                vals[slots[0]] += g;
            }
            if slots[1] != NO_SLOT {
                vals[slots[1]] += g;
            }
            if slots[2] != NO_SLOT {
                vals[slots[2]] -= g;
            }
            if slots[3] != NO_SLOT {
                vals[slots[3]] -= g;
            }
        }
        self.values_dirty = false;
    }

    /// Rebuilds the right-hand side in the same two-pass order as a cold
    /// solve (current sources, then resistor boundary terms in element
    /// order), so dense-path results match cold solves bitwise.
    fn build_rhs(&mut self) {
        self.rhs.iter_mut().for_each(|v| *v = 0.0);
        for e in &self.elements {
            if let Element::CurrentSource { from, to, amps } = e {
                let rt = self.reduced_index[to.index()];
                if rt != NO_SLOT {
                    self.rhs[rt] += amps.0;
                }
                let rf = self.reduced_index[from.index()];
                if rf != NO_SLOT {
                    self.rhs[rf] -= amps.0;
                }
            }
        }
        for e in &self.elements {
            if let Element::Resistor { a, b, g } = e {
                let (ia, ib) = (self.reduced_index[a.index()], self.reduced_index[b.index()]);
                if ia != NO_SLOT {
                    if let Some(vb) = self.clamp[b.index()] {
                        self.rhs[ia] += g.0 * vb;
                    }
                }
                if ib != NO_SLOT {
                    if let Some(va) = self.clamp[a.index()] {
                        self.rhs[ib] += g.0 * va;
                    }
                }
            }
        }
    }
}

/// Internal hooks for the multi-RHS block path (see [`crate::multi_rhs`]).
/// Each mirrors one step of [`PreparedSystem::solve_report`] exactly so the
/// block path stays bit-identical to sequential prepared solves.
impl PreparedSystem {
    /// `true` when this system solves through the dense Cholesky backend —
    /// the only backend with a reusable factor for multi-RHS block solves.
    #[must_use]
    pub fn uses_dense_backend(&self) -> bool {
        matches!(self.backend, Backend::Dense { .. })
    }

    /// Re-derives the clamp map if a clamp value changed since the last
    /// solve (the clamped node *set* is fixed at preparation).
    pub(crate) fn refresh_clamps(&mut self) -> Result<(), CircuitError> {
        if self.clamps_dirty {
            self.clamp = collect_clamps(&self.elements, self.node_count)?;
            self.clamps_dirty = false;
        }
        Ok(())
    }

    /// Builds the RHS for the current element values into `col` and the
    /// clamp-seeded full voltage vector into `seed` (same order as
    /// [`PreparedSystem::solve_report`]).
    pub(crate) fn stage_rhs(
        &mut self,
        col: &mut Vec<f64>,
        seed: &mut Vec<f64>,
    ) -> Result<(), CircuitError> {
        self.refresh_clamps()?;
        self.build_rhs();
        col.clear();
        col.extend_from_slice(&self.rhs);
        seed.clear();
        seed.resize(self.node_count, 0.0);
        for (i, c) in self.clamp.iter().enumerate() {
            if let Some(v) = c {
                seed[i] = *v;
            }
        }
        Ok(())
    }

    /// Restamps values if dirty (dropping any stale factor, as the dense
    /// arm of `solve_report` does) and guarantees a Cholesky factor exists.
    /// Returns whether an existing factor was reused.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidParameter`] on the CG backend;
    /// [`CircuitError::SingularSystem`] if factorization fails.
    pub(crate) fn ensure_dense_factor(&mut self) -> Result<bool, CircuitError> {
        if self.values_dirty {
            self.restamp_values();
            if let Backend::Dense { factor } = &mut self.backend {
                *factor = None;
            }
        }
        let Self {
            m, matrix, backend, ..
        } = self;
        let Backend::Dense { factor } = backend else {
            return Err(CircuitError::InvalidParameter {
                what: "multi-RHS block solves require the dense Cholesky backend",
            });
        };
        if factor.is_some() {
            return Ok(true);
        }
        let mut a = DenseMatrix::zeros(*m, *m);
        for (r, c, v) in matrix.iter() {
            a[(r, c)] = v;
        }
        *factor = Some(a.cholesky()?);
        Ok(false)
    }

    /// The current dense factor, if the backend is dense and one is cached.
    pub(crate) fn dense_factor(&self) -> Option<&CholeskyFactor> {
        match &self.backend {
            Backend::Dense { factor } => factor.as_ref(),
            Backend::Cg { .. } => None,
        }
    }

    /// Bumps the factorization-reuse counter by `n` (the block path counts
    /// one reuse per solved column, matching `n` sequential solves).
    pub(crate) fn note_factor_reuses(&mut self, n: u64) {
        self.factorization_reuses += n;
    }

    /// Scatters a reduced solution into the free-node slots of `voltages`.
    pub(crate) fn scatter_free(&self, reduced: &[f64], voltages: &mut [f64]) {
        for (k, &node) in self.free_nodes.iter().enumerate() {
            voltages[node] = reduced[k];
        }
    }

    /// Completes a [`DcSolution`] from a full voltage vector using the
    /// *current* element values for branch currents.
    pub(crate) fn solution_from_voltages(&self, voltages: Vec<f64>) -> DcSolution {
        let currents = branch_currents(&self.elements, self.node_count, &voltages);
        DcSolution::from_parts(voltages, currents)
    }
}

impl Clone for PreparedSystem {
    /// Cloning a prepared system clones the cached pattern, values,
    /// factorizations and warm-start reference — batch workers clone a
    /// warmed session and immediately inherit its reuse state.
    fn clone(&self) -> Self {
        Self {
            node_count: self.node_count,
            elements: self.elements.clone(),
            clamp: self.clamp.clone(),
            clamps_dirty: self.clamps_dirty,
            reduced_index: self.reduced_index.clone(),
            free_nodes: self.free_nodes.clone(),
            m: self.m,
            matrix: self.matrix.clone(),
            stamps: self.stamps.clone(),
            values_dirty: self.values_dirty,
            precond_stale: self.precond_stale,
            rhs: self.rhs.clone(),
            backend: match &self.backend {
                Backend::Dense { factor } => Backend::Dense {
                    factor: factor.clone(),
                },
                Backend::Cg {
                    cg,
                    ws,
                    reference,
                    cold_iterations,
                    precond,
                    precond_failed,
                } => Backend::Cg {
                    cg: *cg,
                    ws: ws.clone(),
                    reference: reference.clone(),
                    cold_iterations: *cold_iterations,
                    precond: precond.clone(),
                    precond_failed: *precond_failed,
                },
            },
            factorization_reuses: self.factorization_reuses,
            warm_start_iterations_saved: self.warm_start_iterations_saved,
        }
    }
}

impl std::fmt::Debug for PreparedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedSystem")
            .field("node_count", &self.node_count)
            .field("unknowns", &self.m)
            .field(
                "backend",
                &match self.backend {
                    Backend::Dense { .. } => "dense_cholesky",
                    Backend::Cg { .. } => "sparse_cg",
                },
            )
            .field("factorization_reuses", &self.factorization_reuses)
            .field(
                "warm_start_iterations_saved",
                &self.warm_start_iterations_saved,
            )
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Ohms;

    /// A ladder with one clamp, one current source and a DAC-like source
    /// conductance structure — every `RowDrive` analogue in one netlist.
    fn ladder() -> (Netlist, Vec<ElementId>) {
        let mut net = Netlist::new();
        let nodes = net.nodes(5);
        let mut ids = Vec::new();
        ids.push(net.voltage_source(nodes[0], Volts(0.5)));
        for w in nodes.windows(2) {
            ids.push(net.resistor(w[0], w[1], Ohms(100.0)));
        }
        ids.push(net.resistor(nodes[4], Netlist::GROUND, Ohms(220.0)));
        ids.push(net.current_source(Netlist::GROUND, nodes[2], Amps(1e-3)));
        ids.push(net.conductance(nodes[3], Netlist::GROUND, Siemens(2e-3)));
        (net, ids)
    }

    #[test]
    fn prepared_dense_matches_cold_bitwise() {
        let (net, _) = ladder();
        let cold = net.solve_dc_with(SolveMethod::DenseCholesky).unwrap();
        let mut prep = PreparedSystem::with_method(&net, SolveMethod::DenseCholesky).unwrap();
        for _ in 0..3 {
            let (sol, _) = prep.solve_report().unwrap();
            assert_eq!(sol.voltages(), cold.voltages());
            for i in 0..net.element_count() {
                let id = net.element_id(i).unwrap();
                assert_eq!(sol.current(id).0, cold.current(id).0);
            }
        }
    }

    #[test]
    fn dense_factorization_reused_for_rhs_only_changes() {
        let (net, ids) = ladder();
        let mut prep = PreparedSystem::new(&net).unwrap();
        let (_, first) = prep.solve_report().unwrap();
        assert!(!first.factorization_reused);
        // Current and clamp changes are RHS-only.
        prep.set_current(ids[6], Amps(2e-3)).unwrap();
        prep.set_clamp(ids[0], Volts(0.25)).unwrap();
        let (sol, second) = prep.solve_report().unwrap();
        assert!(second.factorization_reused);
        assert_eq!(prep.factorization_reuses(), 1);
        // Against a cold netlist with the same values.
        let mut net2 = Netlist::new();
        let nodes = net2.nodes(5);
        net2.voltage_source(nodes[0], Volts(0.25));
        for w in nodes.windows(2) {
            net2.resistor(w[0], w[1], Ohms(100.0));
        }
        net2.resistor(nodes[4], Netlist::GROUND, Ohms(220.0));
        net2.current_source(Netlist::GROUND, nodes[2], Amps(2e-3));
        net2.conductance(nodes[3], Netlist::GROUND, Siemens(2e-3));
        let cold = net2.solve_dc_with(SolveMethod::DenseCholesky).unwrap();
        assert_eq!(sol.voltages(), cold.voltages());
    }

    #[test]
    fn conductance_change_refactors_and_agrees() {
        let (net, ids) = ladder();
        let mut prep = PreparedSystem::new(&net).unwrap();
        prep.solve_report().unwrap();
        prep.set_conductance(ids[7], Siemens(5e-3)).unwrap();
        let (sol, report) = prep.solve_report().unwrap();
        assert!(!report.factorization_reused);
        let mut net2 = Netlist::new();
        let nodes = net2.nodes(5);
        net2.voltage_source(nodes[0], Volts(0.5));
        for w in nodes.windows(2) {
            net2.resistor(w[0], w[1], Ohms(100.0));
        }
        net2.resistor(nodes[4], Netlist::GROUND, Ohms(220.0));
        net2.current_source(Netlist::GROUND, nodes[2], Amps(1e-3));
        net2.conductance(nodes[3], Netlist::GROUND, Siemens(5e-3));
        let cold = net2.solve_dc_with(SolveMethod::DenseCholesky).unwrap();
        assert_eq!(sol.voltages(), cold.voltages());
    }

    #[test]
    fn setter_kind_validation() {
        let (net, ids) = ladder();
        let mut prep = PreparedSystem::new(&net).unwrap();
        // ids[0] is the clamp, ids[1] a resistor, ids[6] the current source.
        assert!(prep.set_conductance(ids[0], Siemens(1.0)).is_err());
        assert!(prep.set_current(ids[1], Amps(1.0)).is_err());
        assert!(prep.set_clamp(ids[6], Volts(1.0)).is_err());
        assert!(prep.set_conductance(ids[1], Siemens(-1.0)).is_err());
        assert!(prep.set_conductance(ids[1], Siemens(f64::NAN)).is_err());
        assert!(prep.set_current(ids[6], Amps(f64::INFINITY)).is_err());
        assert!(prep.set_clamp(ids[0], Volts(f64::NAN)).is_err());
    }

    #[test]
    fn rejects_floating_sources_and_lu() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.resistor(a, Netlist::GROUND, Ohms(1e3));
        net.resistor(b, Netlist::GROUND, Ohms(1e3));
        net.floating_voltage_source(a, b, Volts(0.5));
        assert!(matches!(
            PreparedSystem::new(&net),
            Err(CircuitError::InvalidParameter { .. })
        ));
        let (good, _) = ladder();
        assert!(matches!(
            PreparedSystem::with_method(&good, SolveMethod::DenseLu),
            Err(CircuitError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn zero_conductance_slot_can_become_nonzero() {
        // A conductance that starts at exactly zero must still own matrix
        // slots so it can be driven later (a DAC row at level 0).
        let mut net = Netlist::new();
        let a = net.node("a");
        net.voltage_source(a, Volts(1.0));
        let b = net.node("b");
        net.resistor(a, b, Ohms(100.0));
        let gnd_leg = net.conductance(b, Netlist::GROUND, Siemens(0.0));
        net.resistor(b, Netlist::GROUND, Ohms(1e4));
        let mut prep = PreparedSystem::new(&net).unwrap();
        let (sol0, _) = prep.solve_report().unwrap();
        assert!((sol0.voltage(b).0 - 1e4 / (1e4 + 100.0)).abs() < 1e-12);
        prep.set_conductance(gnd_leg, Siemens(1e-2)).unwrap();
        let (sol1, _) = prep.solve_report().unwrap();
        // b now loaded by 100 Ω against (1e-2 + 1e-4) S to ground.
        let load = 1e-2 + 1e-4;
        let expect = (1.0 / 100.0) / (1.0 / 100.0 + load);
        assert!((sol1.voltage(b).0 - expect).abs() < 1e-9);
    }

    #[test]
    fn cg_path_warm_starts_and_reuses_preconditioner() {
        // Force CG at small scale with a tight tolerance.
        let (net, ids) = ladder();
        let cg = ConjugateGradient::new(1e-13);
        let mut prep = PreparedSystem::with_method(&net, SolveMethod::SparseCg(cg)).unwrap();
        let (_, first) = prep.solve_report().unwrap();
        assert!(!first.warm_started);
        prep.set_current(ids[6], Amps(1.1e-3)).unwrap();
        let (sol, second) = prep.solve_report().unwrap();
        assert!(second.warm_started);
        assert!(second.factorization_reused, "IC(0) factor should be kept");
        // IC(0) is exact on this tree-structured ladder, so the warm start
        // cannot beat an already-minimal cold count — but the accounting
        // must be consistent and the warm solve can never take longer.
        assert_eq!(
            prep.warm_start_iterations_saved(),
            second.iterations_saved as u64
        );
        assert!(second.stats.iterations <= first.stats.iterations);
        // Agreement with a cold CG solve of the same values.
        let mut net2 = Netlist::new();
        let nodes = net2.nodes(5);
        net2.voltage_source(nodes[0], Volts(0.5));
        for w in nodes.windows(2) {
            net2.resistor(w[0], w[1], Ohms(100.0));
        }
        net2.resistor(nodes[4], Netlist::GROUND, Ohms(220.0));
        net2.current_source(Netlist::GROUND, nodes[2], Amps(1.1e-3));
        net2.conductance(nodes[3], Netlist::GROUND, Siemens(2e-3));
        let cold = net2.solve_dc_with(SolveMethod::SparseCg(cg)).unwrap();
        for (u, v) in sol.voltages().iter().zip(cold.voltages()) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn large_conductance_change_refactors_preconditioner() {
        let (net, ids) = ladder();
        let cg = ConjugateGradient::new(1e-12);
        let mut prep = PreparedSystem::with_method(&net, SolveMethod::SparseCg(cg)).unwrap();
        prep.solve_report().unwrap();
        // 10× the DAC leg: far past the staleness threshold.
        prep.set_conductance(ids[7], Siemens(2e-2)).unwrap();
        let (sol, report) = prep.solve_report().unwrap();
        assert!(
            !report.factorization_reused,
            "stale IC(0) must be refactored"
        );
        let mut net2 = Netlist::new();
        let nodes = net2.nodes(5);
        net2.voltage_source(nodes[0], Volts(0.5));
        for w in nodes.windows(2) {
            net2.resistor(w[0], w[1], Ohms(100.0));
        }
        net2.resistor(nodes[4], Netlist::GROUND, Ohms(220.0));
        net2.current_source(Netlist::GROUND, nodes[2], Amps(1e-3));
        net2.conductance(nodes[3], Netlist::GROUND, Siemens(2e-2));
        let cold = net2.solve_dc_with(SolveMethod::SparseCg(cg)).unwrap();
        for (u, v) in sol.voltages().iter().zip(cold.voltages()) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn no_free_nodes_solves_trivially() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.voltage_source(a, Volts(0.5));
        net.resistor(a, Netlist::GROUND, Ohms(100.0));
        let mut prep = PreparedSystem::new(&net).unwrap();
        let (sol, report) = prep.solve_report().unwrap();
        assert_eq!(report.stats.unknowns, 0);
        assert!((sol.voltage(a).0 - 0.5).abs() < 1e-12);
        assert!((sol.current(net.element_id(0).unwrap()).0 - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn dissipated_power_uses_restamped_values() {
        let (net, ids) = ladder();
        let mut prep = PreparedSystem::new(&net).unwrap();
        prep.set_conductance(ids[7], Siemens(5e-3)).unwrap();
        let (sol, _) = prep.solve_report().unwrap();
        // Tellegen: dissipated power equals source power for the *current*
        // element values, which the stale original netlist cannot compute.
        let dissipated = prep.dissipated_power(&sol).0;
        let supplied = {
            // Rebuild the updated netlist to use DcSolution::source_power.
            let mut net2 = Netlist::new();
            let nodes = net2.nodes(5);
            net2.voltage_source(nodes[0], Volts(0.5));
            for w in nodes.windows(2) {
                net2.resistor(w[0], w[1], Ohms(100.0));
            }
            net2.resistor(nodes[4], Netlist::GROUND, Ohms(220.0));
            net2.current_source(Netlist::GROUND, nodes[2], Amps(1e-3));
            net2.conductance(nodes[3], Netlist::GROUND, Siemens(5e-3));
            let cold = net2.solve_dc().unwrap();
            cold.source_power(&net2).0
        };
        assert!(
            (dissipated - supplied).abs() < 1e-12,
            "{dissipated} vs {supplied}"
        );
    }
}
