//! Strongly typed electrical and physical quantities.
//!
//! Every quantity is a transparent `f64` newtype in SI units (volts, amperes,
//! ohms, …) except where the name says otherwise ([`Micrometers`],
//! [`Nanometers`], [`Celsius`]). The types implement the arithmetic that is
//! physically meaningful — `Volts / Ohms = Amps`, `Volts * Amps = Watts`,
//! `Watts * Seconds = Joules`, and so on — so that device models in the other
//! `spinamm` crates cannot silently mix up, say, a conductance and a
//! resistance.
//!
//! The inner value is public (`Volts(1.5).0`): these are thin labels, not
//! abstraction boundaries.
//!
//! # Example
//!
//! ```
//! use spinamm_circuit::units::*;
//!
//! let v = Volts(0.030);          // the paper's ΔV ≈ 30 mV crossbar bias
//! let g = Siemens(1.0 / 8.0e3);  // a mid-range Ag-Si memristor
//! let i: Amps = v * g;
//! let p: Watts = v * i;
//! assert!((i.0 - 3.75e-6).abs() < 1e-12);
//! assert!((p.0 - 1.125e-7).abs() < 1e-13);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;
/// Elementary charge, C.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;
/// Bohr magneton, J/T.
pub const BOHR_MAGNETON: f64 = 9.274_010_078e-24;
/// Gyromagnetic ratio of the electron, rad/(s·T).
pub const GYROMAGNETIC_RATIO: f64 = 1.760_859_63e11;
/// Vacuum permeability, T·m/A.
pub const MU_0: f64 = 1.256_637_062e-6;

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// `true` if the inner value is finite (not NaN or infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// The larger of two quantities (NaN-propagating like `f64::max`).
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// The smaller of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Dimensionless ratio of two like quantities.
        impl Div<$name> for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|x| x.0).sum())
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> Self {
                Self(v)
            }
        }
    };
}

unit!(
    /// Electric potential, volts.
    Volts,
    "V"
);
unit!(
    /// Electric current, amperes.
    Amps,
    "A"
);
unit!(
    /// Resistance, ohms.
    Ohms,
    "Ω"
);
unit!(
    /// Conductance, siemens.
    Siemens,
    "S"
);
unit!(
    /// Power, watts.
    Watts,
    "W"
);
unit!(
    /// Energy, joules.
    Joules,
    "J"
);
unit!(
    /// Time, seconds.
    Seconds,
    "s"
);
unit!(
    /// Capacitance, farads.
    Farads,
    "F"
);
unit!(
    /// Frequency, hertz.
    Hertz,
    "Hz"
);
unit!(
    /// Length in micrometres (µm) — the natural scale of crossbar wiring.
    Micrometers,
    "µm"
);
unit!(
    /// Length in nanometres (nm) — the natural scale of the spin devices.
    Nanometers,
    "nm"
);
unit!(
    /// Absolute temperature, kelvin.
    Kelvin,
    "K"
);
unit!(
    /// Temperature in degrees Celsius.
    Celsius,
    "°C"
);

// ---- Physically meaningful cross-type arithmetic -------------------------

/// Ohm's law: `V = I · R`.
impl Mul<Ohms> for Amps {
    type Output = Volts;
    fn mul(self, rhs: Ohms) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

/// Ohm's law: `V = R · I`.
impl Mul<Amps> for Ohms {
    type Output = Volts;
    fn mul(self, rhs: Amps) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

/// Ohm's law: `I = V / R`.
impl Div<Ohms> for Volts {
    type Output = Amps;
    fn div(self, rhs: Ohms) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

/// Ohm's law: `I = V · G`.
impl Mul<Siemens> for Volts {
    type Output = Amps;
    fn mul(self, rhs: Siemens) -> Amps {
        Amps(self.0 * rhs.0)
    }
}

/// Ohm's law: `I = G · V`.
impl Mul<Volts> for Siemens {
    type Output = Amps;
    fn mul(self, rhs: Volts) -> Amps {
        Amps(self.0 * rhs.0)
    }
}

/// `R = V / I`.
impl Div<Amps> for Volts {
    type Output = Ohms;
    fn div(self, rhs: Amps) -> Ohms {
        Ohms(self.0 / rhs.0)
    }
}

/// Electrical power: `P = V · I`.
impl Mul<Amps> for Volts {
    type Output = Watts;
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// Electrical power: `P = I · V`.
impl Mul<Volts> for Amps {
    type Output = Watts;
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// Energy: `E = P · t`.
impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// Energy: `E = t · P`.
impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// Average power: `P = E / t`.
impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

/// Energy per operation at a given rate: `E = P / f`.
impl Div<Hertz> for Watts {
    type Output = Joules;
    fn div(self, rhs: Hertz) -> Joules {
        Joules(self.0 / rhs.0)
    }
}

/// Charge-less shortcut used in switched-capacitor energy: `E = C · V²` needs
/// an intermediate `C · V`; we expose `Q = C · V` as plain `f64` coulombs is
/// not worth a type, so instead provide the complete `switching_energy`.
#[must_use]
pub fn switched_capacitor_energy(c: Farads, v: Volts) -> Joules {
    Joules(c.0 * v.0 * v.0)
}

impl Ohms {
    /// The conductance `G = 1/R`.
    ///
    /// Returns an infinite conductance for `R = 0`; callers constructing
    /// netlists should validate against that.
    #[must_use]
    pub fn to_siemens(self) -> Siemens {
        Siemens(1.0 / self.0)
    }
}

impl Siemens {
    /// The resistance `R = 1/G`.
    #[must_use]
    pub fn to_ohms(self) -> Ohms {
        Ohms(1.0 / self.0)
    }

    /// Series combination of two conductances: `G₁G₂/(G₁+G₂)`.
    ///
    /// This is the expression at the heart of the paper's DTCS-DAC
    /// non-linearity analysis (Fig. 8b): the DAC conductance `G_T` in series
    /// with the total crossbar-row conductance `G_TS`.
    #[must_use]
    pub fn series(self, other: Siemens) -> Siemens {
        let denom = self.0 + other.0;
        if denom == 0.0 {
            Siemens(0.0)
        } else {
            Siemens(self.0 * other.0 / denom)
        }
    }

    /// Parallel combination (conductances add).
    #[must_use]
    pub fn parallel(self, other: Siemens) -> Siemens {
        Siemens(self.0 + other.0)
    }
}

impl Celsius {
    /// Convert to absolute temperature.
    #[must_use]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin(self.0 + 273.15)
    }
}

impl Kelvin {
    /// Room temperature (300 K), the paper's operating point.
    pub const ROOM: Kelvin = Kelvin(300.0);

    /// Thermal energy `kT` at this temperature.
    #[must_use]
    pub fn thermal_energy(self) -> Joules {
        Joules(BOLTZMANN * self.0)
    }
}

impl Micrometers {
    /// Convert to metres.
    #[must_use]
    pub fn to_meters(self) -> f64 {
        self.0 * 1e-6
    }
}

impl Nanometers {
    /// Convert to metres.
    #[must_use]
    pub fn to_meters(self) -> f64 {
        self.0 * 1e-9
    }

    /// Convert to micrometres.
    #[must_use]
    pub fn to_micrometers(self) -> Micrometers {
        Micrometers(self.0 * 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_consistency() {
        let v = Volts(2.0);
        let r = Ohms(4.0);
        let i = v / r;
        assert_eq!(i, Amps(0.5));
        assert_eq!(i * r, v);
        assert_eq!(r * i, v);
        assert_eq!(v / i, r);
    }

    #[test]
    fn conductance_form() {
        let g = Ohms(1e3).to_siemens();
        assert!((g.0 - 1e-3).abs() < 1e-15);
        let i = Volts(0.03) * g;
        assert!((i.0 - 30e-6).abs() < 1e-12);
        assert_eq!(g.to_ohms(), Ohms(1e3));
    }

    #[test]
    fn series_parallel() {
        let a = Siemens(1.0 / 200.0);
        let b = Siemens(1.0 / 300.0);
        // Series of 200 Ω and 300 Ω is 500 Ω.
        assert!((a.series(b).to_ohms().0 - 500.0).abs() < 1e-9);
        // Parallel of 200 Ω and 300 Ω is 120 Ω.
        assert!((a.parallel(b).to_ohms().0 - 120.0).abs() < 1e-9);
    }

    #[test]
    fn series_with_zero_is_zero() {
        let a = Siemens(1e-3);
        assert_eq!(a.series(Siemens::ZERO), Siemens::ZERO);
        assert_eq!(Siemens::ZERO.series(Siemens::ZERO), Siemens::ZERO);
    }

    #[test]
    fn power_and_energy() {
        let p = Volts(1.0) * Amps(65e-6);
        assert!((p.0 - 65e-6).abs() < 1e-18);
        let e = p * Seconds(10e-9);
        assert!((e.0 - 65e-14).abs() < 1e-24);
        assert!((e / Seconds(10e-9) - p).0.abs() < 1e-18);
        // Energy per op at 100 MHz.
        let per_op = p / Hertz(100e6);
        assert!((per_op.0 - 6.5e-13).abs() < 1e-24);
    }

    #[test]
    fn switched_cap_energy() {
        let e = switched_capacitor_energy(Farads(1e-15), Volts(1.0));
        assert!((e.0 - 1e-15).abs() < 1e-27);
    }

    #[test]
    fn temperature_conversions() {
        assert!((Celsius(26.85).to_kelvin().0 - 300.0).abs() < 1e-9);
        let kt = Kelvin::ROOM.thermal_energy();
        assert!((kt.0 - 4.141_947e-21).abs() < 1e-24);
    }

    #[test]
    fn length_conversions() {
        assert!((Nanometers(60.0).to_meters() - 60e-9).abs() < 1e-20);
        assert!((Nanometers(1500.0).to_micrometers().0 - 1.5).abs() < 1e-12);
        assert!((Micrometers(2.0).to_meters() - 2e-6).abs() < 1e-18);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let mut v = Volts(1.0);
        v += Volts(0.5);
        v -= Volts(0.25);
        assert_eq!(v, Volts(1.25));
        assert_eq!(-v, Volts(-1.25));
        assert_eq!(v * 2.0, Volts(2.5));
        assert_eq!(2.0 * v, Volts(2.5));
        assert_eq!(v / 2.0, Volts(0.625));
        assert!(Volts(1.0) < Volts(2.0));
        assert_eq!(Volts(3.0) / Volts(1.5), 2.0);
        assert_eq!(Volts(-2.0).abs(), Volts(2.0));
        assert_eq!(Volts(1.0).max(Volts(2.0)), Volts(2.0));
        assert_eq!(Volts(1.0).min(Volts(2.0)), Volts(1.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Amps = (1..=4).map(|k| Amps(f64::from(k) * 1e-6)).sum();
        assert!((total.0 - 10e-6).abs() < 1e-15);
    }

    #[test]
    fn display_includes_suffix() {
        assert_eq!(Volts(1.5).to_string(), "1.5 V");
        assert_eq!(Ohms(200.0).to_string(), "200 Ω");
        assert_eq!(Micrometers(3.0).to_string(), "3 µm");
    }

    #[test]
    fn finiteness_check() {
        assert!(Volts(1.0).is_finite());
        assert!(!Volts(f64::NAN).is_finite());
        assert!(!Volts(f64::INFINITY).is_finite());
    }
}
