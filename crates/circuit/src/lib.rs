//! Linear circuit simulation substrate for the `spinamm` workspace.
//!
//! The DAC 2013 paper this workspace reproduces ("Ultra Low Power Associative
//! Computing with Spin Neurons and Resistive Crossbar Memory", Sharad, Fan and
//! Roy) evaluates its resistive-crossbar designs with SPICE. This crate is the
//! SPICE substitute: a modified-nodal-analysis (MNA) solver for linear DC
//! networks of resistors, independent current sources and independent voltage
//! sources, together with the dense and sparse linear algebra it needs.
//!
//! The crate is deliberately scoped to what the crossbar study requires:
//!
//! * [`units`] — strongly typed electrical quantities ([`Volts`], [`Amps`],
//!   [`Ohms`], [`Siemens`], …) so that device models in the other crates
//!   cannot confuse, say, a conductance with a resistance.
//! * [`dense`] — a small dense matrix type with LU (partial pivoting) and
//!   Cholesky factorizations, used for full MNA systems.
//! * [`sparse`] — a CSR sparse matrix with a Jacobi-preconditioned conjugate
//!   gradient solver, used for the large (10⁴-node) parasitic crossbar
//!   networks where the reduced conductance matrix is symmetric positive
//!   definite.
//! * [`netlist`] — netlist construction: nodes, resistors, current sources
//!   and node-to-ground voltage sources (DC supplies / clamps).
//! * [`solve`] — DC operating-point solution: node voltages and source branch
//!   currents, via either dense MNA/LU or Dirichlet-eliminated CG.
//! * [`transient`] — backward-Euler linear transient analysis for RC
//!   settling studies (the crossbar's 0.4 fF/µm wire loading).
//!
//! # Example
//!
//! A resistive divider: 1 V supply across two 1 kΩ resistors.
//!
//! ```
//! use spinamm_circuit::prelude::*;
//!
//! # fn main() -> Result<(), CircuitError> {
//! let mut net = Netlist::new();
//! let top = net.node("top");
//! let mid = net.node("mid");
//! net.voltage_source(top, Volts(1.0));
//! net.resistor(top, mid, Ohms(1e3));
//! net.resistor(mid, Netlist::GROUND, Ohms(1e3));
//!
//! let sol = net.solve_dc()?;
//! assert!((sol.voltage(mid).0 - 0.5).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod dense;
pub mod multi_rhs;
pub mod netlist;
pub mod prepared;
pub mod solve;
pub mod sparse;
pub mod transient;
pub mod units;

pub use dense::DenseMatrix;
pub use multi_rhs::{MultiRhsReport, RhsQuery, RhsUpdate};
pub use netlist::{ElementId, Netlist, NodeId};
pub use prepared::{PreparedSolveReport, PreparedSystem};
pub use solve::{DcSolution, SolveMethod, SolveStats};
pub use sparse::{
    CgRun, CgSolution, CgWorkspace, ConjugateGradient, CsrMatrix, IncompleteCholesky, SparseBuilder,
};
pub use transient::{TransientAnalysis, TransientResult};
pub use units::{
    Amps, Celsius, Farads, Hertz, Joules, Kelvin, Micrometers, Nanometers, Ohms, Seconds, Siemens,
    Volts, Watts,
};

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The system matrix is singular (e.g. a floating node with no DC path to
    /// ground), reported with the pivot index at which elimination failed.
    SingularSystem {
        /// Row/column of the zero (or numerically negligible) pivot.
        pivot: usize,
    },
    /// Matrix/vector dimensions do not agree.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// A [`NodeId`] did not come from the netlist being operated on.
    UnknownNode {
        /// Index of the offending node.
        node: usize,
    },
    /// An iterative solver did not reach the requested tolerance.
    NotConverged {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Relative residual when iteration stopped.
        residual: f64,
    },
    /// A device parameter is outside its physical domain (negative
    /// resistance, non-finite source value, …).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// Two voltage sources (or clamps) drive the same node with different
    /// values.
    ConflictingClamp {
        /// Index of the doubly-clamped node.
        node: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::SingularSystem { pivot } => {
                write!(f, "singular system matrix at pivot {pivot} (floating node?)")
            }
            CircuitError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            CircuitError::UnknownNode { node } => {
                write!(f, "node {node} does not belong to this netlist")
            }
            CircuitError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver stopped after {iterations} iterations at relative residual {residual:.3e}"
            ),
            CircuitError::InvalidParameter { what } => {
                write!(f, "invalid parameter: {what}")
            }
            CircuitError::ConflictingClamp { node } => {
                write!(f, "node {node} is clamped to two different voltages")
            }
        }
    }
}

impl Error for CircuitError {}

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::netlist::{Netlist, NodeId};
    pub use crate::solve::{DcSolution, SolveMethod, SolveStats};
    pub use crate::units::*;
    pub use crate::CircuitError;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            CircuitError::SingularSystem { pivot: 3 },
            CircuitError::DimensionMismatch {
                expected: 4,
                found: 5,
            },
            CircuitError::UnknownNode { node: 9 },
            CircuitError::NotConverged {
                iterations: 100,
                residual: 1e-3,
            },
            CircuitError::InvalidParameter {
                what: "negative resistance",
            },
            CircuitError::ConflictingClamp { node: 2 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
