//! Netlist construction for linear DC networks.
//!
//! A [`Netlist`] is a bag of nodes plus three element kinds, which is all the
//! crossbar study needs:
//!
//! * **resistors** (stored as conductances) between any two nodes,
//! * **independent current sources** between any two nodes,
//! * **independent voltage sources**, either *clamps* from a node to ground
//!   (DC supplies such as the paper's `V` and `V + ΔV` rails, and the
//!   spin-neuron input nodes that are "effectively clamped at a DC supply
//!   V"), or *floating* sources between two arbitrary nodes.
//!
//! Node `0` is always ground ([`Netlist::GROUND`]); every solve references
//! voltages to it.

use crate::units::{Amps, Farads, Ohms, Siemens, Volts};
use crate::CircuitError;

/// Handle to a circuit node. Obtain via [`Netlist::node`]; ground is
/// [`Netlist::GROUND`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index of this node inside its netlist (ground is `0`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// `true` if this is the ground node.
    #[must_use]
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Handle to a netlist element, returned by the insertion methods and used to
/// query branch currents from a [`crate::solve::DcSolution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

impl ElementId {
    /// Raw index of this element inside its netlist.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One netlist element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Element {
    /// Conductance `g` between nodes `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Conductance value.
        g: Siemens,
    },
    /// Independent current source driving `amps` from node `from` *into*
    /// node `to` (conventional current).
    CurrentSource {
        /// Node the current is drawn from.
        from: NodeId,
        /// Node the current is injected into.
        to: NodeId,
        /// Source magnitude.
        amps: Amps,
    },
    /// Voltage source from `node` to ground (a DC rail / clamp).
    Clamp {
        /// Clamped node.
        node: NodeId,
        /// Potential of `node` relative to ground.
        volts: Volts,
    },
    /// Floating voltage source: `v(plus) − v(minus) = volts`.
    FloatingSource {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Source magnitude.
        volts: Volts,
    },
    /// Capacitor between two nodes. Ignored by DC solves (open circuit);
    /// integrated by [`crate::transient`].
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance value.
        farads: Farads,
    },
}

/// A linear DC netlist.
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// `names[i]` is the label of node `i`; `names[0] == "gnd"`.
    names: Vec<String>,
    elements: Vec<Element>,
    floating_sources: usize,
}

impl Netlist {
    /// The ground node, present in every netlist.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty netlist containing only the ground node.
    #[must_use]
    pub fn new() -> Self {
        Self {
            names: vec!["gnd".to_string()],
            elements: Vec::new(),
            floating_sources: 0,
        }
    }

    /// Adds a named node and returns its handle.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        self.names.push(name.into());
        NodeId(self.names.len() - 1)
    }

    /// Adds `count` anonymous nodes and returns their handles in order.
    pub fn nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|k| self.node(format!("n{k}"))).collect()
    }

    /// Total number of nodes, including ground.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of elements.
    #[must_use]
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this netlist.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.names[node.0]
    }

    /// The elements in insertion order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Handle to the element at `index` in insertion order, or `None` if out
    /// of range. Useful when iterating [`Netlist::elements`] with positions.
    #[must_use]
    pub fn element_id(&self, index: usize) -> Option<ElementId> {
        (index < self.elements.len()).then_some(ElementId(index))
    }

    /// `true` if any floating (non-ground-referenced) voltage source exists;
    /// such netlists require the full-MNA dense solve path.
    #[must_use]
    pub fn has_floating_sources(&self) -> bool {
        self.floating_sources > 0
    }

    fn check_node(&self, node: NodeId) -> Result<(), CircuitError> {
        if node.0 < self.names.len() {
            Ok(())
        } else {
            Err(CircuitError::UnknownNode { node: node.0 })
        }
    }

    /// Adds a resistor given its resistance.
    ///
    /// Zero-ohm resistors are rejected — model an ideal connection by reusing
    /// one node instead.
    ///
    /// # Panics
    ///
    /// Panics if either node is foreign to this netlist, or if the value is
    /// not a finite positive resistance. (Construction-time misuse is a
    /// programming error, not a recoverable condition.)
    pub fn resistor(&mut self, a: NodeId, b: NodeId, r: Ohms) -> ElementId {
        assert!(
            r.0.is_finite() && r.0 > 0.0,
            "resistance must be finite and positive, got {r}"
        );
        self.conductance(a, b, r.to_siemens())
    }

    /// Adds a resistor given its conductance. A zero conductance is accepted
    /// (it stamps nothing and models an absent device).
    ///
    /// # Panics
    ///
    /// Panics if either node is foreign to this netlist, or if the value is
    /// not finite and non-negative.
    pub fn conductance(&mut self, a: NodeId, b: NodeId, g: Siemens) -> ElementId {
        self.check_node(a).expect("node a not in this netlist");
        self.check_node(b).expect("node b not in this netlist");
        assert!(
            g.0.is_finite() && g.0 >= 0.0,
            "conductance must be finite and non-negative, got {g}"
        );
        self.elements.push(Element::Resistor { a, b, g });
        ElementId(self.elements.len() - 1)
    }

    /// Adds an independent current source driving `amps` from `from` into
    /// `to`.
    ///
    /// # Panics
    ///
    /// Panics if either node is foreign or the value is non-finite.
    pub fn current_source(&mut self, from: NodeId, to: NodeId, amps: Amps) -> ElementId {
        self.check_node(from)
            .expect("node `from` not in this netlist");
        self.check_node(to).expect("node `to` not in this netlist");
        assert!(amps.0.is_finite(), "source current must be finite");
        self.elements
            .push(Element::CurrentSource { from, to, amps });
        ElementId(self.elements.len() - 1)
    }

    /// Adds a DC voltage source (clamp) from `node` to ground.
    ///
    /// # Panics
    ///
    /// Panics if the node is foreign, is ground itself, or the value is
    /// non-finite. Clamping the same node twice to *different* values is
    /// detected at solve time ([`CircuitError::ConflictingClamp`]).
    pub fn voltage_source(&mut self, node: NodeId, volts: Volts) -> ElementId {
        self.check_node(node).expect("node not in this netlist");
        assert!(!node.is_ground(), "cannot clamp the ground node");
        assert!(volts.0.is_finite(), "source voltage must be finite");
        self.elements.push(Element::Clamp { node, volts });
        ElementId(self.elements.len() - 1)
    }

    /// Adds a floating voltage source enforcing `v(plus) − v(minus) = volts`.
    ///
    /// Netlists containing floating sources are solved by full MNA (dense
    /// LU); prefer [`Netlist::voltage_source`] clamps where the source is
    /// ground-referenced, which keeps the fast symmetric solve path
    /// available.
    ///
    /// # Panics
    ///
    /// Panics if either node is foreign or the value is non-finite.
    pub fn floating_voltage_source(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        volts: Volts,
    ) -> ElementId {
        self.check_node(plus)
            .expect("node `plus` not in this netlist");
        self.check_node(minus)
            .expect("node `minus` not in this netlist");
        assert!(volts.0.is_finite(), "source voltage must be finite");
        self.elements
            .push(Element::FloatingSource { plus, minus, volts });
        self.floating_sources += 1;
        ElementId(self.elements.len() - 1)
    }

    /// Adds a capacitor between two nodes. DC solves treat it as an open
    /// circuit; [`crate::transient`] integrates it.
    ///
    /// # Panics
    ///
    /// Panics if either node is foreign or the value is not finite and
    /// positive.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: Farads) -> ElementId {
        self.check_node(a).expect("node a not in this netlist");
        self.check_node(b).expect("node b not in this netlist");
        assert!(
            farads.0.is_finite() && farads.0 > 0.0,
            "capacitance must be finite and positive, got {farads}"
        );
        self.elements.push(Element::Capacitor { a, b, farads });
        ElementId(self.elements.len() - 1)
    }

    /// `true` if the netlist contains any capacitor.
    #[must_use]
    pub fn has_capacitors(&self) -> bool {
        self.elements
            .iter()
            .any(|e| matches!(e, Element::Capacitor { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_always_exists() {
        let net = Netlist::new();
        assert_eq!(net.node_count(), 1);
        assert!(Netlist::GROUND.is_ground());
        assert_eq!(net.node_name(Netlist::GROUND), "gnd");
    }

    #[test]
    fn nodes_are_sequential() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert!(!a.is_ground());
        assert_eq!(net.node_name(a), "a");
        let batch = net.nodes(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[2].index(), 5);
        assert_eq!(net.node_count(), 6);
    }

    #[test]
    fn elements_record_in_order() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let r = net.resistor(a, Netlist::GROUND, Ohms(100.0));
        let s = net.current_source(Netlist::GROUND, a, Amps(1e-6));
        let v = net.voltage_source(a, Volts(1.0));
        assert_eq!(r.index(), 0);
        assert_eq!(s.index(), 1);
        assert_eq!(v.index(), 2);
        assert_eq!(net.element_count(), 3);
        assert!(matches!(
            net.elements()[0],
            Element::Resistor { g, .. } if (g.0 - 0.01).abs() < 1e-15
        ));
    }

    #[test]
    fn floating_source_flag() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        assert!(!net.has_floating_sources());
        net.floating_voltage_source(a, b, Volts(0.5));
        assert!(net.has_floating_sources());
    }

    #[test]
    #[should_panic(expected = "resistance must be finite and positive")]
    fn rejects_zero_resistance() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.resistor(a, Netlist::GROUND, Ohms(0.0));
    }

    #[test]
    #[should_panic(expected = "conductance must be finite and non-negative")]
    fn rejects_negative_conductance() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.conductance(a, Netlist::GROUND, Siemens(-1.0));
    }

    #[test]
    #[should_panic(expected = "cannot clamp the ground node")]
    fn rejects_clamping_ground() {
        let mut net = Netlist::new();
        net.voltage_source(Netlist::GROUND, Volts(1.0));
    }

    #[test]
    #[should_panic(expected = "not in this netlist")]
    fn rejects_foreign_node() {
        let mut other = Netlist::new();
        let foreign = other.node("x");
        let _ = foreign;
        let mut net = Netlist::new();
        // `foreign` has index 1 but `net` has no node 1 yet... create none.
        net.resistor(NodeId(5), Netlist::GROUND, Ohms(1.0));
    }

    #[test]
    fn zero_conductance_is_allowed() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.conductance(a, Netlist::GROUND, Siemens(0.0));
        assert_eq!(net.element_count(), 1);
    }
}
