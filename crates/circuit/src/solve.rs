//! DC operating-point solution of a [`Netlist`].
//!
//! Two solution paths are provided:
//!
//! * **Reduced (Dirichlet) path** — when every voltage source is a
//!   ground-referenced clamp, the clamped nodes are eliminated as boundary
//!   conditions and the remaining conductance matrix is symmetric positive
//!   definite. Small systems go through dense Cholesky, large ones through
//!   sparse conjugate gradient. This is the fast path used for parasitic
//!   crossbar networks.
//! * **Full MNA path** — general netlists (including floating voltage
//!   sources) build the classical asymmetric MNA matrix with branch-current
//!   unknowns and solve it by dense LU.
//!
//! Both paths produce the same [`DcSolution`], and the test suite checks them
//! against each other.

use crate::dense::DenseMatrix;
use crate::netlist::{Element, ElementId, Netlist, NodeId};
use crate::sparse::{ConjugateGradient, SparseBuilder};
use crate::units::{Amps, Volts, Watts};
use crate::CircuitError;

/// Which algorithm [`Netlist::solve_dc_with`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SolveMethod {
    /// Choose automatically: full MNA when floating sources are present,
    /// otherwise dense Cholesky below [`AUTO_DENSE_LIMIT`] unknowns and
    /// sparse CG above it.
    #[default]
    Auto,
    /// Full modified nodal analysis with dense LU.
    DenseLu,
    /// Dirichlet-reduced system with dense Cholesky. Fails on floating
    /// sources.
    DenseCholesky,
    /// Dirichlet-reduced system with Jacobi-preconditioned CG. Fails on
    /// floating sources.
    SparseCg(ConjugateGradient),
}

/// Unknown-count threshold at which [`SolveMethod::Auto`] switches from dense
/// Cholesky to sparse CG.
pub const AUTO_DENSE_LIMIT: usize = 400;

/// What a DC solve actually did, for observability layers above this crate.
///
/// Direct methods report the factored dimension as `iterations` (a proxy for
/// settling work) with zero residual; the CG path reports its true iteration
/// count and final relative residual.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Which backend ran, after `Auto` resolution: `"dense_lu"`,
    /// `"dense_cholesky"` or `"sparse_cg"`.
    pub method: &'static str,
    /// Number of unknowns in the solved system.
    pub unknowns: usize,
    /// Iterations taken (CG), or the system dimension (direct backends).
    pub iterations: usize,
    /// Final relative residual (CG), 0.0 for direct backends.
    pub residual: f64,
}

/// DC operating point of a netlist: all node voltages plus the branch current
/// of every element.
#[derive(Debug, Clone)]
pub struct DcSolution {
    voltages: Vec<f64>,
    /// Branch current of element `i` (sign conventions documented on
    /// [`DcSolution::current`]).
    currents: Vec<f64>,
}

impl DcSolution {
    /// Assembles a solution from already-computed node voltages and branch
    /// currents (the prepared-system fast path).
    pub(crate) fn from_parts(voltages: Vec<f64>, currents: Vec<f64>) -> Self {
        Self { voltages, currents }
    }

    /// Voltage of `node` relative to ground.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the solved netlist.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> Volts {
        Volts(self.voltages[node.index()])
    }

    /// Voltage difference `v(a) − v(b)`.
    ///
    /// # Panics
    ///
    /// Panics if either node does not belong to the solved netlist.
    #[must_use]
    pub fn voltage_between(&self, a: NodeId, b: NodeId) -> Volts {
        Volts(self.voltages[a.index()] - self.voltages[b.index()])
    }

    /// Branch current of an element.
    ///
    /// Sign conventions:
    /// * `Resistor { a, b, .. }` — current flowing from `a` to `b`.
    /// * `CurrentSource { .. }` — the source value itself.
    /// * `Clamp { node, .. }` — current delivered *by the source into the
    ///   node* (positive when the rail sources current into the network).
    /// * `FloatingSource { plus, .. }` — current delivered out of the `plus`
    ///   terminal into the network.
    ///
    /// # Panics
    ///
    /// Panics if the element does not belong to the solved netlist.
    #[must_use]
    pub fn current(&self, element: ElementId) -> Amps {
        Amps(self.currents[element.index()])
    }

    /// All node voltages, indexed by [`NodeId::index`]. Entry 0 is ground.
    #[must_use]
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Total power dissipated in the resistive elements of `net`.
    ///
    /// By Tellegen's theorem this equals the net power delivered by all
    /// sources, which the tests verify.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not the netlist this solution came from (detected
    /// only through index mismatches).
    #[must_use]
    pub fn dissipated_power(&self, net: &Netlist) -> Watts {
        let mut p = 0.0;
        for e in net.elements() {
            if let Element::Resistor { a, b, g } = e {
                let dv = self.voltages[a.index()] - self.voltages[b.index()];
                p += g.0 * dv * dv;
            }
        }
        Watts(p)
    }

    /// Total power delivered by sources (current sources, clamps, floating
    /// sources) into the network.
    #[must_use]
    pub fn source_power(&self, net: &Netlist) -> Watts {
        let mut p = 0.0;
        for (idx, e) in net.elements().iter().enumerate() {
            match e {
                Element::Resistor { .. } => {}
                Element::CurrentSource { from, to, amps } => {
                    // Power delivered = I · (v_to − v_from) with current
                    // pushed from `from` to `to` inside the source.
                    p += amps.0 * (self.voltages[to.index()] - self.voltages[from.index()]);
                }
                Element::Clamp { node, .. } => {
                    p += self.currents[idx] * self.voltages[node.index()];
                }
                Element::FloatingSource { plus, minus, .. } => {
                    p += self.currents[idx]
                        * (self.voltages[plus.index()] - self.voltages[minus.index()]);
                }
                Element::Capacitor { .. } => {}
            }
        }
        Watts(p)
    }
}

impl Netlist {
    /// Solves the DC operating point with [`SolveMethod::Auto`].
    ///
    /// # Errors
    ///
    /// See [`Netlist::solve_dc_with`].
    pub fn solve_dc(&self) -> Result<DcSolution, CircuitError> {
        self.solve_dc_with(SolveMethod::Auto)
    }

    /// Solves the DC operating point with an explicit method.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::SingularSystem`] for floating nodes or otherwise
    ///   singular systems.
    /// * [`CircuitError::ConflictingClamp`] if one node is clamped to two
    ///   different voltages.
    /// * [`CircuitError::NotConverged`] if the CG path fails to converge.
    /// * [`CircuitError::InvalidParameter`] if a reduced method is requested
    ///   for a netlist with floating sources.
    pub fn solve_dc_with(&self, method: SolveMethod) -> Result<DcSolution, CircuitError> {
        self.solve_dc_stats(method).map(|(sol, _)| sol)
    }

    /// Like [`Netlist::solve_dc_with`], additionally reporting a
    /// [`SolveStats`] describing the backend that ran and how much work the
    /// solve took.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Netlist::solve_dc_with`].
    pub fn solve_dc_stats(
        &self,
        method: SolveMethod,
    ) -> Result<(DcSolution, SolveStats), CircuitError> {
        let method = match method {
            SolveMethod::Auto => {
                if self.has_floating_sources() {
                    SolveMethod::DenseLu
                } else {
                    let unknowns = self.node_count().saturating_sub(1);
                    if unknowns <= AUTO_DENSE_LIMIT {
                        SolveMethod::DenseCholesky
                    } else {
                        SolveMethod::SparseCg(ConjugateGradient::default())
                    }
                }
            }
            m => m,
        };
        let (voltages, stats) = match method {
            SolveMethod::DenseLu => {
                let voltages = self.solve_full_mna()?;
                let unknowns = self.node_count().saturating_sub(1);
                (
                    voltages,
                    SolveStats {
                        method: "dense_lu",
                        unknowns,
                        iterations: unknowns,
                        residual: 0.0,
                    },
                )
            }
            SolveMethod::DenseCholesky => self.solve_reduced(ReducedBackend::Cholesky)?,
            SolveMethod::SparseCg(cg) => self.solve_reduced(ReducedBackend::Cg(cg))?,
            SolveMethod::Auto => unreachable!("Auto resolved above"),
        };
        Ok((self.finish(voltages), stats))
    }

    /// Collects clamps as `(node index, volts)`, checking consistency.
    fn clamps(&self) -> Result<Vec<Option<f64>>, CircuitError> {
        collect_clamps(self.elements(), self.node_count())
    }

    /// Dirichlet-eliminated solve: unknowns are the unclamped, non-ground
    /// nodes.
    fn solve_reduced(
        &self,
        backend: ReducedBackend,
    ) -> Result<(Vec<f64>, SolveStats), CircuitError> {
        if self.has_floating_sources() {
            return Err(CircuitError::InvalidParameter {
                what: "reduced solve methods do not support floating voltage sources",
            });
        }
        let n = self.node_count();
        let clamp = self.clamps()?;

        // Map node index → reduced index.
        let mut reduced_index = vec![usize::MAX; n];
        let mut free_nodes = Vec::new();
        for (i, c) in clamp.iter().enumerate() {
            if c.is_none() {
                reduced_index[i] = free_nodes.len();
                free_nodes.push(i);
            }
        }
        let m = free_nodes.len();

        // Right-hand side: injected currents plus boundary contributions.
        let mut rhs = vec![0.0; m];
        for e in self.elements() {
            if let Element::CurrentSource { from, to, amps } = e {
                if let Some(&ri) = reduced_index.get(to.index()) {
                    if ri != usize::MAX {
                        rhs[ri] += amps.0;
                    }
                }
                if let Some(&ri) = reduced_index.get(from.index()) {
                    if ri != usize::MAX {
                        rhs[ri] -= amps.0;
                    }
                }
            }
        }

        let mut voltages = vec![0.0; n];
        for (i, c) in clamp.iter().enumerate() {
            if let Some(v) = c {
                voltages[i] = *v;
            }
        }

        if m == 0 {
            let stats = SolveStats {
                method: match backend {
                    ReducedBackend::Cholesky => "dense_cholesky",
                    ReducedBackend::Cg(_) => "sparse_cg",
                },
                unknowns: 0,
                iterations: 0,
                residual: 0.0,
            };
            return Ok((voltages, stats));
        }

        let (solution, stats) = match backend {
            ReducedBackend::Cholesky => {
                let mut a = DenseMatrix::zeros(m, m);
                for e in self.elements() {
                    if let Element::Resistor { a: na, b: nb, g } = e {
                        stamp_reduced_dense(
                            &mut a,
                            &mut rhs,
                            &reduced_index,
                            &clamp,
                            na.index(),
                            nb.index(),
                            g.0,
                        );
                    }
                }
                let x = a.cholesky()?.solve(&rhs)?;
                (
                    x,
                    SolveStats {
                        method: "dense_cholesky",
                        unknowns: m,
                        iterations: m,
                        residual: 0.0,
                    },
                )
            }
            ReducedBackend::Cg(cg) => {
                let mut b = SparseBuilder::new(m, m);
                for e in self.elements() {
                    if let Element::Resistor { a: na, b: nb, g } = e {
                        stamp_reduced_sparse(
                            &mut b,
                            &mut rhs,
                            &reduced_index,
                            &clamp,
                            na.index(),
                            nb.index(),
                            g.0,
                        );
                    }
                }
                let cg_sol = cg.solve_stats(&b.build(), &rhs)?;
                let stats = SolveStats {
                    method: "sparse_cg",
                    unknowns: m,
                    iterations: cg_sol.iterations,
                    residual: cg_sol.residual,
                };
                (cg_sol.x, stats)
            }
        };

        for (k, &node) in free_nodes.iter().enumerate() {
            voltages[node] = solution[k];
        }
        Ok((voltages, stats))
    }

    /// Classical MNA: node voltages plus one branch-current unknown per
    /// voltage source (clamps included).
    fn solve_full_mna(&self) -> Result<Vec<f64>, CircuitError> {
        // Check clamp consistency up front for a better error than
        // "singular".
        let _ = self.clamps()?;
        let n = self.node_count() - 1; // unknowns exclude ground
        let sources: Vec<(usize, &Element)> = self
            .elements()
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, Element::Clamp { .. } | Element::FloatingSource { .. }))
            .collect();
        let dim = n + sources.len();
        if dim == 0 {
            return Ok(vec![0.0; 1]);
        }
        let mut a = DenseMatrix::zeros(dim, dim);
        let mut rhs = vec![0.0; dim];

        // Node index → matrix row (ground excluded).
        let row = |node: usize| -> Option<usize> { node.checked_sub(1) };

        for e in self.elements() {
            match e {
                Element::Resistor { a: na, b: nb, g } => {
                    let (i, j) = (row(na.index()), row(nb.index()));
                    if let Some(i) = i {
                        a[(i, i)] += g.0;
                    }
                    if let Some(j) = j {
                        a[(j, j)] += g.0;
                    }
                    if let (Some(i), Some(j)) = (i, j) {
                        a[(i, j)] -= g.0;
                        a[(j, i)] -= g.0;
                    }
                }
                Element::CurrentSource { from, to, amps } => {
                    if let Some(i) = row(to.index()) {
                        rhs[i] += amps.0;
                    }
                    if let Some(i) = row(from.index()) {
                        rhs[i] -= amps.0;
                    }
                }
                Element::Clamp { .. }
                | Element::FloatingSource { .. }
                | Element::Capacitor { .. } => {}
            }
        }

        for (k, (_, e)) in sources.iter().enumerate() {
            let branch = n + k;
            match e {
                Element::Clamp { node, volts } => {
                    let i = row(node.index()).expect("clamp on ground rejected at build");
                    // Branch current flows *into* the node (source convention
                    // documented on DcSolution::current).
                    a[(i, branch)] -= 1.0;
                    a[(branch, i)] += 1.0;
                    rhs[branch] = volts.0;
                }
                Element::FloatingSource { plus, minus, volts } => {
                    if let Some(i) = row(plus.index()) {
                        a[(i, branch)] -= 1.0;
                        a[(branch, i)] += 1.0;
                    }
                    if let Some(j) = row(minus.index()) {
                        a[(j, branch)] += 1.0;
                        a[(branch, j)] -= 1.0;
                    }
                    rhs[branch] = volts.0;
                }
                Element::Resistor { .. }
                | Element::CurrentSource { .. }
                | Element::Capacitor { .. } => unreachable!(),
            }
        }

        let x = a.solve(&rhs)?;
        let mut voltages = vec![0.0; self.node_count()];
        voltages[1..].copy_from_slice(&x[..n]);
        Ok(voltages)
    }

    /// Computes per-element branch currents from the node voltages.
    fn finish(&self, voltages: Vec<f64>) -> DcSolution {
        let currents = branch_currents(self.elements(), self.node_count(), &voltages);
        DcSolution { voltages, currents }
    }
}

/// Clamp map shared by the netlist solver and the prepared-system layer:
/// `Some(volts)` per clamped node (ground included), `None` for free nodes.
pub(crate) fn collect_clamps(
    elements: &[Element],
    node_count: usize,
) -> Result<Vec<Option<f64>>, CircuitError> {
    let mut clamp: Vec<Option<f64>> = vec![None; node_count];
    clamp[0] = Some(0.0); // ground
    for e in elements {
        if let Element::Clamp { node, volts } = e {
            match clamp[node.index()] {
                None => clamp[node.index()] = Some(volts.0),
                Some(v) if v == volts.0 => {}
                Some(_) => return Err(CircuitError::ConflictingClamp { node: node.index() }),
            }
        }
    }
    Ok(clamp)
}

/// Per-element branch currents from solved node voltages — shared by the
/// netlist solver and the prepared-system layer so cached solves report
/// identical currents to cold solves.
pub(crate) fn branch_currents(
    elements: &[Element],
    node_count: usize,
    voltages: &[f64],
) -> Vec<f64> {
    let mut currents = vec![0.0; elements.len()];
    // For voltage sources, branch current = KCL sum of all *other*
    // element currents leaving the source node(s). Accumulate per node.
    let mut node_outflow = vec![0.0; node_count];
    for (idx, e) in elements.iter().enumerate() {
        match e {
            Element::Resistor { a, b, g } => {
                let i = g.0 * (voltages[a.index()] - voltages[b.index()]);
                currents[idx] = i;
                node_outflow[a.index()] += i;
                node_outflow[b.index()] -= i;
            }
            Element::CurrentSource { from, to, amps } => {
                currents[idx] = amps.0;
                node_outflow[from.index()] += amps.0;
                node_outflow[to.index()] -= amps.0;
            }
            Element::Clamp { .. } | Element::FloatingSource { .. } | Element::Capacitor { .. } => {}
        }
    }
    // A source must supply whatever flows out of its positive node
    // through the passive elements. Multiple sources on one node share
    // arbitrarily in reality; here each clamp node has a unique value
    // (checked at solve time), and we attribute the full outflow to the
    // *first* source on that node and zero to duplicates.
    let mut claimed = vec![false; node_count];
    for (idx, e) in elements.iter().enumerate() {
        match e {
            Element::Clamp { node, .. } if !claimed[node.index()] => {
                currents[idx] = node_outflow[node.index()];
                claimed[node.index()] = true;
            }
            Element::FloatingSource { plus, .. } if !claimed[plus.index()] => {
                currents[idx] = node_outflow[plus.index()];
                claimed[plus.index()] = true;
            }
            _ => {}
        }
    }
    currents
}

enum ReducedBackend {
    Cholesky,
    Cg(ConjugateGradient),
}

#[allow(clippy::too_many_arguments)]
fn stamp_reduced_dense(
    a: &mut DenseMatrix,
    rhs: &mut [f64],
    reduced_index: &[usize],
    clamp: &[Option<f64>],
    na: usize,
    nb: usize,
    g: f64,
) {
    let (ia, ib) = (reduced_index[na], reduced_index[nb]);
    if ia != usize::MAX {
        a[(ia, ia)] += g;
        if let Some(vb) = clamp[nb] {
            rhs[ia] += g * vb
        }
    }
    if ib != usize::MAX {
        a[(ib, ib)] += g;
        if let Some(va) = clamp[na] {
            rhs[ib] += g * va
        }
    }
    if ia != usize::MAX && ib != usize::MAX {
        a[(ia, ib)] -= g;
        a[(ib, ia)] -= g;
    }
}

#[allow(clippy::too_many_arguments)]
fn stamp_reduced_sparse(
    b: &mut SparseBuilder,
    rhs: &mut [f64],
    reduced_index: &[usize],
    clamp: &[Option<f64>],
    na: usize,
    nb: usize,
    g: f64,
) {
    let (ia, ib) = (reduced_index[na], reduced_index[nb]);
    if ia != usize::MAX {
        b.add(ia, ia, g);
        if let Some(vb) = clamp[nb] {
            rhs[ia] += g * vb;
        }
    }
    if ib != usize::MAX {
        b.add(ib, ib, g);
        if let Some(va) = clamp[na] {
            rhs[ib] += g * va;
        }
    }
    if ia != usize::MAX && ib != usize::MAX {
        b.add(ia, ib, -g);
        b.add(ib, ia, -g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Ohms;

    const METHODS: [SolveMethod; 4] = [
        SolveMethod::Auto,
        SolveMethod::DenseLu,
        SolveMethod::DenseCholesky,
        SolveMethod::SparseCg(ConjugateGradient {
            tolerance: 1e-12,
            max_iterations: None,
        }),
    ];

    fn divider() -> (Netlist, NodeId, NodeId) {
        let mut net = Netlist::new();
        let top = net.node("top");
        let mid = net.node("mid");
        net.voltage_source(top, Volts(1.0));
        net.resistor(top, mid, Ohms(1e3));
        net.resistor(mid, Netlist::GROUND, Ohms(3e3));
        (net, top, mid)
    }

    #[test]
    fn divider_all_methods_agree() {
        let (net, top, mid) = divider();
        for m in METHODS {
            let sol = net.solve_dc_with(m).unwrap();
            assert!((sol.voltage(mid).0 - 0.75).abs() < 1e-9, "{m:?}");
            assert!((sol.voltage(top).0 - 1.0).abs() < 1e-12, "{m:?}");
        }
    }

    #[test]
    fn clamp_current_matches_ohms_law() {
        let (net, _, _) = divider();
        let sol = net.solve_dc().unwrap();
        // Source drives 1 V across 4 kΩ → 0.25 mA into the network.
        let src = ElementId(0);
        assert!((sol.current(src).0 - 0.25e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.current_source(Netlist::GROUND, a, Amps(2e-3));
        net.resistor(a, Netlist::GROUND, Ohms(500.0));
        for m in METHODS {
            let sol = net.solve_dc_with(m).unwrap();
            assert!((sol.voltage(a).0 - 1.0).abs() < 1e-9, "{m:?}");
        }
    }

    #[test]
    fn floating_source_needs_mna() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.resistor(a, Netlist::GROUND, Ohms(1e3));
        net.resistor(b, Netlist::GROUND, Ohms(1e3));
        net.floating_voltage_source(a, b, Volts(0.5));
        let sol = net.solve_dc().unwrap();
        assert!((sol.voltage_between(a, b).0 - 0.5).abs() < 1e-9);
        // Symmetric network: potentials are ±0.25 V.
        assert!((sol.voltage(a).0 - 0.25).abs() < 1e-9);
        assert!((sol.voltage(b).0 + 0.25).abs() < 1e-9);
        // Reduced methods refuse.
        assert!(matches!(
            net.solve_dc_with(SolveMethod::DenseCholesky),
            Err(CircuitError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn conflicting_clamps_detected() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.resistor(a, Netlist::GROUND, Ohms(1.0));
        net.voltage_source(a, Volts(1.0));
        net.voltage_source(a, Volts(2.0));
        assert!(matches!(
            net.solve_dc(),
            Err(CircuitError::ConflictingClamp { .. })
        ));
        assert!(matches!(
            net.solve_dc_with(SolveMethod::DenseLu),
            Err(CircuitError::ConflictingClamp { .. })
        ));
    }

    #[test]
    fn duplicate_identical_clamps_are_fine() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.resistor(a, Netlist::GROUND, Ohms(1.0));
        net.voltage_source(a, Volts(1.0));
        net.voltage_source(a, Volts(1.0));
        let sol = net.solve_dc().unwrap();
        assert!((sol.voltage(a).0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.resistor(a, Netlist::GROUND, Ohms(1.0));
        // b dangles with no connection at all — reduced matrix has a zero
        // diagonal for it.
        let _ = b;
        assert!(net.solve_dc().is_err());
    }

    #[test]
    fn power_balance_tellegen() {
        // Mixed network: clamp + current source + resistor mesh.
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        let c = net.node("c");
        net.voltage_source(a, Volts(1.0));
        net.current_source(Netlist::GROUND, c, Amps(1e-3));
        net.resistor(a, b, Ohms(1e3));
        net.resistor(b, c, Ohms(2e3));
        net.resistor(b, Netlist::GROUND, Ohms(4e3));
        net.resistor(c, Netlist::GROUND, Ohms(1e3));
        for m in METHODS {
            let sol = net.solve_dc_with(m).unwrap();
            let dissipated = sol.dissipated_power(&net);
            let supplied = sol.source_power(&net);
            assert!(
                (dissipated.0 - supplied.0).abs() < 1e-12,
                "{m:?}: {dissipated} vs {supplied}"
            );
        }
    }

    #[test]
    fn resistor_branch_current_sign() {
        let (net, _, _) = divider();
        let sol = net.solve_dc().unwrap();
        // Element 1 is the top resistor a→mid: positive current flows top→mid.
        assert!(sol.current(ElementId(1)).0 > 0.0);
        // Element 2 flows mid→gnd, also positive.
        assert!(sol.current(ElementId(2)).0 > 0.0);
        assert!(
            (sol.current(ElementId(1)).0 - sol.current(ElementId(2)).0).abs() < 1e-12,
            "series elements carry equal current"
        );
    }

    #[test]
    fn ladder_matches_analytic() {
        // Uniform R ladder driven by a clamp: check against hand-derived
        // value for 3 sections of series 1 kΩ with 1 kΩ to ground each.
        let mut net = Netlist::new();
        let n1 = net.node("n1");
        let n2 = net.node("n2");
        let n3 = net.node("n3");
        net.voltage_source(n1, Volts(1.0));
        net.resistor(n1, n2, Ohms(1e3));
        net.resistor(n2, Netlist::GROUND, Ohms(1e3));
        net.resistor(n2, n3, Ohms(1e3));
        net.resistor(n3, Netlist::GROUND, Ohms(1e3));
        let sol = net.solve_dc().unwrap();
        // From n2: load = 1k ∥ (1k + 1k) = 2/3 k; v2 = (2/3)/(1 + 2/3) = 0.4
        assert!((sol.voltage(n2).0 - 0.4).abs() < 1e-9);
        // v3 = v2 / 2 = 0.2
        assert!((sol.voltage(n3).0 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn large_grid_cg_matches_cholesky() {
        // A 12×12 resistor grid with one corner clamped and one corner
        // driven by a current source — both reduced backends must agree.
        let n = 12;
        let mut net = Netlist::new();
        let mut ids = Vec::new();
        for r in 0..n {
            for c in 0..n {
                ids.push(net.node(format!("g{r}_{c}")));
            }
        }
        let at = |r: usize, c: usize| ids[r * n + c];
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    net.resistor(at(r, c), at(r, c + 1), Ohms(100.0));
                }
                if r + 1 < n {
                    net.resistor(at(r, c), at(r + 1, c), Ohms(100.0));
                }
            }
        }
        net.voltage_source(at(0, 0), Volts(0.03));
        net.resistor(at(n - 1, n - 1), Netlist::GROUND, Ohms(1e3));
        net.current_source(Netlist::GROUND, at(n - 1, 0), Amps(10e-6));

        let chol = net.solve_dc_with(SolveMethod::DenseCholesky).unwrap();
        let cg = net
            .solve_dc_with(SolveMethod::SparseCg(ConjugateGradient::new(1e-13)))
            .unwrap();
        let lu = net.solve_dc_with(SolveMethod::DenseLu).unwrap();
        for i in 0..net.node_count() {
            let node = NodeId(i);
            assert!((chol.voltage(node).0 - cg.voltage(node).0).abs() < 1e-9);
            assert!((chol.voltage(node).0 - lu.voltage(node).0).abs() < 1e-9);
        }
    }

    #[test]
    fn no_free_nodes_solves_trivially() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.voltage_source(a, Volts(0.5));
        net.resistor(a, Netlist::GROUND, Ohms(100.0));
        let sol = net.solve_dc().unwrap();
        assert!((sol.voltage(a).0 - 0.5).abs() < 1e-12);
        assert!((sol.current(ElementId(0)).0 - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn kcl_residual_property() {
        // KCL holds at every free node of a random-ish mesh.
        let mut net = Netlist::new();
        let nodes = net.nodes(6);
        for (k, w) in nodes.windows(2).enumerate() {
            net.resistor(w[0], w[1], Ohms(100.0 + 37.0 * k as f64));
        }
        net.resistor(nodes[0], Netlist::GROUND, Ohms(220.0));
        net.resistor(nodes[5], Netlist::GROUND, Ohms(330.0));
        net.resistor(nodes[1], nodes[4], Ohms(150.0));
        net.current_source(Netlist::GROUND, nodes[2], Amps(1e-3));
        net.voltage_source(nodes[0], Volts(0.2));
        let sol = net.solve_dc().unwrap();

        // Accumulate outflow per node from resistor + current-source
        // branches; free nodes must sum to ~0.
        let mut outflow = vec![0.0; net.node_count()];
        for (idx, e) in net.elements().iter().enumerate() {
            match e {
                Element::Resistor { a, b, .. } => {
                    let i = sol.current(ElementId(idx)).0;
                    outflow[a.index()] += i;
                    outflow[b.index()] -= i;
                }
                Element::CurrentSource { from, to, amps } => {
                    outflow[from.index()] += amps.0;
                    outflow[to.index()] -= amps.0;
                }
                _ => {}
            }
        }
        for (i, f) in outflow.iter().enumerate() {
            if i == 0 || i == nodes[0].index() {
                continue; // ground and clamped node absorb source current
            }
            assert!(f.abs() < 1e-12, "KCL violated at node {i}: {f}");
        }
    }
}
