//! Dense linear algebra: a row-major matrix with LU and Cholesky solves.
//!
//! The full modified-nodal-analysis system of a crossbar netlist is
//! asymmetric once voltage-source branch equations are appended, so the
//! general path is LU with partial pivoting. When the network is reduced to
//! its interior (Dirichlet-eliminated) conductance matrix the system is
//! symmetric positive definite and [`DenseMatrix::cholesky`] is both faster
//! and a good cross-check for the sparse conjugate-gradient path.
//!
//! Matrices of the sizes used by `spinamm` (up to a few thousand unknowns for
//! direct solves) fit comfortably in dense storage; larger parasitic networks
//! go through [`crate::sparse`].

use crate::CircuitError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// # Example
///
/// ```
/// use spinamm_circuit::dense::DenseMatrix;
///
/// # fn main() -> Result<(), spinamm_circuit::CircuitError> {
/// let mut a = DenseMatrix::zeros(2, 2);
/// a[(0, 0)] = 2.0;
/// a[(0, 1)] = 1.0;
/// a[(1, 0)] = 1.0;
/// a[(1, 1)] = 3.0;
/// let x = a.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major slice.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Result<Self, CircuitError> {
        if data.len() != rows * cols {
            return Err(CircuitError::DimensionMismatch {
                expected: rows * cols,
                found: data.len(),
            });
        }
        Ok(Self {
            rows,
            cols,
            data: data.to_vec(),
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Maximum absolute asymmetry `max |a_ij − a_ji|`; zero for symmetric
    /// matrices. Useful for asserting that a reduced conductance matrix is
    /// symmetric before handing it to Cholesky or CG.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn asymmetry(&self) -> f64 {
        assert!(self.is_square(), "asymmetry requires a square matrix");
        let mut worst = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DimensionMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, CircuitError> {
        if x.len() != self.cols {
            return Err(CircuitError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(y)
    }

    /// Solves `A·x = b` by LU factorization with partial pivoting.
    ///
    /// The matrix is copied; repeated solves against the same matrix should
    /// use [`DenseMatrix::lu`] once and [`LuFactors::solve`] per right-hand
    /// side.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::DimensionMismatch`] if the matrix is not square or
    ///   `b.len() != rows`.
    /// * [`CircuitError::SingularSystem`] if a pivot underflows.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, CircuitError> {
        self.lu()?.solve(b)
    }

    /// Computes the LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::DimensionMismatch`] if the matrix is not square.
    /// * [`CircuitError::SingularSystem`] if a pivot underflows.
    pub fn lu(&self) -> Result<LuFactors, CircuitError> {
        if !self.is_square() {
            return Err(CircuitError::DimensionMismatch {
                expected: self.rows,
                found: self.cols,
            });
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        // Scale factors for implicit scaled partial pivoting: row equilibration
        // matters because crossbar MNA rows mix µS memristor conductances with
        // unit voltage-source entries.
        let mut scale = vec![0.0_f64; n];
        for i in 0..n {
            let big = lu[i * n..(i + 1) * n]
                .iter()
                .fold(0.0_f64, |m, v| m.max(v.abs()));
            if big == 0.0 {
                return Err(CircuitError::SingularSystem { pivot: i });
            }
            scale[i] = 1.0 / big;
        }

        for k in 0..n {
            // Pivot search over rows k..n.
            let mut best = k;
            let mut best_val = scale[k] * lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = scale[i] * lu[i * n + k].abs();
                if v > best_val {
                    best_val = v;
                    best = i;
                }
            }
            if best != k {
                for j in 0..n {
                    lu.swap(k * n + j, best * n + j);
                }
                perm.swap(k, best);
                scale.swap(k, best);
            }
            let pivot = lu[k * n + k];
            if pivot.abs() < f64::MIN_POSITIVE * 1e4 {
                return Err(CircuitError::SingularSystem { pivot: k });
            }
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        lu[i * n + j] -= factor * lu[k * n + j];
                    }
                }
            }
        }

        Ok(LuFactors { n, lu, perm })
    }

    /// Computes the Cholesky factor `L` (lower triangular, `A = L·Lᵀ`) of a
    /// symmetric positive definite matrix. Only the lower triangle of `self`
    /// is read.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::DimensionMismatch`] if the matrix is not square.
    /// * [`CircuitError::SingularSystem`] if the matrix is not positive
    ///   definite (a diagonal pivot becomes non-positive).
    pub fn cholesky(&self) -> Result<CholeskyFactor, CircuitError> {
        if !self.is_square() {
            return Err(CircuitError::DimensionMismatch {
                expected: self.rows,
                found: self.cols,
            });
        }
        let n = self.rows;
        let mut l = vec![0.0_f64; n * n];
        for j in 0..n {
            let mut diag = self[(j, j)];
            for k in 0..j {
                diag -= l[j * n + k] * l[j * n + k];
            }
            if diag <= 0.0 {
                return Err(CircuitError::SingularSystem { pivot: j });
            }
            let djj = diag.sqrt();
            l[j * n + j] = djj;
            for i in (j + 1)..n {
                let mut v = self[(i, j)];
                for k in 0..j {
                    v -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = v / djj;
            }
        }
        Ok(CholeskyFactor { n, l })
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// LU factorization produced by [`DenseMatrix::lu`].
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Packed L (unit diagonal, below) and U (on/above diagonal).
    lu: Vec<f64>,
    /// `perm[k]` is the original row now in position `k`.
    perm: Vec<usize>,
}

impl LuFactors {
    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DimensionMismatch`] if `b.len()` differs from
    /// the factored dimension.
    #[allow(clippy::needless_range_loop)] // indexed triangular solves read clearer
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, CircuitError> {
        let n = self.n;
        if b.len() != n {
            return Err(CircuitError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        // Apply permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s / self.lu[i * n + i];
        }
        Ok(x)
    }
}

/// Cholesky factor produced by [`DenseMatrix::cholesky`].
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    n: usize,
    l: Vec<f64>,
}

impl CholeskyFactor {
    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` using the stored factor (`L·Lᵀ·x = b`).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DimensionMismatch`] if `b.len()` differs from
    /// the factored dimension.
    #[allow(clippy::needless_range_loop)] // indexed triangular solves read clearer
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, CircuitError> {
        let n = self.n;
        if b.len() != n {
            return Err(CircuitError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        let mut x = b.to_vec();
        self.solve_into(&mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` in place: `x` holds `b` on entry and the solution on
    /// exit. No allocation; the arithmetic is identical to
    /// [`CholeskyFactor::solve`], so results are bit-for-bit the same.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DimensionMismatch`] if `x.len()` differs from
    /// the factored dimension.
    #[allow(clippy::needless_range_loop)] // indexed triangular solves read clearer
    pub fn solve_into(&self, x: &mut [f64]) -> Result<(), CircuitError> {
        let n = self.n;
        if x.len() != n {
            return Err(CircuitError::DimensionMismatch {
                expected: n,
                found: x.len(),
            });
        }
        // Forward: L·y = b.
        for i in 0..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.l[i * n + j] * x[j];
            }
            x[i] = s / self.l[i * n + i];
        }
        // Backward: Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.l[j * n + i] * x[j];
            }
            x[i] = s / self.l[i * n + i];
        }
        Ok(())
    }

    /// Solves `A·X = B` for a column block of right-hand sides stored
    /// contiguously (`block` is `k` concatenated length-`n` columns, solved
    /// in place). One factorization amortized over the whole block; each
    /// column goes through the same substitutions as
    /// [`CholeskyFactor::solve`], so per-column results are bit-identical
    /// to `k` independent solves.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DimensionMismatch`] if `block.len()` is not a
    /// multiple of the factored dimension.
    pub fn solve_block(&self, block: &mut [f64]) -> Result<(), CircuitError> {
        let n = self.n;
        if n == 0 {
            return Ok(());
        }
        if block.len() % n != 0 {
            return Err(CircuitError::DimensionMismatch {
                expected: n,
                found: block.len(),
            });
        }
        for col in block.chunks_exact_mut(n) {
            self.solve_into(col)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &DenseMatrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .unwrap()
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn identity_solve_is_identity() {
        let a = DenseMatrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.0];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn lu_solves_general_system() {
        let a = DenseMatrix::from_rows(3, 3, &[2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0])
            .unwrap();
        let b = [8.0, -11.0, -3.0];
        let x = a.solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn lu_handles_zero_leading_pivot() {
        // Requires pivoting: a11 = 0.
        let a = DenseMatrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn lu_detects_singular() {
        let a = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]).unwrap();
        match a.solve(&[1.0, 2.0]) {
            Err(CircuitError::SingularSystem { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
        let zero = DenseMatrix::zeros(3, 3);
        assert!(matches!(
            zero.solve(&[0.0; 3]),
            Err(CircuitError::SingularSystem { .. })
        ));
    }

    #[test]
    fn lu_badly_scaled_rows() {
        // Rows differing by 9 orders of magnitude — scaled pivoting must cope,
        // as MNA matrices mix µS conductances with unit source stamps.
        let a = DenseMatrix::from_rows(2, 2, &[1e-9, 2e-9, 1.0, -1.0]).unwrap();
        let b = [3e-9, 0.0];
        let x = a.solve(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lu_factors_reusable_across_rhs() {
        let a = DenseMatrix::from_rows(2, 2, &[4.0, 1.0, 1.0, 3.0]).unwrap();
        let lu = a.lu().unwrap();
        assert_eq!(lu.dim(), 2);
        for b in [[1.0, 0.0], [0.0, 1.0], [5.0, -2.0]] {
            let x = lu.solve(&b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-12);
        }
    }

    #[test]
    fn cholesky_matches_lu_on_spd() {
        let a =
            DenseMatrix::from_rows(3, 3, &[4.0, 1.0, 0.5, 1.0, 5.0, 1.5, 0.5, 1.5, 6.0]).unwrap();
        assert_eq!(a.asymmetry(), 0.0);
        let b = [1.0, 2.0, 3.0];
        let x_lu = a.solve(&b).unwrap();
        let x_ch = a.cholesky().unwrap().solve(&b).unwrap();
        for (u, v) in x_lu.iter().zip(&x_ch) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_solve_into_and_block_bit_match_solve() {
        let a =
            DenseMatrix::from_rows(3, 3, &[4.0, 1.0, 0.5, 1.0, 5.0, 1.5, 0.5, 1.5, 6.0]).unwrap();
        let ch = a.cholesky().unwrap();
        let rhs = [[1.0, 2.0, 3.0], [-0.5, 0.25, 7.0], [1e-9, 2e3, -4.0]];

        // solve_into is bit-identical to solve.
        for b in &rhs {
            let reference = ch.solve(b).unwrap();
            let mut x = b.to_vec();
            ch.solve_into(&mut x).unwrap();
            assert_eq!(x, reference);
        }

        // solve_block is bit-identical per column.
        let mut block: Vec<f64> = rhs.iter().flatten().copied().collect();
        ch.solve_block(&mut block).unwrap();
        for (k, b) in rhs.iter().enumerate() {
            let reference = ch.solve(b).unwrap();
            assert_eq!(&block[k * 3..(k + 1) * 3], reference.as_slice());
        }

        // Dimension errors.
        assert!(matches!(
            ch.solve_into(&mut [0.0; 2]),
            Err(CircuitError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            ch.solve_block(&mut [0.0; 4]),
            Err(CircuitError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            a.cholesky(),
            Err(CircuitError::SingularSystem { .. })
        ));
    }

    #[test]
    fn dimension_errors() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(CircuitError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            a.matvec(&[1.0, 2.0]),
            Err(CircuitError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            DenseMatrix::from_rows(2, 2, &[1.0]),
            Err(CircuitError::DimensionMismatch { .. })
        ));
        let spd = DenseMatrix::identity(2);
        let ch = spd.cholesky().unwrap();
        assert!(matches!(
            ch.solve(&[1.0]),
            Err(CircuitError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matvec_matches_manual() {
        let a = DenseMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = a.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![6.0, 15.0]);
    }

    #[test]
    fn display_formats_all_entries() {
        let a = DenseMatrix::identity(2);
        let s = a.to_string();
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = DenseMatrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }
}
