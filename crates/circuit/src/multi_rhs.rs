//! Multi-RHS batched solves: one Cholesky factorization applied to a
//! column block of right-hand sides.
//!
//! `recall_batch` and engine workloads push many queries through one
//! prepared topology where only *sources* change between queries — current
//! injections and clamp levels. Those are RHS-only updates: the reduced
//! conductance matrix (and therefore its factor) is identical for every
//! query, so the batch collapses to a single factorization followed by one
//! pair of triangular substitutions per column ([`CholeskyFactor::solve_block`]).
//!
//! Two honest limits, both enforced here rather than papered over:
//!
//! * **Conductance drives break the block.** The AMM's driven/parasitic
//!   fidelities model DAC rows as *source conductances*, which change
//!   matrix entries per query; a batch containing such updates cannot share
//!   a factor and must fall back to sequential prepared solves. This
//!   module only accepts [`RhsUpdate`]s (currents and clamps), making the
//!   RHS-only contract a type-level guarantee.
//! * **Dense backend only.** The CG backend has no factor to amortize; the
//!   batch falls back to sequential warm-started prepared solves and says
//!   so in the report.
//!
//! Per-column results are bit-identical to the same queries solved
//! sequentially through [`PreparedSystem::solve_report`]: the RHS assembly,
//! triangular substitutions, scatter and branch-current reconstruction are
//! the same code in the same order (`prepared_tests::solve_multi_rhs_bit_matches_sequential`
//! pins this).
//!
//! [`CholeskyFactor::solve_block`]: crate::dense::CholeskyFactor::solve_block

use crate::netlist::ElementId;
use crate::prepared::PreparedSystem;
use crate::solve::DcSolution;
use crate::units::{Amps, Volts};
use crate::CircuitError;

/// One RHS-only element update: the only kinds of change a query may make
/// if it wants to share a factorization with its batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RhsUpdate {
    /// Set a current source's value.
    Current(Amps),
    /// Set a clamp's voltage.
    Clamp(Volts),
}

/// One query of a multi-RHS batch: the updates to apply before solving.
///
/// Every query must set **every element that varies anywhere in the
/// batch** — updates are applied cumulatively, so an element a query omits
/// keeps the previous query's value.
pub type RhsQuery = Vec<(ElementId, RhsUpdate)>;

/// What a [`PreparedSystem::solve_multi_rhs`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiRhsReport {
    /// Number of queries solved.
    pub queries: usize,
    /// Reduced unknowns per column.
    pub unknowns: usize,
    /// `true` when the single-factorization block path ran; `false` means
    /// the sequential fallback (CG backend) handled the batch.
    pub blocked: bool,
    /// Fresh factorizations performed (0 when a cached factor covered the
    /// whole block, 1 when the block built one; fallback reports 0).
    pub factorizations: usize,
}

impl PreparedSystem {
    /// Solves a batch of RHS-only queries against this prepared topology,
    /// amortizing one Cholesky factorization over the whole block.
    ///
    /// Dense backend: stages one RHS column per query, factors at most
    /// once, then runs [`CholeskyFactor::solve_block`] and reconstructs a
    /// full [`DcSolution`] per query (branch currents computed under that
    /// query's element values). CG backend: sequential warm-started
    /// prepared solves. Both paths return solutions bit-identical to
    /// calling [`PreparedSystem::solve_report`] once per query.
    ///
    /// Factor-reuse accounting matches the sequential path: every column
    /// solved against an already-cached factor counts as one reuse in
    /// [`PreparedSystem::factorization_reuses`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`PreparedSystem::solve_report`] plus the setter
    /// validation of [`PreparedSystem::set_current`] /
    /// [`PreparedSystem::set_clamp`].
    ///
    /// [`CholeskyFactor::solve_block`]: crate::dense::CholeskyFactor::solve_block
    pub fn solve_multi_rhs(
        &mut self,
        queries: &[RhsQuery],
    ) -> Result<(Vec<DcSolution>, MultiRhsReport), CircuitError> {
        let k = queries.len();
        let mut report = MultiRhsReport {
            queries: k,
            unknowns: self.unknowns(),
            blocked: false,
            factorizations: 0,
        };
        if k == 0 {
            return Ok((Vec::new(), report));
        }
        if !self.uses_dense_backend() {
            let mut out = Vec::with_capacity(k);
            for q in queries {
                apply_updates(self, q)?;
                let (sol, _) = self.solve_report()?;
                out.push(sol);
            }
            return Ok((out, report));
        }

        // Stage every RHS column and its clamp-seeded voltage vector.
        let m = self.unknowns();
        let mut block = Vec::with_capacity(k * m);
        let mut seeds: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut col = Vec::with_capacity(m);
        for q in queries {
            apply_updates(self, q)?;
            let mut seed = Vec::new();
            self.stage_rhs(&mut col, &mut seed)?;
            block.extend_from_slice(&col);
            seeds.push(seed);
        }

        // One factorization for the whole block; reuse accounting matches
        // k sequential solves (each column after the factor-building one
        // counts as a reuse).
        let reused = self.ensure_dense_factor()?;
        if !reused {
            report.factorizations = 1;
        }
        self.note_factor_reuses(if reused { k as u64 } else { k as u64 - 1 });
        self.dense_factor()
            .expect("dense factor ensured above")
            .solve_block(&mut block)?;
        report.blocked = true;

        // Reconstruct full solutions: per-query clamp seed + scattered
        // interior voltages + branch currents under that query's updates.
        let mut out = Vec::with_capacity(k);
        for (qi, q) in queries.iter().enumerate() {
            apply_updates(self, q)?;
            self.refresh_clamps()?;
            let mut voltages = std::mem::take(&mut seeds[qi]);
            self.scatter_free(&block[qi * m..(qi + 1) * m], &mut voltages);
            out.push(self.solution_from_voltages(voltages));
        }
        Ok((out, report))
    }
}

fn apply_updates(
    sys: &mut PreparedSystem,
    updates: &[(ElementId, RhsUpdate)],
) -> Result<(), CircuitError> {
    for &(id, u) in updates {
        match u {
            RhsUpdate::Current(a) => sys.set_current(id, a)?,
            RhsUpdate::Clamp(v) => sys.set_clamp(id, v)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod prepared_tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::solve::SolveMethod;
    use crate::sparse::ConjugateGradient;
    use crate::units::{Ohms, Siemens};

    /// Ladder with one clamp and one current source: both RHS-only knobs.
    fn ladder() -> (Netlist, ElementId, ElementId) {
        let mut net = Netlist::new();
        let nodes = net.nodes(5);
        let clamp = net.voltage_source(nodes[0], Volts(0.5));
        for w in nodes.windows(2) {
            net.resistor(w[0], w[1], Ohms(100.0));
        }
        net.resistor(nodes[4], Netlist::GROUND, Ohms(220.0));
        let src = net.current_source(Netlist::GROUND, nodes[2], Amps(1e-3));
        net.conductance(nodes[3], Netlist::GROUND, Siemens(2e-3));
        (net, clamp, src)
    }

    fn queries(clamp: ElementId, src: ElementId) -> Vec<RhsQuery> {
        (0..6)
            .map(|q| {
                vec![
                    (clamp, RhsUpdate::Clamp(Volts(0.25 + 0.05 * q as f64))),
                    (src, RhsUpdate::Current(Amps(1e-3 + 2e-4 * q as f64))),
                ]
            })
            .collect()
    }

    #[test]
    fn solve_multi_rhs_bit_matches_sequential() {
        let (net, clamp, src) = ladder();
        let qs = queries(clamp, src);

        // Sequential reference: prepared solves one query at a time.
        let mut seq = PreparedSystem::with_method(&net, SolveMethod::DenseCholesky).unwrap();
        let mut reference = Vec::new();
        for q in &qs {
            for &(id, u) in q {
                match u {
                    RhsUpdate::Current(a) => seq.set_current(id, a).unwrap(),
                    RhsUpdate::Clamp(v) => seq.set_clamp(id, v).unwrap(),
                }
            }
            let (sol, _) = seq.solve_report().unwrap();
            reference.push(sol);
        }

        let mut batch = PreparedSystem::with_method(&net, SolveMethod::DenseCholesky).unwrap();
        let (sols, report) = batch.solve_multi_rhs(&qs).unwrap();
        assert!(report.blocked);
        assert_eq!(report.queries, qs.len());
        assert_eq!(report.factorizations, 1);
        assert_eq!(sols.len(), reference.len());
        for (got, want) in sols.iter().zip(&reference) {
            assert_eq!(got.voltages(), want.voltages());
            for i in 0..net.element_count() {
                let id = net.element_id(i).unwrap();
                assert_eq!(got.current(id).0, want.current(id).0);
            }
        }
        // Reuse accounting matches k sequential solves: first builds, the
        // remaining k−1 reuse.
        assert_eq!(batch.factorization_reuses(), seq.factorization_reuses());
    }

    #[test]
    fn warm_system_reuses_factor_for_whole_block() {
        let (net, clamp, src) = ladder();
        let mut prep = PreparedSystem::with_method(&net, SolveMethod::DenseCholesky).unwrap();
        prep.solve_report().unwrap(); // builds the factor
        let qs = queries(clamp, src);
        let before = prep.factorization_reuses();
        let (_, report) = prep.solve_multi_rhs(&qs).unwrap();
        assert!(report.blocked);
        assert_eq!(report.factorizations, 0, "warm factor must be reused");
        assert_eq!(prep.factorization_reuses(), before + qs.len() as u64);
    }

    #[test]
    fn cg_backend_falls_back_sequentially() {
        let (net, clamp, src) = ladder();
        let cg = ConjugateGradient::new(1e-13);
        let mut prep = PreparedSystem::with_method(&net, SolveMethod::SparseCg(cg)).unwrap();
        let qs = queries(clamp, src);
        let (sols, report) = prep.solve_multi_rhs(&qs).unwrap();
        assert!(!report.blocked);
        assert_eq!(sols.len(), qs.len());

        // Same answers as sequential prepared CG solves.
        let mut seq = PreparedSystem::with_method(&net, SolveMethod::SparseCg(cg)).unwrap();
        for (q, got) in qs.iter().zip(&sols) {
            for &(id, u) in q {
                match u {
                    RhsUpdate::Current(a) => seq.set_current(id, a).unwrap(),
                    RhsUpdate::Clamp(v) => seq.set_clamp(id, v).unwrap(),
                }
            }
            let (want, _) = seq.solve_report().unwrap();
            assert_eq!(got.voltages(), want.voltages());
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (net, _, _) = ladder();
        let mut prep = PreparedSystem::new(&net).unwrap();
        let (sols, report) = prep.solve_multi_rhs(&[]).unwrap();
        assert!(sols.is_empty());
        assert_eq!(report.queries, 0);
        assert!(!report.blocked);
    }

    #[test]
    fn rejects_non_rhs_elements() {
        let (net, _, _) = ladder();
        let mut prep = PreparedSystem::new(&net).unwrap();
        // Element 1 is a resistor: neither a current source nor a clamp.
        let bad = vec![vec![(
            net.element_id(1).unwrap(),
            RhsUpdate::Current(Amps(1.0)),
        )]];
        assert!(matches!(
            prep.solve_multi_rhs(&bad),
            Err(CircuitError::InvalidParameter { .. })
        ));
    }
}
