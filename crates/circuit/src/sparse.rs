//! Sparse linear algebra: CSR matrices and a preconditioned conjugate
//! gradient solver.
//!
//! A parasitic model of the paper's 128 × 40 crossbar has
//! `2 · 128 · 40 ≈ 10⁴` circuit nodes but only ~5 non-zeros per MNA row
//! (two wire segments, one memristor, plus the diagonal), so the reduced
//! conductance matrix is large, sparse, symmetric and positive definite —
//! exactly the regime where Jacobi-preconditioned conjugate gradient is the
//! textbook solver.

use crate::CircuitError;

/// Triplet-based builder for a [`CsrMatrix`].
///
/// Duplicate `(row, col)` entries are summed, which matches the conductance
/// "stamping" pattern of nodal analysis: each resistor adds to four entries,
/// and parallel devices simply accumulate.
///
/// # Example
///
/// ```
/// use spinamm_circuit::sparse::SparseBuilder;
///
/// let mut b = SparseBuilder::new(2, 2);
/// b.add(0, 0, 2.0);
/// b.add(0, 0, 1.0); // accumulates: (0,0) == 3.0
/// b.add(1, 1, 4.0);
/// let m = b.build();
/// assert_eq!(m.get(0, 0), 3.0);
/// assert_eq!(m.get(0, 1), 0.0);
/// assert_eq!(m.nnz(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SparseBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl SparseBuilder {
    /// Creates an empty builder for a `rows × cols` matrix.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`, accumulating with any previous entry.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "sparse entry ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Number of raw (pre-deduplication) entries accumulated so far.
    #[must_use]
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Builds the CSR matrix, summing duplicates and dropping entries that
    /// cancel to exactly zero.
    #[must_use]
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);

        let mut iter = self.entries.into_iter().peekable();
        for row in 0..self.rows {
            while let Some(&(r, c, _)) = iter.peek() {
                if r != row {
                    break;
                }
                let mut sum = 0.0;
                while let Some(&(r2, c2, v)) = iter.peek() {
                    if r2 == row && c2 == c {
                        sum += v;
                        iter.next();
                    } else {
                        break;
                    }
                }
                if sum != 0.0 {
                    col_idx.push(c);
                    values.push(sum);
                }
            }
            row_ptr.push(col_idx.len());
        }

        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed-sparse-row matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(row, col)` (zero if not stored).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterator over the stored `(row, col, value)` triplets in row order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            self.col_idx[lo..hi]
                .iter()
                .zip(&self.values[lo..hi])
                .map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DimensionMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, CircuitError> {
        if x.len() != self.cols {
            return Err(CircuitError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        Ok(y)
    }

    /// Matrix–vector product into a caller-provided buffer (hot path of CG).
    fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut s = 0.0;
            for k in lo..hi {
                s += self.values[k] * x[self.col_idx[k]];
            }
            *yr = s;
        }
    }

    /// Maximum absolute asymmetry `max |a_ij − a_ji|` (zero for symmetric).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn asymmetry(&self) -> f64 {
        assert!(self.rows == self.cols, "asymmetry requires a square matrix");
        let mut worst = 0.0_f64;
        for (r, c, v) in self.iter() {
            if c > r {
                worst = worst.max((v - self.get(c, r)).abs());
            }
        }
        worst
    }

    /// The diagonal as a vector (missing diagonal entries are zero).
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }
}

/// Jacobi-preconditioned conjugate gradient solver for symmetric positive
/// definite systems.
///
/// # Example
///
/// ```
/// use spinamm_circuit::sparse::{ConjugateGradient, SparseBuilder};
///
/// # fn main() -> Result<(), spinamm_circuit::CircuitError> {
/// let mut b = SparseBuilder::new(2, 2);
/// b.add(0, 0, 4.0);
/// b.add(1, 1, 9.0);
/// let a = b.build();
/// let cg = ConjugateGradient::default();
/// let x = cg.solve(&a, &[8.0, 18.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-9);
/// assert!((x[1] - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConjugateGradient {
    /// Relative residual `‖b − A·x‖ / ‖b‖` at which iteration stops.
    pub tolerance: f64,
    /// Hard iteration cap; `None` defaults to `10 · n`.
    pub max_iterations: Option<usize>,
}

impl Default for ConjugateGradient {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iterations: None,
        }
    }
}

impl ConjugateGradient {
    /// Creates a solver with the given relative tolerance.
    #[must_use]
    pub fn new(tolerance: f64) -> Self {
        Self {
            tolerance,
            max_iterations: None,
        }
    }

    /// Solves `A·x = b` for symmetric positive definite `A`.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::DimensionMismatch`] if shapes disagree or `A` is not
    ///   square.
    /// * [`CircuitError::NotConverged`] if the iteration cap is hit before
    ///   the tolerance is met.
    /// * [`CircuitError::SingularSystem`] if a diagonal (Jacobi) entry is not
    ///   strictly positive — an SPD matrix always has a positive diagonal.
    pub fn solve(&self, a: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>, CircuitError> {
        self.solve_stats(a, b).map(|s| s.x)
    }

    /// Like [`ConjugateGradient::solve`], additionally reporting how many
    /// iterations the solve took and the final relative residual.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConjugateGradient::solve`].
    pub fn solve_stats(&self, a: &CsrMatrix, b: &[f64]) -> Result<CgSolution, CircuitError> {
        if a.rows() != a.cols() {
            return Err(CircuitError::DimensionMismatch {
                expected: a.rows(),
                found: a.cols(),
            });
        }
        if b.len() != a.rows() {
            return Err(CircuitError::DimensionMismatch {
                expected: a.rows(),
                found: b.len(),
            });
        }
        let n = a.rows();
        let b_norm = norm2(b);
        if b_norm == 0.0 {
            return Ok(CgSolution {
                x: vec![0.0; n],
                iterations: 0,
                residual: 0.0,
            });
        }

        let diag = a.diagonal();
        let mut inv_diag = vec![0.0; n];
        for (i, &d) in diag.iter().enumerate() {
            if d <= 0.0 {
                return Err(CircuitError::SingularSystem { pivot: i });
            }
            inv_diag[i] = 1.0 / d;
        }

        let max_iter = self.max_iterations.unwrap_or(10 * n.max(10));
        let mut x = vec![0.0; n];
        let mut r = b.to_vec();
        let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
        let mut p = z.clone();
        let mut rz: f64 = dot(&r, &z);
        let mut ap = vec![0.0; n];

        for iter in 0..max_iter {
            a.matvec_into(&p, &mut ap);
            let pap = dot(&p, &ap);
            if pap <= 0.0 {
                // Not SPD along this direction — report as singular.
                return Err(CircuitError::SingularSystem { pivot: iter });
            }
            let alpha = rz / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let res = norm2(&r) / b_norm;
            if res <= self.tolerance {
                return Ok(CgSolution {
                    x,
                    iterations: iter + 1,
                    residual: res,
                });
            }
            for i in 0..n {
                z[i] = r[i] * inv_diag[i];
            }
            let rz_next = dot(&r, &z);
            let beta = rz_next / rz;
            rz = rz_next;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }

        Err(CircuitError::NotConverged {
            iterations: max_iter,
            residual: norm2(&r) / b_norm,
        })
    }
}

/// A converged conjugate-gradient solution with its iteration statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations taken to converge (0 for a zero right-hand side).
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖`.
    pub residual: f64,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the standard 1-D Laplacian (tridiagonal [−1, 2, −1]) with
    /// Dirichlet ends — the archetype of a reduced resistive-ladder matrix.
    fn laplacian(n: usize) -> CsrMatrix {
        let mut b = SparseBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn builder_accumulates_duplicates() {
        let mut b = SparseBuilder::new(3, 3);
        b.add(1, 1, 1.5);
        b.add(1, 1, 2.5);
        b.add(0, 2, -1.0);
        b.add(0, 2, 1.0); // cancels to zero → dropped
        assert_eq!(b.raw_len(), 4);
        let m = b.build();
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn zero_values_are_not_stored() {
        let mut b = SparseBuilder::new(2, 2);
        b.add(0, 0, 0.0);
        let m = b.build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn csr_iter_is_row_ordered() {
        let mut b = SparseBuilder::new(2, 3);
        b.add(1, 0, 3.0);
        b.add(0, 2, 1.0);
        b.add(0, 0, 2.0);
        let m = b.build();
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(triplets, vec![(0, 0, 2.0), (0, 2, 1.0), (1, 0, 3.0)]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = laplacian(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = m.matvec(&x).unwrap();
        assert_eq!(y, vec![0.0, 0.0, 0.0, 0.0, 6.0]);
    }

    #[test]
    fn matvec_dimension_check() {
        let m = laplacian(3);
        assert!(matches!(
            m.matvec(&[1.0, 2.0]),
            Err(CircuitError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn laplacian_is_symmetric() {
        assert_eq!(laplacian(8).asymmetry(), 0.0);
    }

    #[test]
    fn cg_solves_laplacian() {
        let n = 50;
        let a = laplacian(n);
        // Manufactured solution.
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = ConjugateGradient::default().solve(&a, &b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let a = laplacian(4);
        let x = ConjugateGradient::default().solve(&a, &[0.0; 4]).unwrap();
        assert_eq!(x, vec![0.0; 4]);
    }

    #[test]
    fn cg_rejects_nonpositive_diagonal() {
        let mut b = SparseBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        // (1,1) missing → zero diagonal.
        let a = b.build();
        assert!(matches!(
            ConjugateGradient::default().solve(&a, &[1.0, 1.0]),
            Err(CircuitError::SingularSystem { .. })
        ));
    }

    #[test]
    fn cg_reports_nonconvergence() {
        let a = laplacian(100);
        let b = vec![1.0; 100];
        let cg = ConjugateGradient {
            tolerance: 1e-14,
            max_iterations: Some(2),
        };
        assert!(matches!(
            cg.solve(&a, &b),
            Err(CircuitError::NotConverged { iterations: 2, .. })
        ));
    }

    #[test]
    fn cg_dimension_checks() {
        let a = laplacian(3);
        assert!(matches!(
            ConjugateGradient::default().solve(&a, &[1.0, 2.0]),
            Err(CircuitError::DimensionMismatch { .. })
        ));
        let mut rect = SparseBuilder::new(2, 3);
        rect.add(0, 0, 1.0);
        let rect = rect.build();
        assert!(matches!(
            ConjugateGradient::default().solve(&rect, &[1.0, 2.0]),
            Err(CircuitError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn badly_conditioned_conductance_scales() {
        // Conductances spanning 200 Ω … 32 kΩ plus 1 Ω/µm wire segments give
        // entries over ~4 decades; Jacobi preconditioning must still converge.
        let n = 200;
        let mut bld = SparseBuilder::new(n, n);
        for i in 0..n {
            let g_wire = 1.0; // 1 S segment
            let g_mem = if i % 2 == 0 {
                1.0 / 200.0
            } else {
                1.0 / 32_000.0
            };
            bld.add(i, i, 2.0 * g_wire + g_mem);
            if i > 0 {
                bld.add(i, i - 1, -g_wire);
            }
            if i + 1 < n {
                bld.add(i, i + 1, -g_wire);
            }
        }
        let a = bld.build();
        let x_true: Vec<f64> = (0..n).map(|i| 1e-3 * (i as f64).cos()).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = ConjugateGradient::new(1e-12).solve(&a, &b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn builder_bounds_check() {
        let mut b = SparseBuilder::new(2, 2);
        b.add(2, 0, 1.0);
    }
}
