//! Sparse linear algebra: CSR matrices and a preconditioned conjugate
//! gradient solver.
//!
//! A parasitic model of the paper's 128 × 40 crossbar has
//! `2 · 128 · 40 ≈ 10⁴` circuit nodes but only ~5 non-zeros per MNA row
//! (two wire segments, one memristor, plus the diagonal), so the reduced
//! conductance matrix is large, sparse, symmetric and positive definite —
//! exactly the regime where Jacobi-preconditioned conjugate gradient is the
//! textbook solver.

use crate::CircuitError;

/// Triplet-based builder for a [`CsrMatrix`].
///
/// Duplicate `(row, col)` entries are summed, which matches the conductance
/// "stamping" pattern of nodal analysis: each resistor adds to four entries,
/// and parallel devices simply accumulate.
///
/// # Example
///
/// ```
/// use spinamm_circuit::sparse::SparseBuilder;
///
/// let mut b = SparseBuilder::new(2, 2);
/// b.add(0, 0, 2.0);
/// b.add(0, 0, 1.0); // accumulates: (0,0) == 3.0
/// b.add(1, 1, 4.0);
/// let m = b.build();
/// assert_eq!(m.get(0, 0), 3.0);
/// assert_eq!(m.get(0, 1), 0.0);
/// assert_eq!(m.nnz(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SparseBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl SparseBuilder {
    /// Creates an empty builder for a `rows × cols` matrix.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`, accumulating with any previous entry.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "sparse entry ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Reserves a structural slot at `(row, col)` without contributing any
    /// value. Unlike [`SparseBuilder::add`] with `0.0` (which is dropped),
    /// a reserved slot survives [`SparseBuilder::build_pattern`] so the
    /// entry can later be restamped in place — e.g. a conductance that is
    /// zero for this query but non-zero for the next.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn reserve(&mut self, row: usize, col: usize) {
        assert!(
            row < self.rows && col < self.cols,
            "sparse entry ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, 0.0));
    }

    /// Number of raw (pre-deduplication) entries accumulated so far.
    #[must_use]
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Builds the CSR matrix, summing duplicates and dropping entries that
    /// cancel to exactly zero.
    #[must_use]
    pub fn build(self) -> CsrMatrix {
        self.build_impl(false)
    }

    /// Builds the CSR matrix keeping *every* distinct `(row, col)` slot,
    /// including exact zeros (from [`SparseBuilder::reserve`] or values that
    /// cancel). This fixes the sparsity pattern once so repeated solves can
    /// restamp values through [`CsrMatrix::values_mut`] /
    /// [`CsrMatrix::position`] without re-sorting triplets every build.
    #[must_use]
    pub fn build_pattern(self) -> CsrMatrix {
        self.build_impl(true)
    }

    fn build_impl(mut self, keep_zeros: bool) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);

        let mut iter = self.entries.into_iter().peekable();
        for row in 0..self.rows {
            while let Some(&(r, c, _)) = iter.peek() {
                if r != row {
                    break;
                }
                let mut sum = 0.0;
                while let Some(&(r2, c2, v)) = iter.peek() {
                    if r2 == row && c2 == c {
                        sum += v;
                        iter.next();
                    } else {
                        break;
                    }
                }
                if keep_zeros || sum != 0.0 {
                    col_idx.push(c);
                    values.push(sum);
                }
            }
            row_ptr.push(col_idx.len());
        }

        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed-sparse-row matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(row, col)` (zero if not stored).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Index of the stored slot `(row, col)` into [`CsrMatrix::values`], or
    /// `None` if the pattern has no such slot. Use with
    /// [`CsrMatrix::values_mut`] to restamp a value in place.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[must_use]
    pub fn position(&self, row: usize, col: usize) -> Option<usize> {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        self.col_idx[lo..hi]
            .binary_search(&col)
            .ok()
            .map(|k| lo + k)
    }

    /// The stored values in row order (parallel to the pattern).
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values for in-place restamping. The
    /// sparsity pattern itself is immutable; only the numbers change.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Zeroes every stored value while keeping the pattern — the first step
    /// of a deterministic full restamp (accumulate into slots afterwards).
    pub fn clear_values(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Iterator over the stored `(row, col, value)` triplets in row order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            self.col_idx[lo..hi]
                .iter()
                .zip(&self.values[lo..hi])
                .map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DimensionMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, CircuitError> {
        if x.len() != self.cols {
            return Err(CircuitError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        Ok(y)
    }

    /// Matrix–vector product into a caller-provided buffer (hot path of CG).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert!(
            x.len() == self.cols && y.len() == self.rows,
            "matvec buffers do not match matrix shape"
        );
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut s = 0.0;
            for k in lo..hi {
                s += self.values[k] * x[self.col_idx[k]];
            }
            *yr = s;
        }
    }

    /// Maximum absolute asymmetry `max |a_ij − a_ji|` (zero for symmetric).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn asymmetry(&self) -> f64 {
        assert!(self.rows == self.cols, "asymmetry requires a square matrix");
        let mut worst = 0.0_f64;
        for (r, c, v) in self.iter() {
            if c > r {
                worst = worst.max((v - self.get(c, r)).abs());
            }
        }
        worst
    }

    /// The diagonal as a vector (missing diagonal entries are zero).
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }
}

/// Jacobi-preconditioned conjugate gradient solver for symmetric positive
/// definite systems.
///
/// # Example
///
/// ```
/// use spinamm_circuit::sparse::{ConjugateGradient, SparseBuilder};
///
/// # fn main() -> Result<(), spinamm_circuit::CircuitError> {
/// let mut b = SparseBuilder::new(2, 2);
/// b.add(0, 0, 4.0);
/// b.add(1, 1, 9.0);
/// let a = b.build();
/// let cg = ConjugateGradient::default();
/// let x = cg.solve(&a, &[8.0, 18.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-9);
/// assert!((x[1] - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConjugateGradient {
    /// Relative residual `‖b − A·x‖ / ‖b‖` at which iteration stops.
    pub tolerance: f64,
    /// Hard iteration cap; `None` defaults to `10 · n`.
    pub max_iterations: Option<usize>,
}

impl Default for ConjugateGradient {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iterations: None,
        }
    }
}

impl ConjugateGradient {
    /// Creates a solver with the given relative tolerance.
    #[must_use]
    pub fn new(tolerance: f64) -> Self {
        Self {
            tolerance,
            max_iterations: None,
        }
    }

    /// Solves `A·x = b` for symmetric positive definite `A`.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::DimensionMismatch`] if shapes disagree or `A` is not
    ///   square.
    /// * [`CircuitError::NotConverged`] if the iteration cap is hit before
    ///   the tolerance is met.
    /// * [`CircuitError::SingularSystem`] if a diagonal (Jacobi) entry is not
    ///   strictly positive — an SPD matrix always has a positive diagonal.
    pub fn solve(&self, a: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>, CircuitError> {
        self.solve_stats(a, b).map(|s| s.x)
    }

    /// Like [`ConjugateGradient::solve`], additionally reporting how many
    /// iterations the solve took and the final relative residual.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConjugateGradient::solve`].
    pub fn solve_stats(&self, a: &CsrMatrix, b: &[f64]) -> Result<CgSolution, CircuitError> {
        let mut ws = CgWorkspace::new();
        let run = self.solve_into(a, b, None, None, &mut ws)?;
        Ok(CgSolution {
            x: std::mem::take(&mut ws.x),
            iterations: run.iterations,
            residual: run.residual,
        })
    }

    /// Workspace-reusing solve for repeated systems: scratch vectors live in
    /// `ws` (no per-call allocation once sized), `x0` optionally warm-starts
    /// the iteration, and `precond` swaps the default Jacobi preconditioner
    /// for a cached incomplete Cholesky factor. The solution is left in
    /// [`CgWorkspace::solution`].
    ///
    /// With `x0 = None` and `precond = None` the iterates are bitwise
    /// identical to [`ConjugateGradient::solve_stats`].
    ///
    /// A warm start whose residual already meets the tolerance returns with
    /// zero iterations.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConjugateGradient::solve`], plus
    /// [`CircuitError::DimensionMismatch`] if `x0` or `precond` does not
    /// match the system size.
    pub fn solve_into(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x0: Option<&[f64]>,
        precond: Option<&IncompleteCholesky>,
        ws: &mut CgWorkspace,
    ) -> Result<CgRun, CircuitError> {
        if a.rows() != a.cols() {
            return Err(CircuitError::DimensionMismatch {
                expected: a.rows(),
                found: a.cols(),
            });
        }
        if b.len() != a.rows() {
            return Err(CircuitError::DimensionMismatch {
                expected: a.rows(),
                found: b.len(),
            });
        }
        let n = a.rows();
        if let Some(x0) = x0 {
            if x0.len() != n {
                return Err(CircuitError::DimensionMismatch {
                    expected: n,
                    found: x0.len(),
                });
            }
        }
        if let Some(ic) = precond {
            if ic.dim() != n {
                return Err(CircuitError::DimensionMismatch {
                    expected: n,
                    found: ic.dim(),
                });
            }
        }
        let b_norm = norm2(b);
        if b_norm == 0.0 {
            ws.resize(n);
            ws.x.iter_mut().for_each(|v| *v = 0.0);
            return Ok(CgRun {
                iterations: 0,
                residual: 0.0,
            });
        }

        if precond.is_none() {
            ws.inv_diag.resize(n, 0.0);
            for i in 0..n {
                let d = a.get(i, i);
                if d <= 0.0 {
                    return Err(CircuitError::SingularSystem { pivot: i });
                }
                ws.inv_diag[i] = 1.0 / d;
            }
        }

        ws.resize(n);
        match x0 {
            Some(x0) => {
                ws.x.copy_from_slice(x0);
                a.matvec_into(&ws.x, &mut ws.ap);
                for (i, &bi) in b.iter().enumerate() {
                    ws.r[i] = bi - ws.ap[i];
                }
                let res = norm2(&ws.r) / b_norm;
                if res <= self.tolerance {
                    return Ok(CgRun {
                        iterations: 0,
                        residual: res,
                    });
                }
            }
            None => {
                ws.x.iter_mut().for_each(|v| *v = 0.0);
                ws.r.copy_from_slice(b);
            }
        }
        match precond {
            Some(ic) => ic.apply(&ws.r, &mut ws.z),
            None => {
                for i in 0..n {
                    ws.z[i] = ws.r[i] * ws.inv_diag[i];
                }
            }
        }
        ws.p.copy_from_slice(&ws.z);
        let mut rz: f64 = dot(&ws.r, &ws.z);

        let max_iter = self.max_iterations.unwrap_or(10 * n.max(10));
        for iter in 0..max_iter {
            a.matvec_into(&ws.p, &mut ws.ap);
            let pap = dot(&ws.p, &ws.ap);
            if pap <= 0.0 {
                // Not SPD along this direction — report as singular.
                return Err(CircuitError::SingularSystem { pivot: iter });
            }
            let alpha = rz / pap;
            for i in 0..n {
                ws.x[i] += alpha * ws.p[i];
                ws.r[i] -= alpha * ws.ap[i];
            }
            let res = norm2(&ws.r) / b_norm;
            if res <= self.tolerance {
                return Ok(CgRun {
                    iterations: iter + 1,
                    residual: res,
                });
            }
            match precond {
                Some(ic) => ic.apply(&ws.r, &mut ws.z),
                None => {
                    for i in 0..n {
                        ws.z[i] = ws.r[i] * ws.inv_diag[i];
                    }
                }
            }
            let rz_next = dot(&ws.r, &ws.z);
            let beta = rz_next / rz;
            rz = rz_next;
            for i in 0..n {
                ws.p[i] = ws.z[i] + beta * ws.p[i];
            }
        }

        Err(CircuitError::NotConverged {
            iterations: max_iter,
            residual: norm2(&ws.r) / b_norm,
        })
    }
}

/// Preallocated scratch vectors for [`ConjugateGradient::solve_into`]. One
/// workspace per solving context amortizes all per-solve allocation across a
/// sweep; after a solve the result stays readable via
/// [`CgWorkspace::solution`].
#[derive(Debug, Clone, Default)]
pub struct CgWorkspace {
    x: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    inv_diag: Vec<f64>,
}

impl CgWorkspace {
    /// An empty workspace; buffers are sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The solution vector left by the most recent solve (empty before any).
    #[must_use]
    pub fn solution(&self) -> &[f64] {
        &self.x
    }

    fn resize(&mut self, n: usize) {
        self.x.resize(n, 0.0);
        self.r.resize(n, 0.0);
        self.z.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.ap.resize(n, 0.0);
    }
}

/// Iteration statistics from a workspace solve; the solution itself stays in
/// the [`CgWorkspace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgRun {
    /// Iterations taken (0 for a zero right-hand side or a warm start that
    /// already meets the tolerance).
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖`.
    pub residual: f64,
}

/// Zero-fill-in incomplete Cholesky factor `L·Lᵀ ≈ A` on the lower-triangle
/// sparsity pattern of `A` — the classic IC(0) preconditioner.
///
/// For the M-matrices produced by conductance stamping (positive diagonal,
/// non-positive off-diagonals, diagonally dominant) the factorization exists
/// without breakdown, and because CG convergence is judged on the *true*
/// residual, a slightly stale factor only costs iterations, never accuracy —
/// which is what makes it safe to compute once per prepared system and reuse
/// while only the small DAC diagonal entries move between solves.
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl IncompleteCholesky {
    /// Factors the lower triangle of `a` in IC(0) fashion.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::DimensionMismatch`] if `a` is not square.
    /// * [`CircuitError::SingularSystem`] if a diagonal slot is missing from
    ///   the pattern or a pivot is not strictly positive (breakdown).
    pub fn factor(a: &CsrMatrix) -> Result<Self, CircuitError> {
        if a.rows() != a.cols() {
            return Err(CircuitError::DimensionMismatch {
                expected: a.rows(),
                found: a.cols(),
            });
        }
        let n = a.rows();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut row = 0;
        for (r, c, v) in a.iter() {
            while row < r {
                row += 1;
                row_ptr.push(col_idx.len());
            }
            if c <= r {
                col_idx.push(c);
                values.push(v);
            }
        }
        while row < n {
            row += 1;
            row_ptr.push(col_idx.len());
        }
        // Each lower-triangular row must end on its diagonal slot.
        for i in 0..n {
            let hi = row_ptr[i + 1];
            if hi == row_ptr[i] || col_idx[hi - 1] != i {
                return Err(CircuitError::SingularSystem { pivot: i });
            }
        }

        // In-place row-oriented IC(0): when slot (i, j) is reached, row j
        // (j < i) and the earlier part of row i are already factored.
        for i in 0..n {
            let ilo = row_ptr[i];
            let ihi = row_ptr[i + 1];
            for idx in ilo..ihi {
                let j = col_idx[idx];
                let mut s = values[idx];
                if j < i {
                    // s = A[i][j] − Σ_{k<j} L[i][k]·L[j][k] over shared slots.
                    let jlo = row_ptr[j];
                    let jdiag = row_ptr[j + 1] - 1;
                    let mut ka = ilo;
                    let mut kb = jlo;
                    while ka < idx && kb < jdiag {
                        match col_idx[ka].cmp(&col_idx[kb]) {
                            std::cmp::Ordering::Equal => {
                                s -= values[ka] * values[kb];
                                ka += 1;
                                kb += 1;
                            }
                            std::cmp::Ordering::Less => ka += 1,
                            std::cmp::Ordering::Greater => kb += 1,
                        }
                    }
                    values[idx] = s / values[jdiag];
                } else {
                    // Diagonal: s = A[i][i] − Σ_{k<i} L[i][k]².
                    for &lv in &values[ilo..idx] {
                        s -= lv * lv;
                    }
                    if s <= 0.0 {
                        return Err(CircuitError::SingularSystem { pivot: i });
                    }
                    values[idx] = s.sqrt();
                }
            }
        }
        Ok(Self {
            n,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// System dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Applies the preconditioner: `z = (L·Lᵀ)⁻¹ r` via forward then
    /// backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `z` does not match the factor dimension.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert!(
            r.len() == self.n && z.len() == self.n,
            "preconditioner buffers do not match factor dimension"
        );
        z.copy_from_slice(r);
        // Forward: L·y = r.
        for i in 0..self.n {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut s = z[i];
            for k in lo..hi - 1 {
                s -= self.values[k] * z[self.col_idx[k]];
            }
            z[i] = s / self.values[hi - 1];
        }
        // Backward: Lᵀ·z = y, scattering column i of Lᵀ from row i of L.
        for i in (0..self.n).rev() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            z[i] /= self.values[hi - 1];
            let zi = z[i];
            for k in lo..hi - 1 {
                z[self.col_idx[k]] -= self.values[k] * zi;
            }
        }
    }
}

/// A converged conjugate-gradient solution with its iteration statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations taken to converge (0 for a zero right-hand side).
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖`.
    pub residual: f64,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the standard 1-D Laplacian (tridiagonal [−1, 2, −1]) with
    /// Dirichlet ends — the archetype of a reduced resistive-ladder matrix.
    fn laplacian(n: usize) -> CsrMatrix {
        let mut b = SparseBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn builder_accumulates_duplicates() {
        let mut b = SparseBuilder::new(3, 3);
        b.add(1, 1, 1.5);
        b.add(1, 1, 2.5);
        b.add(0, 2, -1.0);
        b.add(0, 2, 1.0); // cancels to zero → dropped
        assert_eq!(b.raw_len(), 4);
        let m = b.build();
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn zero_values_are_not_stored() {
        let mut b = SparseBuilder::new(2, 2);
        b.add(0, 0, 0.0);
        let m = b.build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn csr_iter_is_row_ordered() {
        let mut b = SparseBuilder::new(2, 3);
        b.add(1, 0, 3.0);
        b.add(0, 2, 1.0);
        b.add(0, 0, 2.0);
        let m = b.build();
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(triplets, vec![(0, 0, 2.0), (0, 2, 1.0), (1, 0, 3.0)]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = laplacian(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = m.matvec(&x).unwrap();
        assert_eq!(y, vec![0.0, 0.0, 0.0, 0.0, 6.0]);
    }

    #[test]
    fn matvec_dimension_check() {
        let m = laplacian(3);
        assert!(matches!(
            m.matvec(&[1.0, 2.0]),
            Err(CircuitError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn laplacian_is_symmetric() {
        assert_eq!(laplacian(8).asymmetry(), 0.0);
    }

    #[test]
    fn cg_solves_laplacian() {
        let n = 50;
        let a = laplacian(n);
        // Manufactured solution.
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = ConjugateGradient::default().solve(&a, &b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let a = laplacian(4);
        let x = ConjugateGradient::default().solve(&a, &[0.0; 4]).unwrap();
        assert_eq!(x, vec![0.0; 4]);
    }

    #[test]
    fn cg_rejects_nonpositive_diagonal() {
        let mut b = SparseBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        // (1,1) missing → zero diagonal.
        let a = b.build();
        assert!(matches!(
            ConjugateGradient::default().solve(&a, &[1.0, 1.0]),
            Err(CircuitError::SingularSystem { .. })
        ));
    }

    #[test]
    fn cg_reports_nonconvergence() {
        let a = laplacian(100);
        let b = vec![1.0; 100];
        let cg = ConjugateGradient {
            tolerance: 1e-14,
            max_iterations: Some(2),
        };
        assert!(matches!(
            cg.solve(&a, &b),
            Err(CircuitError::NotConverged { iterations: 2, .. })
        ));
    }

    #[test]
    fn cg_dimension_checks() {
        let a = laplacian(3);
        assert!(matches!(
            ConjugateGradient::default().solve(&a, &[1.0, 2.0]),
            Err(CircuitError::DimensionMismatch { .. })
        ));
        let mut rect = SparseBuilder::new(2, 3);
        rect.add(0, 0, 1.0);
        let rect = rect.build();
        assert!(matches!(
            ConjugateGradient::default().solve(&rect, &[1.0, 2.0]),
            Err(CircuitError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn badly_conditioned_conductance_scales() {
        // Conductances spanning 200 Ω … 32 kΩ plus 1 Ω/µm wire segments give
        // entries over ~4 decades; Jacobi preconditioning must still converge.
        let n = 200;
        let mut bld = SparseBuilder::new(n, n);
        for i in 0..n {
            let g_wire = 1.0; // 1 S segment
            let g_mem = if i % 2 == 0 {
                1.0 / 200.0
            } else {
                1.0 / 32_000.0
            };
            bld.add(i, i, 2.0 * g_wire + g_mem);
            if i > 0 {
                bld.add(i, i - 1, -g_wire);
            }
            if i + 1 < n {
                bld.add(i, i + 1, -g_wire);
            }
        }
        let a = bld.build();
        let x_true: Vec<f64> = (0..n).map(|i| 1e-3 * (i as f64).cos()).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = ConjugateGradient::new(1e-12).solve(&a, &b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn builder_bounds_check() {
        let mut b = SparseBuilder::new(2, 2);
        b.add(2, 0, 1.0);
    }

    #[test]
    fn pattern_build_keeps_reserved_zero_slots() {
        let mut b = SparseBuilder::new(2, 2);
        b.reserve(0, 0);
        b.add(1, 1, 3.0);
        b.add(1, 0, -1.0);
        b.add(1, 0, 1.0); // cancels to zero but the slot must survive
        let mut m = b.build_pattern();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 0), 0.0);
        // The zero slot is restampable in place.
        let slot00 = m.position(0, 0).unwrap();
        m.values_mut()[slot00] = 5.0;
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.position(0, 1), None);
    }

    #[test]
    fn clear_values_keeps_pattern() {
        let mut b = SparseBuilder::new(2, 2);
        b.add(0, 0, 2.0);
        b.add(1, 1, 3.0);
        let mut m = b.build_pattern();
        m.clear_values();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.position(1, 1), Some(1));
    }

    #[test]
    fn restamped_pattern_solve_matches_fresh_build() {
        // Stamp the laplacian into a fixed pattern, solve, restamp with
        // different conductances, and check against a cold build.
        let n = 30;
        let mut b = SparseBuilder::new(n, n);
        for i in 0..n {
            b.reserve(i, i);
            if i > 0 {
                b.reserve(i, i - 1);
            }
            if i + 1 < n {
                b.reserve(i, i + 1);
            }
        }
        let mut m = b.build_pattern();
        for scale in [1.0, 2.5] {
            m.clear_values();
            let mut fresh = SparseBuilder::new(n, n);
            for i in 0..n {
                let slot = m.position(i, i).unwrap();
                m.values_mut()[slot] = 2.0 * scale;
                fresh.add(i, i, 2.0 * scale);
                if i > 0 {
                    let slot = m.position(i, i - 1).unwrap();
                    m.values_mut()[slot] = -scale;
                    fresh.add(i, i - 1, -scale);
                }
                if i + 1 < n {
                    let slot = m.position(i, i + 1).unwrap();
                    m.values_mut()[slot] = -scale;
                    fresh.add(i, i + 1, -scale);
                }
            }
            let fresh = fresh.build();
            let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
            let cg = ConjugateGradient::default();
            let xa = cg.solve(&m, &rhs).unwrap();
            let xb = cg.solve(&fresh, &rhs).unwrap();
            assert_eq!(xa, xb, "restamped pattern must solve identically");
        }
    }

    #[test]
    fn solve_into_cold_matches_solve_stats_bitwise() {
        let a = laplacian(64);
        let rhs: Vec<f64> = (0..64).map(|i| (i as f64 * 0.17).sin()).collect();
        let cg = ConjugateGradient::default();
        let cold = cg.solve_stats(&a, &rhs).unwrap();
        let mut ws = CgWorkspace::new();
        let run = cg.solve_into(&a, &rhs, None, None, &mut ws).unwrap();
        assert_eq!(ws.solution(), cold.x.as_slice());
        assert_eq!(run.iterations, cold.iterations);
        assert_eq!(run.residual, cold.residual);
    }

    #[test]
    fn warm_start_from_solution_converges_immediately() {
        let a = laplacian(40);
        let rhs: Vec<f64> = (0..40).map(|i| (i as f64 * 0.2).sin()).collect();
        let cg = ConjugateGradient::default();
        let mut ws = CgWorkspace::new();
        let cold = cg.solve_into(&a, &rhs, None, None, &mut ws).unwrap();
        assert!(cold.iterations > 0);
        let x = ws.solution().to_vec();
        let warm = cg.solve_into(&a, &rhs, Some(&x), None, &mut ws).unwrap();
        assert_eq!(warm.iterations, 0, "exact warm start should be free");
        assert_eq!(ws.solution(), x.as_slice());
    }

    #[test]
    fn warm_start_near_solution_saves_iterations() {
        // Diagonally dominant tridiagonal (the wire-dominated crossbar
        // regime): smooth geometric CG convergence, so a warm start with a
        // small initial residual reliably needs fewer sweeps.
        let n = 80;
        let mut b = SparseBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 4.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        let a = b.build();
        let rhs: Vec<f64> = (0..80).map(|i| (i as f64 * 0.11).cos()).collect();
        let cg = ConjugateGradient::default();
        let mut ws = CgWorkspace::new();
        let cold = cg.solve_into(&a, &rhs, None, None, &mut ws).unwrap();
        // Perturb the RHS slightly — the old solution is a good guess.
        let rhs2: Vec<f64> = rhs.iter().map(|v| v * 1.001).collect();
        let x0 = ws.solution().to_vec();
        let warm = cg.solve_into(&a, &rhs2, Some(&x0), None, &mut ws).unwrap();
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        let check = a.matvec(ws.solution()).unwrap();
        for (u, v) in check.iter().zip(&rhs2) {
            assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn solve_into_dimension_checks() {
        let a = laplacian(4);
        let mut ws = CgWorkspace::new();
        let cg = ConjugateGradient::default();
        assert!(matches!(
            cg.solve_into(&a, &[1.0; 4], Some(&[0.0; 3]), None, &mut ws),
            Err(CircuitError::DimensionMismatch { .. })
        ));
        let ic = IncompleteCholesky::factor(&laplacian(5)).unwrap();
        assert!(matches!(
            cg.solve_into(&a, &[1.0; 4], None, Some(&ic), &mut ws),
            Err(CircuitError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn incomplete_cholesky_is_exact_on_tridiagonal() {
        // IC(0) on a tridiagonal SPD matrix has no dropped fill, so the
        // preconditioned solve converges in O(1) iterations.
        let a = laplacian(120);
        let rhs: Vec<f64> = (0..120).map(|i| (i as f64 * 0.07).sin()).collect();
        let cg = ConjugateGradient::default();
        let mut ws = CgWorkspace::new();
        let jacobi = cg.solve_into(&a, &rhs, None, None, &mut ws).unwrap();
        let x_jacobi = ws.solution().to_vec();
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let pcg = cg.solve_into(&a, &rhs, None, Some(&ic), &mut ws).unwrap();
        assert!(
            pcg.iterations * 4 < jacobi.iterations,
            "ic {} vs jacobi {}",
            pcg.iterations,
            jacobi.iterations
        );
        for (u, v) in ws.solution().iter().zip(&x_jacobi) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn stale_preconditioner_still_solves_exactly() {
        // Factor for one matrix, solve a *perturbed* one: convergence is on
        // the true residual, so the answer is still correct.
        let a = laplacian(60);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let mut b = SparseBuilder::new(60, 60);
        for (r, c, v) in a.iter() {
            b.add(r, c, if r == c { v + 0.05 } else { v });
        }
        let a2 = b.build();
        let rhs: Vec<f64> = (0..60).map(|i| (i as f64 * 0.13).cos()).collect();
        let cg = ConjugateGradient::default();
        let mut ws = CgWorkspace::new();
        cg.solve_into(&a2, &rhs, None, Some(&ic), &mut ws).unwrap();
        let check = a2.matvec(ws.solution()).unwrap();
        for (u, v) in check.iter().zip(&rhs) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn incomplete_cholesky_rejects_missing_diagonal() {
        let mut b = SparseBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(1, 0, -0.5); // (1,1) missing
        let a = b.build();
        assert!(matches!(
            IncompleteCholesky::factor(&a),
            Err(CircuitError::SingularSystem { pivot: 1 })
        ));
    }

    #[test]
    fn incomplete_cholesky_rejects_indefinite() {
        let mut b = SparseBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 4.0);
        b.add(1, 0, 4.0);
        b.add(1, 1, 1.0); // pivot 1 − 16 < 0
        let a = b.build();
        assert!(matches!(
            IncompleteCholesky::factor(&a),
            Err(CircuitError::SingularSystem { pivot: 1 })
        ));
    }
}
