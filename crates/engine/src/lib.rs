//! Sharded concurrent recall engine — the serving layer over
//! [`spinamm_core`]'s associative memory deployments.
//!
//! The paper's §5 scaling story stores patterns across many small RCM
//! modules (row partitions or cluster hierarchies) that evaluate
//! concurrently in hardware. [`RecallEngine`] reproduces that organization
//! in the simulator as a long-lived, thread-pooled service:
//!
//! * queries enter through a **bounded submission queue** ([`RecallEngine::submit`]
//!   blocks for space, [`RecallEngine::try_submit`] reports
//!   [`EngineError::QueueFull`] — backpressure instead of unbounded memory);
//! * **worker threads** — each owning a clone of the deployment with its
//!   canonically warmed solver sessions — run the RNG-free
//!   drive/settle/solve phase of whichever query is next;
//! * a **sequencer thread** owning the master deployment applies the
//!   RNG-consuming ADC/WTA selection phase strictly in submission order.
//!
//! Because the evaluation phase is deterministic and order-independent
//! (fixed warm-start reference pinned at build time) and the stochastic
//! phase consumes each module's RNG in exactly the sequential order, every
//! response is **bit-identical** to calling the deployment's `recall` once
//! per query in submission order — at any worker count, queue capacity, or
//! thread interleaving. Hierarchical deployments pipeline in two stages:
//! the top (centroid) selection gates which cluster evaluates, so the
//! sequencer re-dispatches a stage-B job on an internal queue that workers
//! drain with priority. Tiled capacity pools ([`Deployment::Tiled`])
//! evaluate every tile of a query in one worker phase — through the pool's
//! embedded per-tile plans — and the sequencer's in-order select phase
//! digitizes tiles in fixed tile order, so ranked top-k responses carry
//! the same bit-identity guarantee.
//!
//! ```
//! use spinamm_core::amm::{AmmConfig, AssociativeMemoryModule};
//! use spinamm_engine::{Deployment, EngineConfig, RecallEngine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let patterns = vec![vec![31, 0, 31, 0], vec![0, 31, 0, 31]];
//! let module = AssociativeMemoryModule::build(&patterns, &AmmConfig::default())?;
//! let mut sequential = Deployment::Flat(module.clone());
//!
//! let engine = RecallEngine::new(
//!     Deployment::Flat(module),
//!     &EngineConfig::builder().workers(2).queue_capacity(8).use_plans(false).build(),
//! );
//! let responses = engine.recall_many(&patterns)?;
//! for (input, response) in patterns.iter().zip(&responses) {
//!     assert_eq!(response, &sequential.recall(input)?);
//! }
//! engine.shutdown();
//! # Ok(())
//! # }
//! ```

use spinamm_core::amm::{AssociativeMemoryModule, QueryEvaluation, RecallResult};
use spinamm_core::capacity::{TiledAmm, TiledRecall};
use spinamm_core::hierarchy::{HierarchicalAmm, HierarchicalRecall};
use spinamm_core::partition::{PartitionedAmm, PartitionedRecall};
use spinamm_core::plan::{HierarchicalPlan, PartitionedPlan, PlanOptions, RecallPlan};
use spinamm_core::request::RecallRequest;
use spinamm_core::CoreError;
use spinamm_telemetry::{NoopRecorder, Recorder};
use spinamm_trace::{ReqHandle, TraceCtx, Tracer};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The recorder type an engine shares across its threads.
pub type SharedRecorder = Arc<dyn Recorder + Send + Sync>;

/// One-stop imports for engine users: the engine types plus the core
/// deployment/request vocabulary they are constructed from.
///
/// ```
/// use spinamm_engine::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let patterns = vec![vec![31, 0, 31, 0], vec![0, 31, 0, 31]];
/// let module = AssociativeMemoryModule::build(&patterns, &AmmConfig::default())?;
/// let engine = RecallEngine::new(
///     Deployment::Flat(module),
///     &EngineConfig::builder().workers(2).build(),
/// );
/// assert_eq!(engine.recall_many(&patterns)?.len(), 2);
/// engine.shutdown();
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use crate::{
        Deployment, EngineConfig, EngineConfigBuilder, EngineError, EngineResponse, RecallEngine,
        SharedRecorder, Ticket,
    };
    pub use spinamm_core::amm::{AmmConfig, AssociativeMemoryModule, Fidelity};
    pub use spinamm_core::capacity::TiledAmm;
    pub use spinamm_core::hierarchy::HierarchicalAmm;
    pub use spinamm_core::partition::PartitionedAmm;
    pub use spinamm_core::request::RecallRequest;
    pub use spinamm_telemetry::{MemoryRecorder, NoopRecorder, Recorder};
}

type Req<'r> = RecallRequest<'r, SharedRecorder>;

/// What the engine serves: one of the core memory organizations.
#[derive(Debug, Clone)]
pub enum Deployment {
    /// A single associative memory module.
    Flat(AssociativeMemoryModule),
    /// Rows split across modular RCM banks (paper §5 partitioning).
    Partitioned(PartitionedAmm),
    /// Two-level clustered matching (paper §5 hierarchy).
    Hierarchical(HierarchicalAmm),
    /// The template set sharded across a pool of crossbar tiles with
    /// ranked top-k recall (the capacity layer).
    Tiled(TiledAmm),
}

impl Deployment {
    /// Input vector length this deployment expects.
    #[must_use]
    pub fn vector_len(&self) -> usize {
        match self {
            Deployment::Flat(m) => m.vector_len(),
            Deployment::Partitioned(p) => p.vector_len(),
            Deployment::Hierarchical(h) => h.vector_len(),
            Deployment::Tiled(t) => t.vector_len(),
        }
    }

    /// Sequential reference recall — the single-threaded path every engine
    /// response is bit-identical to.
    ///
    /// # Errors
    ///
    /// Propagates the underlying recall errors.
    pub fn recall(&mut self, input: &[u32]) -> Result<EngineResponse, CoreError> {
        match self {
            Deployment::Flat(m) => m.recall(input).map(EngineResponse::Flat),
            Deployment::Partitioned(p) => p.recall(input).map(EngineResponse::Partitioned),
            Deployment::Hierarchical(h) => h.recall(input).map(EngineResponse::Hierarchical),
            Deployment::Tiled(t) => t.recall(input).map(EngineResponse::Tiled),
        }
    }
}

/// One served recognition, mirroring the deployment kind.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineResponse {
    /// Response from a flat module.
    Flat(RecallResult),
    /// Response from a partitioned memory.
    Partitioned(PartitionedRecall),
    /// Response from a hierarchical memory.
    Hierarchical(HierarchicalRecall),
    /// Ranked response from a tiled capacity pool.
    Tiled(TiledRecall),
}

impl EngineResponse {
    /// The winning pattern index (raw winner for flat modules).
    #[must_use]
    pub fn winner(&self) -> usize {
        match self {
            EngineResponse::Flat(r) => r.raw_winner,
            EngineResponse::Partitioned(r) => r.winner,
            EngineResponse::Hierarchical(r) => r.winner,
            EngineResponse::Tiled(r) => r.matches.first().map_or(0, |m| m.global_column),
        }
    }

    /// The winner's degree of match.
    #[must_use]
    pub fn dom(&self) -> u32 {
        match self {
            EngineResponse::Flat(r) => r.dom,
            EngineResponse::Partitioned(r) => r.dom,
            EngineResponse::Hierarchical(r) => r.dom,
            EngineResponse::Tiled(r) => r.dom,
        }
    }
}

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// `try_submit` found the bounded queue at capacity.
    QueueFull,
    /// The engine shut down before this query could be answered.
    ShutDown,
    /// The underlying recall failed.
    Core(CoreError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::QueueFull => write!(f, "submission queue is full"),
            EngineError::ShutDown => write!(f, "engine shut down before answering"),
            EngineError::Core(e) => write!(f, "recall error: {e}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

/// Engine sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for the RNG-free evaluation phase (minimum one).
    /// Results are worker-count independent.
    pub workers: usize,
    /// Bound of the external submission queue (minimum one). [`RecallEngine::submit`]
    /// blocks and [`RecallEngine::try_submit`] rejects once this many
    /// queries are waiting.
    pub queue_capacity: usize,
    /// Run the workers' RNG-free evaluation phase through compiled
    /// [`RecallPlan`]s instead of interpreted module clones. f64 plan
    /// execution is bit-identical to the interpreted path, so responses do
    /// not depend on this flag — only throughput does. A deployment (or,
    /// for hierarchical deployments, an individual cluster) whose plan
    /// fails to compile keeps the interpreted path, counted as
    /// `engine.plan_fallbacks`. Tiled pools ignore the flag: their tiles
    /// carry their own embedded plans.
    pub use_plans: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            queue_capacity: 64,
            use_plans: false,
        }
    }
}

impl EngineConfig {
    /// Starts a builder seeded with [`EngineConfig::default`] — the one
    /// construction surface shared by the server, bench harness and
    /// examples:
    ///
    /// ```
    /// use spinamm_engine::EngineConfig;
    ///
    /// let config = EngineConfig::builder()
    ///     .workers(2)
    ///     .queue_capacity(8)
    ///     .use_plans(true)
    ///     .build();
    /// assert_eq!((config.workers, config.queue_capacity), (2, 8));
    /// ```
    #[must_use]
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Builder for [`EngineConfig`]; every knob defaults to
/// [`EngineConfig::default`].
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Worker threads for the RNG-free evaluation phase (minimum one,
    /// clamped at engine start).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Bound of the external submission queue.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Whether workers evaluate through compiled [`RecallPlan`]s.
    #[must_use]
    pub fn use_plans(mut self, use_plans: bool) -> Self {
        self.config.use_plans = use_plans;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// A pending response handle returned by [`RecallEngine::submit`].
#[derive(Debug)]
pub struct Ticket {
    seq: u64,
    rx: mpsc::Receiver<Result<EngineResponse, EngineError>>,
}

impl Ticket {
    /// The query's submission sequence number (responses are selected in
    /// this order).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Blocks until the engine answers this query.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ShutDown`] when the engine stopped before
    /// answering, or the query's own recall error.
    pub fn wait(self) -> Result<EngineResponse, EngineError> {
        match self.rx.recv() {
            Ok(response) => response,
            Err(_) => Err(EngineError::ShutDown),
        }
    }
}

/// A query travelling through the engine. Stage-B (member) jobs exist only
/// for hierarchical deployments, carry their original submission instant,
/// and ride the internal queue so they can never deadlock behind new
/// external submissions.
enum Stage {
    Primary(Arc<Vec<u32>>),
    Member {
        cluster: usize,
        input: Arc<Vec<u32>>,
    },
}

struct Job {
    seq: u64,
    stage: Stage,
    /// When the original query entered the engine (latency reference).
    submitted: Instant,
    /// When this job (re-)entered a queue — stage-B jobs get a fresh
    /// timestamp at dispatch, so queue-wait accounting stays per-hop.
    enqueued: Instant,
    trace: Option<ReqHandle>,
}

struct QueueState {
    external: VecDeque<Job>,
    internal: VecDeque<Job>,
    closed: bool,
    next_seq: u64,
}

struct Shared {
    state: Mutex<QueueState>,
    job_ready: Condvar,
    space_ready: Condvar,
    capacity: usize,
    tickets: Mutex<HashMap<u64, mpsc::Sender<Result<EngineResponse, EngineError>>>>,
    recorder: SharedRecorder,
    tracer: Option<Arc<Tracer>>,
}

impl Shared {
    /// The tracing context of one in-flight request, inert without a
    /// tracer.
    fn trace_ctx(&self, handle: Option<ReqHandle>) -> TraceCtx<'_> {
        match (&self.tracer, handle) {
            (Some(tracer), Some(h)) => TraceCtx::joined(tracer, h),
            _ => TraceCtx::NONE,
        }
    }
}

/// A worker's compiled fast path: its deployment clone lowered into flat
/// recall plans at startup (see [`EngineConfig::use_plans`]). Primary-stage
/// jobs then run the allocation-free plan kernel; stage-B (hierarchical
/// member) jobs always use the interpreted clone.
enum WorkerPlan {
    Flat(RecallPlan),
    Partitioned(PartitionedPlan),
    Hierarchical(HierarchicalPlan),
}

impl WorkerPlan {
    /// Lowers a worker's deployment clone, falling back to the interpreted
    /// path (`None`, counted as `engine.plan_fallbacks`) on compile errors.
    /// Hierarchical deployments compile their stage-A top module plus every
    /// compilable cluster; uncompiled clusters evaluate interpreted and
    /// count one fallback each. Tiled pools carry their own embedded
    /// per-tile plans, so there is nothing to lower and no fallback to
    /// count. The fallback is behaviour-preserving: f64 plans are
    /// bit-identical to interpreted evaluation.
    fn compile(deployment: &Deployment, recorder: &SharedRecorder) -> Option<Self> {
        let req = RecallRequest::recorded(recorder);
        let compiled = match deployment {
            Deployment::Flat(m) => RecallPlan::compile_request(m, PlanOptions::default(), &req)
                .map(WorkerPlan::Flat)
                .ok(),
            Deployment::Partitioned(p) => PartitionedPlan::compile(p, PlanOptions::default())
                .map(WorkerPlan::Partitioned)
                .ok(),
            Deployment::Hierarchical(h) => {
                match HierarchicalPlan::compile_request(h, PlanOptions::default(), &req) {
                    Ok(plan) => {
                        let member_fallbacks = plan.member_fallbacks();
                        if member_fallbacks > 0 {
                            recorder.counter("engine.plan_fallbacks", member_fallbacks);
                        }
                        return Some(WorkerPlan::Hierarchical(plan));
                    }
                    Err(_) => None,
                }
            }
            Deployment::Tiled(_) => return None,
        };
        if compiled.is_none() {
            recorder.counter("engine.plan_fallbacks", 1);
        }
        compiled
    }
}

/// A worker's phase-1 output: everything the sequencer needs to finish the
/// query without touching the crossbar again.
enum Phase1 {
    Flat(QueryEvaluation),
    Partitioned(Vec<QueryEvaluation>),
    Tiled(Vec<QueryEvaluation>),
    Top {
        eval: QueryEvaluation,
        input: Arc<Vec<u32>>,
    },
    Member {
        eval: QueryEvaluation,
    },
}

struct WorkerOut {
    seq: u64,
    submitted: Instant,
    trace: Option<ReqHandle>,
    phase1: Result<Phase1, CoreError>,
}

/// The long-lived recall service. See the crate docs for the execution
/// model and the bit-identity guarantee.
pub struct RecallEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    sequencer: Option<JoinHandle<Deployment>>,
}

impl RecallEngine {
    /// Starts an engine over `deployment` without telemetry.
    #[must_use]
    pub fn new(deployment: Deployment, config: &EngineConfig) -> Self {
        Self::with_recorder(deployment, config, Arc::new(NoopRecorder))
    }

    /// Starts an engine reporting `engine.*` telemetry into `recorder`:
    /// `engine.submitted` / `engine.rejected` / `engine.completed` /
    /// `engine.errors` counters, the `engine.queue_depth` gauge, the
    /// `engine.settle` (per-worker phase 1) and `engine.select`
    /// (sequencer phase 2) span timers, the `engine.latency_seconds`
    /// submit-to-response histogram (p50/p95 in the snapshot), and
    /// per-worker `engine.worker.<i>.jobs` / `.utilization` series.
    #[must_use]
    pub fn with_recorder(
        deployment: Deployment,
        config: &EngineConfig,
        recorder: SharedRecorder,
    ) -> Self {
        Self::with_observability(deployment, config, recorder, None)
    }

    /// Starts an engine with full observability: the recorder telemetry of
    /// [`RecallEngine::with_recorder`] plus, when `tracer` is given,
    /// per-request span trees. Each submission becomes one
    /// `"engine.recall"` request; its trace carries a `"queue_wait"` span
    /// per queue hop, an `"evaluate"` span per worker phase (with
    /// `worker`, and `cluster` for stage-B hops, as attributes) wrapping
    /// the core drive/settle/solve spans, and a `"select"` span for the
    /// sequencer's RNG phase. Tracing is observation-only: responses are
    /// bit-identical with or without it.
    #[must_use]
    pub fn with_observability(
        deployment: Deployment,
        config: &EngineConfig,
        recorder: SharedRecorder,
        tracer: Option<Arc<Tracer>>,
    ) -> Self {
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                external: VecDeque::new(),
                internal: VecDeque::new(),
                closed: false,
                next_seq: 0,
            }),
            job_ready: Condvar::new(),
            space_ready: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            tickets: Mutex::new(HashMap::new()),
            recorder,
            tracer,
        });
        let (tx, rx) = mpsc::channel::<WorkerOut>();
        let workers = (0..worker_count)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                // Each worker owns a full clone of the deployment; clones
                // share the canonically warmed solver sessions, so their
                // evaluations are bit-identical to the master's. With
                // `use_plans` the clone is additionally lowered into a
                // compiled plan for the primary evaluation phase.
                let clone = deployment.clone();
                let plan = config
                    .use_plans
                    .then(|| WorkerPlan::compile(&clone, &shared.recorder))
                    .flatten();
                std::thread::spawn(move || worker_loop(idx, &shared, clone, plan, &tx))
            })
            .collect();
        drop(tx);
        let sequencer = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || sequencer_loop(&shared, deployment, &rx))
        };
        Self {
            shared,
            workers,
            sequencer: Some(sequencer),
        }
    }

    /// Submits one query, blocking while the queue is at capacity.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ShutDown`] when the engine is stopping.
    pub fn submit(&self, input: &[u32]) -> Result<Ticket, EngineError> {
        self.submit_inner(input, true)
    }

    /// Submits one query without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::QueueFull`] when the queue is at capacity
    /// (counted as `engine.rejected`), or [`EngineError::ShutDown`] when
    /// the engine is stopping.
    pub fn try_submit(&self, input: &[u32]) -> Result<Ticket, EngineError> {
        self.submit_inner(input, false)
    }

    fn submit_inner(&self, input: &[u32], block: bool) -> Result<Ticket, EngineError> {
        let recorder = &self.shared.recorder;
        let mut state = self.shared.state.lock().expect("queue lock");
        while state.external.len() >= self.shared.capacity && !state.closed {
            if !block {
                recorder.counter("engine.rejected", 1);
                return Err(EngineError::QueueFull);
            }
            state = self.shared.space_ready.wait(state).expect("queue lock");
        }
        if state.closed {
            return Err(EngineError::ShutDown);
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        let (tx, rx) = mpsc::channel();
        self.shared
            .tickets
            .lock()
            .expect("ticket lock")
            .insert(seq, tx);
        let now = Instant::now();
        state.external.push_back(Job {
            seq,
            stage: Stage::Primary(Arc::new(input.to_vec())),
            submitted: now,
            enqueued: now,
            trace: self
                .shared
                .tracer
                .as_deref()
                .map(|t| t.begin("engine.recall")),
        });
        recorder.counter("engine.submitted", 1);
        recorder.gauge(
            "engine.queue_depth",
            (state.external.len() + state.internal.len()) as f64,
        );
        drop(state);
        self.shared.job_ready.notify_one();
        Ok(Ticket { seq, rx })
    }

    /// Submits a whole batch (blocking for queue space) and waits for all
    /// responses, in submission order.
    ///
    /// # Errors
    ///
    /// Returns the first failing query's error.
    pub fn recall_many<S: AsRef<[u32]>>(
        &self,
        inputs: &[S],
    ) -> Result<Vec<EngineResponse>, EngineError> {
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|input| self.submit(input.as_ref()))
            .collect::<Result<_, _>>()?;
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Stops the engine: queued queries finish, then the workers and the
    /// sequencer join. Hierarchical queries still waiting for their
    /// stage-B dispatch at close time may be abandoned with
    /// [`EngineError::ShutDown`]. Dropping the engine does the same.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Stops the engine like [`RecallEngine::shutdown`] and hands back the
    /// deployment the sequencer was serving — with all RNG and solver
    /// state exactly where the served traffic left it. This is how a
    /// lifetime maintenance window works: drain the engine, run background
    /// refresh on the recovered module, then start a new engine over it.
    ///
    /// # Panics
    ///
    /// Panics if the sequencer thread itself panicked (its deployment is
    /// unrecoverable in that case).
    #[must_use]
    pub fn into_deployment(mut self) -> Deployment {
        {
            let mut state = self.shared.state.lock().expect("queue lock");
            state.closed = true;
        }
        self.shared.job_ready.notify_all();
        self.shared.space_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let deployment = self
            .sequencer
            .take()
            .expect("sequencer runs until shutdown")
            .join()
            .expect("sequencer thread panicked");
        self.shared.tickets.lock().expect("ticket lock").clear();
        deployment
    }

    fn shutdown_inner(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("queue lock");
            state.closed = true;
        }
        self.shared.job_ready.notify_all();
        self.shared.space_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(sequencer) = self.sequencer.take() {
            let _ = sequencer.join();
        }
        // Any ticket still registered can no longer be answered; dropping
        // its sender turns the owner's `wait` into `ShutDown`.
        self.shared.tickets.lock().expect("ticket lock").clear();
    }
}

impl Drop for RecallEngine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Phase 1 on a worker's deployment clone: RNG-free, order-independent.
fn run_phase1(
    deployment: &mut Deployment,
    plan: Option<&mut WorkerPlan>,
    stage: &Stage,
    req: &Req<'_>,
) -> Result<Phase1, CoreError> {
    // The compiled fast path covers primary-stage jobs on flat and
    // partitioned deployments; everything else falls through to the
    // interpreted clone. Responses are identical either way (f64 plans are
    // bit-identical); only the evaluation cost differs.
    match (plan, stage) {
        (Some(WorkerPlan::Flat(p)), Stage::Primary(input)) => {
            return p.evaluate_query_request(input, req).map(Phase1::Flat);
        }
        (Some(WorkerPlan::Partitioned(p)), Stage::Primary(input)) => {
            return p
                .evaluate_query_request(input, req)
                .map(Phase1::Partitioned);
        }
        (Some(WorkerPlan::Hierarchical(p)), Stage::Primary(input)) => {
            return p.evaluate_top_request(input, req).map(|eval| Phase1::Top {
                eval,
                input: Arc::clone(input),
            });
        }
        // A cluster whose plan failed to compile falls through to the
        // interpreted clone below.
        (Some(WorkerPlan::Hierarchical(p)), Stage::Member { cluster, input })
            if p.has_member_plan(*cluster) =>
        {
            return p
                .evaluate_member_request(*cluster, input, req)
                .map(|eval| Phase1::Member { eval });
        }
        _ => {}
    }
    match (deployment, stage) {
        (Deployment::Flat(m), Stage::Primary(input)) => {
            m.evaluate_query_request(input, req).map(Phase1::Flat)
        }
        (Deployment::Partitioned(p), Stage::Primary(input)) => p
            .evaluate_query_request(input, req)
            .map(Phase1::Partitioned),
        (Deployment::Tiled(t), Stage::Primary(input)) => {
            t.evaluate_query_request(input, req).map(Phase1::Tiled)
        }
        (Deployment::Hierarchical(h), Stage::Primary(input)) => {
            h.evaluate_top_request(input, req).map(|eval| Phase1::Top {
                eval,
                input: Arc::clone(input),
            })
        }
        (Deployment::Hierarchical(h), Stage::Member { cluster, input }) => h
            .evaluate_member_request(*cluster, input, req)
            .map(|eval| Phase1::Member { eval }),
        (_, Stage::Member { .. }) => Err(CoreError::InvalidParameter {
            what: "member-stage job on a non-hierarchical deployment",
        }),
    }
}

fn worker_loop(
    idx: usize,
    shared: &Shared,
    mut deployment: Deployment,
    mut plan: Option<WorkerPlan>,
    out: &mpsc::Sender<WorkerOut>,
) {
    let recorder = &shared.recorder;
    let req = RecallRequest::recorded(recorder);
    let started = Instant::now();
    let mut busy = 0.0f64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("queue lock");
            loop {
                // Internal (stage-B) jobs first: they unblock responses
                // that external submissions may be waiting behind.
                if let Some(job) = state.internal.pop_front() {
                    break Some(job);
                }
                if let Some(job) = state.external.pop_front() {
                    shared.space_ready.notify_one();
                    break Some(job);
                }
                if state.closed {
                    break None;
                }
                state = shared.job_ready.wait(state).expect("queue lock");
            }
        };
        let Some(job) = job else { return };
        let wait = job.enqueued.elapsed();
        if recorder.is_enabled() {
            recorder.observe("engine.queue_wait_ns", wait.as_secs_f64() * 1e9);
        }
        let ctx = shared.trace_ctx(job.trace);
        let traced_req;
        let req = if let (Some(tracer), Some(h)) = (&shared.tracer, job.trace) {
            ctx.span_at("queue_wait", job.enqueued, wait, &[("worker", idx as f64)]);
            traced_req = req.with_trace_handle(tracer, h);
            &traced_req
        } else {
            &req
        };
        let t0 = Instant::now();
        let phase1 = {
            let phase = ctx.phase(match &job.stage {
                Stage::Primary(_) => "evaluate",
                Stage::Member { .. } => "evaluate.member",
            });
            phase.attr("worker", idx as f64);
            if let Stage::Member { cluster, .. } = &job.stage {
                phase.attr("cluster", *cluster as f64);
            }
            run_phase1(&mut deployment, plan.as_mut(), &job.stage, req)
        };
        if recorder.is_enabled() {
            let dt = t0.elapsed().as_secs_f64();
            busy += dt;
            recorder.record_span("engine.settle", dt);
            recorder.counter(&format!("engine.worker.{idx}.jobs"), 1);
            let total = started.elapsed().as_secs_f64();
            if total > 0.0 {
                recorder.gauge(&format!("engine.worker.{idx}.utilization"), busy / total);
            }
            let state = shared.state.lock().expect("queue lock");
            recorder.gauge(
                "engine.queue_depth",
                (state.external.len() + state.internal.len()) as f64,
            );
        }
        let sent = out.send(WorkerOut {
            seq: job.seq,
            submitted: job.submitted,
            trace: job.trace,
            phase1,
        });
        if sent.is_err() {
            // Sequencer gone: the engine is tearing down.
            return;
        }
    }
}

/// What the sequencer does with an in-order primary phase-1 result.
enum SelectOutcome {
    Done(Result<EngineResponse, EngineError>),
    MemberDispatch {
        cluster: usize,
        input: Arc<Vec<u32>>,
        top: RecallResult,
    },
}

/// Phase 2 on the master deployment: consumes the RNG exactly as a
/// sequential recall of this query would.
fn select_primary(master: &mut Deployment, phase1: Phase1, req: &Req<'_>) -> SelectOutcome {
    match (master, phase1) {
        (Deployment::Flat(m), Phase1::Flat(eval)) => SelectOutcome::Done(
            m.select_winner_request(eval, req)
                .map(EngineResponse::Flat)
                .map_err(EngineError::from),
        ),
        (Deployment::Partitioned(p), Phase1::Partitioned(evals)) => SelectOutcome::Done(
            p.select_winner_request(evals, req)
                .map(EngineResponse::Partitioned)
                .map_err(EngineError::from),
        ),
        (Deployment::Tiled(t), Phase1::Tiled(evals)) => SelectOutcome::Done(
            t.select_winner_request(evals, req)
                .map(EngineResponse::Tiled)
                .map_err(EngineError::from),
        ),
        (Deployment::Hierarchical(h), Phase1::Top { eval, input }) => {
            match h.select_top_request(eval, req) {
                Ok(top) => SelectOutcome::MemberDispatch {
                    cluster: top.raw_winner,
                    input,
                    top,
                },
                Err(e) => SelectOutcome::Done(Err(e.into())),
            }
        }
        _ => SelectOutcome::Done(Err(EngineError::Core(CoreError::InvalidParameter {
            what: "phase-1 result does not match the deployment",
        }))),
    }
}

fn respond(
    shared: &Shared,
    seq: u64,
    submitted: Instant,
    trace: Option<ReqHandle>,
    response: Result<EngineResponse, EngineError>,
) {
    let recorder = &shared.recorder;
    if recorder.is_enabled() {
        recorder.observe("engine.latency_seconds", submitted.elapsed().as_secs_f64());
        // Re-sample the depth gauge at completion: submissions and
        // dequeues alone leave it stuck at its high-water mark once the
        // queues drain.
        let state = shared.state.lock().expect("queue lock");
        recorder.gauge(
            "engine.queue_depth",
            (state.external.len() + state.internal.len()) as f64,
        );
    }
    recorder.counter(
        if response.is_ok() {
            "engine.completed"
        } else {
            "engine.errors"
        },
        1,
    );
    if let (Some(tracer), Some(h)) = (&shared.tracer, trace) {
        tracer.finish(h);
    }
    let tx = shared.tickets.lock().expect("ticket lock").remove(&seq);
    if let Some(tx) = tx {
        let _ = tx.send(response);
    }
}

fn sequencer_loop(
    shared: &Shared,
    mut master: Deployment,
    rx: &mpsc::Receiver<WorkerOut>,
) -> Deployment {
    let recorder = &shared.recorder;
    let req = RecallRequest::recorded(recorder);
    let cluster_count = match &master {
        Deployment::Hierarchical(h) => h.cluster_count(),
        _ => 0,
    };
    // Primary phase-1 results waiting for their submission-order turn.
    type Pending<T> = (Instant, Option<ReqHandle>, Result<T, CoreError>);
    let mut primary: BTreeMap<u64, Pending<Phase1>> = BTreeMap::new();
    let mut next_primary: u64 = 0;
    // Hierarchical stage-B bookkeeping: which cluster each dispatched seq
    // went to, its stage-A result, the per-cluster expected select order,
    // and member phase-1 results waiting for that order.
    let mut member_cluster: HashMap<u64, usize> = HashMap::new();
    let mut tops: HashMap<u64, RecallResult> = HashMap::new();
    let mut expected: Vec<VecDeque<u64>> = vec![VecDeque::new(); cluster_count];
    let mut members: HashMap<u64, Pending<QueryEvaluation>> = HashMap::new();

    while let Ok(msg) = rx.recv() {
        match msg.phase1 {
            Ok(Phase1::Member { eval }) => {
                members.insert(msg.seq, (msg.submitted, msg.trace, Ok(eval)));
            }
            Err(e) if member_cluster.contains_key(&msg.seq) => {
                members.insert(msg.seq, (msg.submitted, msg.trace, Err(e)));
            }
            other => {
                primary.insert(msg.seq, (msg.submitted, msg.trace, other));
            }
        }

        // Primary selections run strictly in submission order: stall until
        // the next expected sequence number has evaluated.
        while let Some((submitted, trace, result)) = primary.remove(&next_primary) {
            let seq = next_primary;
            next_primary += 1;
            match result {
                Err(e) => respond(shared, seq, submitted, trace, Err(EngineError::Core(e))),
                Ok(phase1) => {
                    let ctx = shared.trace_ctx(trace);
                    let traced_req;
                    let job_req = if let (Some(tracer), Some(h)) = (&shared.tracer, trace) {
                        traced_req = req.with_trace_handle(tracer, h);
                        &traced_req
                    } else {
                        &req
                    };
                    let t0 = recorder.is_enabled().then(Instant::now);
                    let outcome = {
                        let _select_phase = ctx.phase("select");
                        select_primary(&mut master, phase1, job_req)
                    };
                    if let Some(t0) = t0 {
                        recorder.record_span("engine.select", t0.elapsed().as_secs_f64());
                    }
                    match outcome {
                        SelectOutcome::Done(response) => {
                            respond(shared, seq, submitted, trace, response);
                        }
                        SelectOutcome::MemberDispatch {
                            cluster,
                            input,
                            top,
                        } => {
                            member_cluster.insert(seq, cluster);
                            tops.insert(seq, top);
                            expected[cluster].push_back(seq);
                            {
                                let mut state = shared.state.lock().expect("queue lock");
                                state.internal.push_back(Job {
                                    seq,
                                    stage: Stage::Member { cluster, input },
                                    submitted,
                                    enqueued: Instant::now(),
                                    trace,
                                });
                            }
                            shared.job_ready.notify_one();
                        }
                    }
                }
            }
        }

        // Member selections run in per-cluster submission order (each
        // cluster module owns its RNG, so clusters are independent).
        for (cluster, queue) in expected.iter_mut().enumerate() {
            while let Some(&seq) = queue.front() {
                let Some((submitted, trace, result)) = members.remove(&seq) else {
                    break;
                };
                queue.pop_front();
                member_cluster.remove(&seq);
                let top = tops
                    .remove(&seq)
                    .expect("stage-A result stored at dispatch");
                let response = match (&mut master, result) {
                    (Deployment::Hierarchical(h), Ok(eval)) => {
                        let ctx = shared.trace_ctx(trace);
                        let traced_req;
                        let job_req = if let (Some(tracer), Some(h)) = (&shared.tracer, trace) {
                            traced_req = req.with_trace_handle(tracer, h);
                            &traced_req
                        } else {
                            &req
                        };
                        let t0 = recorder.is_enabled().then(Instant::now);
                        let r = {
                            let select_phase = ctx.phase("select.member");
                            select_phase.attr("cluster", cluster as f64);
                            h.select_member_request(cluster, eval, &top, job_req)
                                .map(EngineResponse::Hierarchical)
                                .map_err(EngineError::from)
                        };
                        if let Some(t0) = t0 {
                            recorder.record_span("engine.select", t0.elapsed().as_secs_f64());
                        }
                        r
                    }
                    (_, Err(e)) => Err(EngineError::Core(e)),
                    (_, Ok(_)) => Err(EngineError::Core(CoreError::InvalidParameter {
                        what: "member-stage result on a non-hierarchical deployment",
                    })),
                };
                respond(shared, seq, submitted, trace, response);
            }
        }
    }
    master
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinamm_core::amm::AmmConfig;
    use spinamm_telemetry::MemoryRecorder;

    fn patterns() -> Vec<Vec<u32>> {
        vec![
            vec![31, 31, 31, 31, 0, 0, 0, 0, 0, 0, 0, 0],
            vec![0, 0, 0, 0, 31, 31, 31, 31, 0, 0, 0, 0],
            vec![0, 0, 0, 0, 0, 0, 0, 0, 31, 31, 31, 31],
        ]
    }

    fn flat_deployment() -> Deployment {
        Deployment::Flat(
            AssociativeMemoryModule::build(&patterns(), &AmmConfig::default()).unwrap(),
        )
    }

    #[test]
    fn engine_answers_match_sequential_reference() {
        let mut sequential = flat_deployment();
        let engine = RecallEngine::new(
            flat_deployment(),
            &EngineConfig::builder()
                .workers(3)
                .queue_capacity(2)
                .use_plans(false)
                .build(),
        );
        let queries: Vec<Vec<u32>> = patterns().into_iter().cycle().take(9).collect();
        let got = engine.recall_many(&queries).unwrap();
        for (q, response) in queries.iter().zip(&got) {
            assert_eq!(response, &sequential.recall(q).unwrap());
        }
        engine.shutdown();
    }

    #[test]
    fn try_submit_reports_backpressure() {
        // Zero workers is clamped to one; a capacity-1 queue with slow
        // submission pressure must eventually reject.
        let engine = RecallEngine::new(
            flat_deployment(),
            &EngineConfig::builder()
                .workers(1)
                .queue_capacity(1)
                .use_plans(false)
                .build(),
        );
        let input = patterns()[0].clone();
        let mut rejected = false;
        let mut tickets = Vec::new();
        for _ in 0..64 {
            match engine.try_submit(&input) {
                Ok(t) => tickets.push(t),
                Err(EngineError::QueueFull) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(rejected, "capacity-1 queue never filled");
        for t in tickets {
            t.wait().unwrap();
        }
        engine.shutdown();
    }

    #[test]
    fn invalid_inputs_surface_as_core_errors() {
        let engine = RecallEngine::new(flat_deployment(), &EngineConfig::default());
        let err = engine.submit(&[0u32; 3]).unwrap().wait().unwrap_err();
        assert!(matches!(
            err,
            EngineError::Core(CoreError::InputLengthMismatch { .. })
        ));
        // A bad query consumes no RNG: the next good one still matches the
        // sequential reference.
        let mut sequential = flat_deployment();
        let good = engine.submit(&patterns()[1]).unwrap().wait().unwrap();
        assert_eq!(good, sequential.recall(&patterns()[1]).unwrap());
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let engine = RecallEngine::new(flat_deployment(), &EngineConfig::default());
        let input = patterns()[0].clone();
        engine.submit(&input).unwrap().wait().unwrap();
        // Close via an aliased handle is impossible (shutdown consumes),
        // so exercise Drop + a fresh engine's closed flag directly.
        let shared = Arc::clone(&engine.shared);
        engine.shutdown();
        assert!(shared.state.lock().unwrap().closed);
    }

    #[test]
    fn telemetry_counters_and_latency_flow() {
        let recorder = Arc::new(MemoryRecorder::default());
        let engine = RecallEngine::with_recorder(
            flat_deployment(),
            &EngineConfig::builder()
                .workers(2)
                .queue_capacity(4)
                .use_plans(false)
                .build(),
            recorder.clone(),
        );
        let queries: Vec<Vec<u32>> = patterns().into_iter().cycle().take(6).collect();
        engine.recall_many(&queries).unwrap();
        engine.shutdown();
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("engine.submitted"), 6);
        assert_eq!(snap.counter("engine.completed"), 6);
        assert_eq!(
            snap.histogram_stats("engine.latency_seconds")
                .unwrap()
                .count,
            6
        );
        assert_eq!(snap.span_stats("engine.settle").unwrap().count, 6);
        assert_eq!(snap.span_stats("engine.select").unwrap().count, 6);
        let worker_jobs: u64 = (0..2)
            .map(|i| snap.counter(&format!("engine.worker.{i}.jobs")))
            .sum();
        assert_eq!(worker_jobs, 6);
    }

    #[test]
    fn tiled_engine_answers_match_sequential_reference() {
        let build = || {
            Deployment::Tiled(
                TiledAmm::build(&patterns(), 1, &AmmConfig::default())
                    .unwrap()
                    .with_top_k(2)
                    .unwrap(),
            )
        };
        let mut sequential = build();
        let engine = RecallEngine::new(
            build(),
            &EngineConfig::builder()
                .workers(3)
                .queue_capacity(2)
                .use_plans(false)
                .build(),
        );
        let queries: Vec<Vec<u32>> = patterns().into_iter().cycle().take(9).collect();
        let got = engine.recall_many(&queries).unwrap();
        for (q, response) in queries.iter().zip(&got) {
            let want = sequential.recall(q).unwrap();
            assert_eq!(response, &want);
            let EngineResponse::Tiled(r) = response else {
                panic!("tiled deployment must answer with tiled responses");
            };
            assert_eq!(r.matches.len(), 2);
            assert_eq!(response.winner(), r.matches[0].global_column);
            assert_eq!(response.dom(), r.dom);
        }
        engine.shutdown();
    }

    #[test]
    fn tiled_use_plans_counts_no_fallbacks() {
        // The pool carries its own embedded per-tile plans; `use_plans`
        // must neither change responses nor count a plan fallback.
        let recorder = Arc::new(MemoryRecorder::default());
        let pool = TiledAmm::build(&patterns(), 2, &AmmConfig::default()).unwrap();
        let mut sequential = Deployment::Tiled(pool.clone());
        let engine = RecallEngine::with_recorder(
            Deployment::Tiled(pool),
            &EngineConfig::builder()
                .workers(2)
                .queue_capacity(4)
                .use_plans(true)
                .build(),
            recorder.clone(),
        );
        let queries = patterns();
        for (q, response) in queries.iter().zip(engine.recall_many(&queries).unwrap()) {
            assert_eq!(response, sequential.recall(q).unwrap());
        }
        engine.shutdown();
        assert_eq!(recorder.snapshot().counter("engine.plan_fallbacks"), 0);
    }

    #[test]
    fn hierarchical_use_plans_compiles_and_matches_sequential() {
        // Satellite fix: hierarchical deployments now lower into compiled
        // stage-A + member plans instead of always falling back.
        let hier_patterns: Vec<Vec<u32>> = (0..6)
            .map(|p| {
                (0..12)
                    .map(|i| {
                        if i % 3 == p % 3 {
                            28
                        } else {
                            (i + p) as u32 % 6
                        }
                    })
                    .collect()
            })
            .collect();
        let build = || {
            Deployment::Hierarchical(
                HierarchicalAmm::build(&hier_patterns, 2, &AmmConfig::default()).unwrap(),
            )
        };
        let recorder = Arc::new(MemoryRecorder::default());
        let mut sequential = build();
        let engine = RecallEngine::with_recorder(
            build(),
            &EngineConfig::builder()
                .workers(2)
                .queue_capacity(4)
                .use_plans(true)
                .build(),
            recorder.clone(),
        );
        let queries: Vec<Vec<u32>> = hier_patterns.iter().cloned().cycle().take(12).collect();
        for (q, response) in queries.iter().zip(engine.recall_many(&queries).unwrap()) {
            assert_eq!(response, sequential.recall(q).unwrap());
        }
        engine.shutdown();
        assert_eq!(recorder.snapshot().counter("engine.plan_fallbacks"), 0);
    }

    #[test]
    fn engine_error_display_and_source() {
        assert!(EngineError::QueueFull.to_string().contains("full"));
        assert!(EngineError::ShutDown.to_string().contains("shut"));
        let core = EngineError::Core(CoreError::InvalidParameter { what: "x" });
        assert!(core.to_string().contains("x"));
        assert!(Error::source(&core).is_some());
        assert!(Error::source(&EngineError::QueueFull).is_none());
    }
}
