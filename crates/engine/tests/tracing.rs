//! Engine-level tracing contract: attaching a [`Tracer`] via
//! `with_observability` must leave every response bit-identical, produce
//! one `"engine.recall"` trace per submission with queue/evaluate/select
//! attribution, and keep the queue-depth gauge honest after the drain.

use std::sync::Arc;

use spinamm_core::amm::{AmmConfig, AssociativeMemoryModule, Fidelity};
use spinamm_core::hierarchy::HierarchicalAmm;
use spinamm_core::partition::PartitionedAmm;
use spinamm_engine::{Deployment, EngineConfig, RecallEngine};
use spinamm_telemetry::MemoryRecorder;
use spinamm_trace::{TraceConfig, Tracer};

fn patterns(count: usize, len: usize) -> Vec<Vec<u32>> {
    (0..count)
        .map(|k| {
            (0..len)
                .map(|i| ((i * 7 + k * 11 + k * k) % 32) as u32)
                .collect()
        })
        .collect()
}

fn queries(patterns: &[Vec<u32>], n: usize) -> Vec<Vec<u32>> {
    patterns
        .iter()
        .cycle()
        .take(n)
        .enumerate()
        .map(|(qi, p)| {
            let mut q = p.clone();
            let idx = qi % q.len();
            q[idx] = (q[idx] + 3) % 32;
            q
        })
        .collect()
}

fn traced_engine(deployment: Deployment, workers: usize) -> (RecallEngine, Arc<Tracer>) {
    let tracer = Arc::new(Tracer::new(&TraceConfig::default()));
    let engine = RecallEngine::with_observability(
        deployment,
        &EngineConfig::builder()
            .workers(workers)
            .queue_capacity(4)
            .use_plans(false)
            .build(),
        Arc::new(MemoryRecorder::default()),
        Some(Arc::clone(&tracer)),
    );
    (engine, tracer)
}

#[test]
fn traced_flat_engine_is_bit_identical_with_full_span_coverage() {
    let p = patterns(4, 12);
    let cfg = AmmConfig {
        fidelity: Fidelity::Driven,
        ..AmmConfig::default()
    };
    let module = AssociativeMemoryModule::build(&p, &cfg).unwrap();
    let mut sequential = Deployment::Flat(module.clone());
    let inputs = queries(&p, 10);

    let (engine, tracer) = traced_engine(Deployment::Flat(module), 3);
    let got = engine.recall_many(&inputs).unwrap();
    engine.shutdown();
    for (q, response) in inputs.iter().zip(&got) {
        assert_eq!(*response, sequential.recall(q).unwrap());
    }

    assert_eq!(tracer.request_count(), inputs.len() as u64);
    assert_eq!(tracer.sampled_count(), inputs.len() as u64);
    assert_eq!(tracer.latency().count(), inputs.len() as u64);
    let traces = tracer.traces();
    assert_eq!(traces.len(), inputs.len());
    for trace in &traces {
        assert_eq!(trace.kind, "engine.recall");
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"queue_wait"), "{names:?}");
        assert!(names.contains(&"evaluate"), "{names:?}");
        assert!(names.contains(&"select"), "{names:?}");
        // The evaluate phase carries worker attribution and nests the
        // module's own drive/settle spans beneath it.
        let eval = trace.spans.iter().find(|s| s.name == "evaluate").unwrap();
        assert!(eval.attrs.iter().any(|&(k, _)| k == "worker"));
        assert!(names.contains(&"settle"), "{names:?}");
    }
}

#[test]
fn traced_partitioned_engine_records_shard_spans() {
    let p = patterns(4, 12);
    let cfg = AmmConfig::default();
    let part = PartitionedAmm::build(&p, 3, &cfg).unwrap();
    let mut sequential = Deployment::Partitioned(part.clone());
    let inputs = queries(&p, 8);

    let (engine, tracer) = traced_engine(Deployment::Partitioned(part), 2);
    let got = engine.recall_many(&inputs).unwrap();
    engine.shutdown();
    for (q, response) in inputs.iter().zip(&got) {
        assert_eq!(*response, sequential.recall(q).unwrap());
    }

    let traces = tracer.traces();
    assert_eq!(traces.len(), inputs.len());
    for trace in &traces {
        let settles = trace
            .spans
            .iter()
            .filter(|s| s.name == "shard.settle")
            .count();
        assert_eq!(settles, 3, "one settle span per shard");
        assert!(trace.spans.iter().any(|s| s.name == "shard.select"));
    }
}

#[test]
fn traced_hierarchical_engine_covers_both_stages() {
    let p = patterns(6, 12);
    let cfg = AmmConfig::default();
    let hier = HierarchicalAmm::build(&p, 2, &cfg).unwrap();
    let mut sequential = Deployment::Hierarchical(hier.clone());
    let inputs = queries(&p, 8);

    let (engine, tracer) = traced_engine(Deployment::Hierarchical(hier), 3);
    let got = engine.recall_many(&inputs).unwrap();
    engine.shutdown();
    for (q, response) in inputs.iter().zip(&got) {
        assert_eq!(*response, sequential.recall(q).unwrap());
    }

    for trace in &tracer.traces() {
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        // Stage A and stage B each contribute a queue hop and an evaluate.
        let hops = names.iter().filter(|&&n| n == "queue_wait").count();
        assert_eq!(hops, 2, "{names:?}");
        assert!(names.contains(&"evaluate"), "{names:?}");
        assert!(names.contains(&"evaluate.member"), "{names:?}");
        assert!(names.contains(&"select"), "{names:?}");
        assert!(names.contains(&"select.member"), "{names:?}");
        let member = trace
            .spans
            .iter()
            .find(|s| s.name == "select.member")
            .unwrap();
        assert!(member.attrs.iter().any(|&(k, _)| k == "cluster"));
    }
}

#[test]
fn queue_gauges_recover_after_drain_and_wait_histogram_fills() {
    let p = patterns(4, 12);
    let module = AssociativeMemoryModule::build(&p, &AmmConfig::default()).unwrap();
    let recorder = Arc::new(MemoryRecorder::default());
    let engine = RecallEngine::with_recorder(
        Deployment::Flat(module),
        &EngineConfig::builder()
            .workers(2)
            .queue_capacity(3)
            .use_plans(false)
            .build(),
        recorder.clone(),
    );
    let inputs = queries(&p, 9);
    engine.recall_many(&inputs).unwrap();
    engine.shutdown();

    let snap = recorder.snapshot();
    // Completion re-samples the gauge, so a drained engine reads 0 rather
    // than the submission high-water mark.
    assert_eq!(snap.gauges.get("engine.queue_depth"), Some(&0.0));
    let waits = snap.histogram_stats("engine.queue_wait_ns").unwrap();
    assert_eq!(waits.count, inputs.len() as u64);
    assert!(waits.min >= 0.0);
    assert!(snap.percentile("engine.queue_wait_ns", 0.99) >= snap.gauges["engine.queue_depth"]);
}

#[test]
fn engine_without_tracer_records_no_traces() {
    let p = patterns(3, 10);
    let module = AssociativeMemoryModule::build(&p, &AmmConfig::default()).unwrap();
    let engine = RecallEngine::new(
        Deployment::Flat(module),
        &EngineConfig::builder()
            .workers(2)
            .queue_capacity(2)
            .use_plans(false)
            .build(),
    );
    let inputs = queries(&p, 4);
    engine.recall_many(&inputs).unwrap();
    engine.shutdown();
    // Nothing to assert beyond "no panic": the default engine carries no
    // tracer and the disabled-handle paths must all be inert.
}
