//! The engine's headline contract: for every deployment kind, worker
//! count, queue capacity, and thread interleaving, responses are
//! bit-identical to sequential recalls in submission order.

use proptest::prelude::*;
use spinamm_core::amm::{AmmConfig, AssociativeMemoryModule, Fidelity};
use spinamm_core::degrade::DegradationPolicy;
use spinamm_core::hierarchy::HierarchicalAmm;
use spinamm_core::partition::PartitionedAmm;
use spinamm_engine::{Deployment, EngineConfig, EngineResponse, RecallEngine};
use spinamm_faults::{FaultMap, FaultModel};

fn patterns(count: usize, len: usize) -> Vec<Vec<u32>> {
    (0..count)
        .map(|k| {
            (0..len)
                .map(|i| ((i * 7 + k * 11 + k * k) % 32) as u32)
                .collect()
        })
        .collect()
}

fn queries(patterns: &[Vec<u32>], n: usize) -> Vec<Vec<u32>> {
    // Stored patterns plus slightly perturbed variants, cycled.
    patterns
        .iter()
        .cycle()
        .take(n)
        .enumerate()
        .map(|(qi, p)| {
            let mut q = p.clone();
            let idx = qi % q.len();
            q[idx] = (q[idx] + 3) % 32;
            q
        })
        .collect()
}

fn config(fidelity: Fidelity) -> AmmConfig {
    AmmConfig {
        fidelity,
        ..AmmConfig::default()
    }
}

/// Runs the same queries through the engine and a sequential clone and
/// asserts bit identity, response by response.
fn assert_engine_matches_sequential(
    deployment: Deployment,
    engine_config: &EngineConfig,
    inputs: &[Vec<u32>],
) {
    let mut sequential = deployment.clone();
    let engine = RecallEngine::new(deployment, engine_config);
    let got = engine.recall_many(inputs).unwrap();
    engine.shutdown();
    let want: Vec<EngineResponse> = inputs
        .iter()
        .map(|q| sequential.recall(q).unwrap())
        .collect();
    assert_eq!(got, want);
}

#[test]
fn flat_driven_engine_is_bit_identical() {
    let p = patterns(4, 12);
    let module = AssociativeMemoryModule::build(&p, &config(Fidelity::Driven)).unwrap();
    assert_engine_matches_sequential(
        Deployment::Flat(module),
        &EngineConfig::builder()
            .workers(4)
            .queue_capacity(3)
            .use_plans(false)
            .build(),
        &queries(&p, 12),
    );
}

#[test]
fn duplicated_template_ties_break_to_lowest_index_through_engine() {
    // The engine's select phase must apply the same lowest-index tie-break
    // as a sequential recall: with an exact duplicate of template 0 stored
    // in the last column, concurrent recalls of template 0 never report
    // the duplicate unless it strictly out-scores the original.
    let mut p = patterns(3, 12);
    p.push(p[0].clone());
    let dup = p.len() - 1;
    let inputs: Vec<Vec<u32>> = (0..8).map(|_| p[0].clone()).collect();
    let mut tie_seen = false;
    for seed in 0..12u64 {
        let cfg = AmmConfig {
            seed,
            ..config(Fidelity::Driven)
        };
        let module = AssociativeMemoryModule::build(&p, &cfg).unwrap();
        let mut sequential = Deployment::Flat(module.clone());
        let engine = RecallEngine::new(
            Deployment::Flat(module),
            &EngineConfig::builder()
                .workers(3)
                .queue_capacity(2)
                .use_plans(false)
                .build(),
        );
        let got = engine.recall_many(&inputs).unwrap();
        engine.shutdown();
        for (q, response) in inputs.iter().zip(&got) {
            let want = sequential.recall(q).unwrap();
            assert_eq!(*response, want, "seed {seed}");
            if let EngineResponse::Flat(r) = response {
                if r.codes[0] == r.codes[dup] {
                    tie_seen = true;
                    assert_eq!(r.raw_winner, 0, "seed {seed}: tie must go to index 0");
                }
            }
        }
    }
    assert!(tie_seen, "no seed produced an exact duplicate tie");
}

#[test]
fn partitioned_driven_engine_is_bit_identical() {
    let p = patterns(4, 12);
    let part = PartitionedAmm::build(&p, 3, &config(Fidelity::Driven)).unwrap();
    assert_engine_matches_sequential(
        Deployment::Partitioned(part),
        &EngineConfig::builder()
            .workers(3)
            .queue_capacity(2)
            .use_plans(false)
            .build(),
        &queries(&p, 10),
    );
}

#[test]
fn hierarchical_driven_engine_is_bit_identical() {
    let p = patterns(6, 12);
    let hier = HierarchicalAmm::build(&p, 2, &config(Fidelity::Driven)).unwrap();
    assert_engine_matches_sequential(
        Deployment::Hierarchical(hier),
        &EngineConfig::builder()
            .workers(4)
            .queue_capacity(2)
            .use_plans(false)
            .build(),
        &queries(&p, 12),
    );
}

#[test]
fn partitioned_parasitic_engine_is_bit_identical() {
    // Parasitic mode exercises the cached-netlist solver sessions: worker
    // clones warm-started at build must reproduce the master's solves.
    let p = patterns(3, 10);
    let part = PartitionedAmm::build(&p, 2, &config(Fidelity::Parasitic)).unwrap();
    assert_engine_matches_sequential(
        Deployment::Partitioned(part),
        &EngineConfig::builder()
            .workers(2)
            .queue_capacity(4)
            .use_plans(false)
            .build(),
        &queries(&p, 6),
    );
}

#[test]
fn fault_injected_engine_is_bit_identical() {
    // Faults injected before deployment re-warm the session, so clones
    // taken by the engine inherit the post-fault solver state.
    let p = patterns(3, 10);
    let model = FaultModel {
        spread_sigma: 0.05,
        ..FaultModel::stuck(0.1).unwrap()
    };
    let map = FaultMap::sample(&model, 10, p.len() + 1, 77).unwrap();
    let cfg = AmmConfig {
        spare_columns: 1,
        fidelity: Fidelity::Parasitic,
        ..AmmConfig::default()
    };
    let mut module = AssociativeMemoryModule::build(&p, &cfg).unwrap();
    module
        .inject_faults(map, &DegradationPolicy::default())
        .unwrap();
    assert_engine_matches_sequential(
        Deployment::Flat(module),
        &EngineConfig::builder()
            .workers(3)
            .queue_capacity(2)
            .use_plans(false)
            .build(),
        &queries(&p, 8),
    );
}

#[test]
fn plan_enabled_engine_is_bit_identical() {
    // With `use_plans` the workers evaluate through compiled recall plans;
    // f64 plans are bit-identical, so responses must not change — across
    // flat and partitioned deployments and both analytic and parasitic
    // fidelities (hierarchical deployments fall back to interpreted).
    let p = patterns(4, 12);
    for fidelity in [Fidelity::Ideal, Fidelity::Driven, Fidelity::Parasitic] {
        let module = AssociativeMemoryModule::build(&p, &config(fidelity)).unwrap();
        assert_engine_matches_sequential(
            Deployment::Flat(module),
            &EngineConfig::builder()
                .workers(3)
                .queue_capacity(2)
                .use_plans(true)
                .build(),
            &queries(&p, 9),
        );
        let part = PartitionedAmm::build(&p, 3, &config(fidelity)).unwrap();
        assert_engine_matches_sequential(
            Deployment::Partitioned(part),
            &EngineConfig::builder()
                .workers(2)
                .queue_capacity(3)
                .use_plans(true)
                .build(),
            &queries(&p, 6),
        );
    }
}

#[test]
fn single_worker_engine_matches_many_workers() {
    let p = patterns(4, 12);
    let part = PartitionedAmm::build(&p, 2, &config(Fidelity::Driven)).unwrap();
    let inputs = queries(&p, 8);
    let run = |workers: usize| {
        let engine = RecallEngine::new(
            Deployment::Partitioned(part.clone()),
            &EngineConfig::builder()
                .workers(workers)
                .queue_capacity(4)
                .use_plans(false)
                .build(),
        );
        let out = engine.recall_many(&inputs).unwrap();
        engine.shutdown();
        out
    };
    assert_eq!(run(1), run(4));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any deployment kind, worker count, queue capacity, and module
    /// seed, the engine reproduces sequential recall bit for bit — faults
    /// included.
    #[test]
    fn engine_is_bit_identical_for_any_shape(
        kind in 0usize..3,
        workers in 1usize..=4,
        capacity in 1usize..=4,
        amm_seed in any::<u64>(),
        fault in any::<bool>(),
        map_seed in any::<u64>(),
        use_plans in any::<bool>(),
    ) {
        let p = patterns(4, 12);
        let cfg = AmmConfig {
            seed: amm_seed,
            spare_columns: 1,
            ..AmmConfig::default()
        };
        let deployment = if fault || kind == 0 {
            let mut module = AssociativeMemoryModule::build(&p, &cfg).unwrap();
            if fault {
                let model = FaultModel {
                    spread_sigma: 0.05,
                    ..FaultModel::stuck(0.08).unwrap()
                };
                let map = FaultMap::sample(&model, 12, p.len() + 1, map_seed).unwrap();
                module.inject_faults(map, &DegradationPolicy::default()).unwrap();
            }
            Deployment::Flat(module)
        } else if kind == 1 {
            Deployment::Partitioned(PartitionedAmm::build(&p, 3, &cfg).unwrap())
        } else {
            Deployment::Hierarchical(HierarchicalAmm::build(&p, 2, &cfg).unwrap())
        };

        let inputs = queries(&p, 9);
        let mut sequential = deployment.clone();
        let engine = RecallEngine::new(
            deployment,
            &EngineConfig::builder().workers(workers).queue_capacity(capacity).use_plans(use_plans).build(),
        );
        let got = engine.recall_many(&inputs).unwrap();
        engine.shutdown();
        for (q, response) in inputs.iter().zip(&got) {
            prop_assert_eq!(response, &sequential.recall(q).unwrap());
        }
    }
}
